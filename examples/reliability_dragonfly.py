#!/usr/bin/env python3
"""Use case 1 (paper Section IV-A): end-to-end reliability from stashing.

Builds two networks — the baseline and a stashing network whose first-hop
switches keep a copy of every injected packet in pooled idle buffers —
and runs them side by side under the same traffic, with fault injection
on the stashing network to demonstrate recovery.

Shows:
* stashing does not degrade error-free throughput (Fig. 5's claim);
* with a 2 % corruption rate, every corrupted packet is retransmitted
  from its stash copy and all messages still complete;
* the stash bookkeeping: copies stored, locations reported, deletes on
  positive ACKs, retransmissions on negative ACKs.

Run:  python examples/reliability_dragonfly.py
"""

from repro import Network, ReliabilityParams, StashParams, tiny_preset


def run(label: str, error_rate: float, stashing: bool) -> None:
    cfg = tiny_preset()
    if stashing:
        cfg = cfg.with_(
            stash=StashParams(enabled=True),
            reliability=ReliabilityParams(enabled=True, error_rate=error_rate),
        )
    net = Network(cfg)
    net.add_uniform_traffic(rate=0.35, stop=6000)
    net.sim.run(6000)
    drained = net.drain(120_000)

    posted = sum(ep.messages_posted for ep in net.endpoints)
    delivered = sum(1 for m in net.messages.values() if m.delivered)
    corrupted = sum(ep.packets_corrupted for ep in net.endpoints)
    retrans = sum(getattr(sw, "retransmits_issued", 0) for sw in net.switches)
    copies = sum(
        ip.copies_dispatched for sw in net.switches for ip in sw.in_ports
    )
    print(f"--- {label} ---")
    print(f"messages delivered : {delivered}/{posted} (drained={drained})")
    print(f"stash copies made  : {copies}")
    print(f"corrupted packets  : {corrupted}")
    print(f"retransmissions    : {retrans}")
    if stashing:
        assert delivered == posted, "retransmission failed to recover"
    print()


def main() -> None:
    run("baseline (error-free)", error_rate=0.0, stashing=False)
    run("stashing (error-free)", error_rate=0.0, stashing=True)
    run("stashing + 2% corruption", error_rate=0.02, stashing=True)
    print("All messages recovered through first-hop retransmission.")


if __name__ == "__main__":
    main()
