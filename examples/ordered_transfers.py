#!/usr/bin/env python3
"""Paper Section IV-C: packet order enforcement backed by stashing.

Adaptive (PAR) routing delivers a message's packets out of order; the
paper proposes destination reorder buffers whose overflow drops are
recovered by the stash-based end-to-end retransmission — "allowing for
eager solutions" without endpoint retransmission hardware.

This example sends large multi-packet messages across the dragonfly
with a deliberately tiny reorder buffer and shows: packets always reach
the application in sequence order; overflow drops are retransmitted from
the first-hop stash; everything completes.

Run:  python examples/ordered_transfers.py
"""

from repro import (
    Network,
    OrderingParams,
    ReliabilityParams,
    StashParams,
    tiny_preset,
)


def run(buffer_flits: int) -> None:
    cfg = tiny_preset().with_(
        stash=StashParams(enabled=True, frac_local=0.5),
        reliability=ReliabilityParams(enabled=True),
        ordering=OrderingParams(enabled=True, buffer_flits=buffer_flits),
    )
    net = Network(cfg)

    order_ok = True
    seen: dict[int, int] = {}

    def check(pkt, _cycle):
        nonlocal order_ok
        expected = seen.get(pkt.msg_id, 0)
        if pkt.seq != expected:
            order_ok = False
        seen[pkt.msg_id] = pkt.seq + 1

    net.on_packet_delivered_hooks.append(check)
    for src in range(net.topology.num_nodes):
        dst = (src + 11) % net.topology.num_nodes
        net.endpoints[src].post_message(dst, 80, 0)  # 10 packets each

    net.sim.run(2000)
    assert net.drain(400_000), "network failed to drain"

    posted = sum(ep.messages_posted for ep in net.endpoints)
    done = sum(1 for m in net.messages.values() if m.delivered)
    drops = sum(ep.packets_reorder_dropped for ep in net.endpoints)
    retrans = sum(sw.retransmits_issued for sw in net.switches)
    held = sum(ep.reorder.held_total for ep in net.endpoints)
    print(f"--- reorder buffer = {buffer_flits} flits ---")
    print(f"messages completed    : {done}/{posted}")
    print(f"in-order delivery     : {'yes' if order_ok else 'NO'}")
    print(f"early packets held    : {held}")
    print(f"overflow drops        : {drops}")
    print(f"stash retransmissions : {retrans}")
    assert order_ok and done == posted
    print()


def main() -> None:
    print("multi-packet messages over PAR adaptive routing\n")
    run(buffer_flits=256)  # roomy: reordering absorbed silently
    run(buffer_flits=8)    # tiny: drops recovered from the stash
    print("strict ordering held in both cases; drops were recovered.")


if __name__ == "__main__":
    main()
