#!/usr/bin/env python3
"""Quickstart: build a dragonfly, offer uniform-random traffic, measure.

This is the 60-second tour of the public API:

1. pick a preset configuration (the `tiny` 42-node dragonfly);
2. build a `Network` (baseline tiled switches, PAR routing, ACKs on);
3. attach a traffic source;
4. run the standard warmup / measure / drain phases;
5. read latency and throughput off the `RunResult`.

Run:  python examples/quickstart.py
"""

from repro import Network, tiny_preset


def main() -> None:
    config = tiny_preset()
    net = Network(config)
    print(
        f"built a {net.topology.num_nodes}-node dragonfly "
        f"({net.topology.num_switches} switches of radix "
        f"{config.dragonfly.switch_radix}, tiled "
        f"{config.switch.rows}x{config.switch.cols})"
    )

    net.add_uniform_traffic(rate=0.3)  # flits/cycle/node
    result = net.run_standard()

    print(f"offered load   : {result.offered_load:.3f} flits/cycle/node")
    print(f"accepted load  : {result.accepted_load:.3f} flits/cycle/node")
    print(f"avg latency    : {result.avg_latency:.1f} cycles")
    print(f"p99 latency    : {result.p99_latency:.1f} cycles")
    print(f"packets sampled: {result.packets_measured}")


if __name__ == "__main__":
    main()
