#!/usr/bin/env python3
"""Replay synthetic DesignForward-style MPI traces (paper Fig. 6).

Builds each of the six application traces of Table II at the network's
rank count, replays them through the cycle-level dragonfly with one rank
per endpoint and no computation time, and reports execution times on the
baseline vs the full-capacity reliability-stashing network.

Run:  python examples/trace_replay.py
"""

from repro.experiments.common import preset_by_name, reliability_network
from repro.trace import APP_REGISTRY, build_app, run_trace


def main() -> None:
    base = preset_by_name("tiny")
    apps = list(APP_REGISTRY)
    print(f"{'app':<13}{'baseline':>10}{'stash100':>10}{'normalized':>11}")
    for app in apps:
        times = {}
        for variant in ("baseline", "stash100"):
            net = reliability_network(base, variant)
            prog = build_app(
                app, net.topology.num_nodes, size_scale=4, iterations=1
            )
            times[variant] = run_trace(net, prog)
        norm = times["stash100"] / times["baseline"]
        print(
            f"{app:<13}{times['baseline']:>10}{times['stash100']:>10}"
            f"{norm:>11.3f}"
        )
    print("\n(normalized ~1.0 everywhere: stashing costs nothing, Fig. 6)")


if __name__ == "__main__":
    main()
