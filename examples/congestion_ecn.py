#!/usr/bin/env python3
"""Use case 2 (paper Section IV-B): stashing absorbs congestion
transients while ECN converges.

A uniform-random victim shares the dragonfly with hotspot aggressors
that switch on mid-run.  The example compares the ECN baseline with the
stashing network and prints the victim's latency distribution plus the
stash-buffer timeline at the hotspot switch (the paper's Fig. 7/8).

Run:  python examples/congestion_ecn.py
"""

from repro.engine.stats import TimeSeries
from repro.experiments.common import congestion_network, preset_by_name
from repro.traffic.aggressor import hotspot_scenario


def run(variant: str) -> None:
    base = preset_by_name("tiny")
    net = congestion_network(base, variant)
    onset = 3000
    scenario = hotspot_scenario(net, victim_rate=0.4, aggressor_start=onset)
    victims = frozenset(scenario.victim_nodes)

    series = TimeSeries(period=250)
    net.on_packet_delivered_hooks.append(
        lambda pkt, cycle: series.record(cycle, cycle - pkt.birth_cycle)
        if pkt.src in victims
        else None
    )
    net.sim.run(2000)
    net.open_measurement()
    net.sim.run(8000)
    net.close_measurement()

    stats = net.group_latency["victim"]
    diverted = sum(
        ip.packets_diverted for sw in net.switches for ip in sw.in_ports
    )
    print(f"--- {variant} ---")
    print(
        f"victim latency: mean={stats.mean:.0f}  p99={stats.percentile(99):.0f}"
        f"  max={stats.max:.0f} cycles"
    )
    print(f"packets stashed away during congestion: {diverted}")
    times, lats = series.series()
    timeline = "  ".join(
        f"t={int(t)}:{v:.0f}" for t, v in zip(times[::4], lats[::4])
    )
    print(f"victim avg latency over time: {timeline}")
    print()


def main() -> None:
    print("aggressors activate at cycle 3000; ECN throttles them;")
    print("stashing shields the victim while ECN converges\n")
    for variant in ("baseline", "stash100"):
        run(variant)


if __name__ == "__main__":
    main()
