#!/usr/bin/env python3
"""Stashing on a fat-tree (paper Section I: "similar analyses can be
conducted for ... the leaf switches in a multi-level fat-tree").

Builds a two-level leaf/spine fat-tree whose leaf switches carry short
endpoint links (big stash partitions) and long uplinks (none), then runs
end-to-end reliability stashing over it — demonstrating that the
architecture is topology-agnostic.

Run:  python examples/fattree_stash.py
"""

from repro import (
    FatTreeTopology,
    Network,
    ReliabilityParams,
    StashParams,
    tiny_preset,
)
from repro.routing import FatTreeRouter


def main() -> None:
    base = tiny_preset()
    # 4 leaves x 3 endpoints + 2 spines; leaf radix 6 fits the tiny switch
    topo = FatTreeTopology(
        num_leaves=4,
        num_spines=2,
        p=3,
        num_ports=base.switch.num_ports,
        latency_endpoint=2,
        latency_up=30,
    )
    cfg = base.with_(
        stash=StashParams(enabled=True),
        reliability=ReliabilityParams(enabled=True, error_rate=0.01),
    )
    net = Network(
        cfg,
        topology=topo,
        router=FatTreeRouter(topo, cfg_rng(cfg)),
    )
    net.add_uniform_traffic(rate=0.3, stop=6000)
    net.sim.run(6000)
    drained = net.drain(120_000)

    posted = sum(ep.messages_posted for ep in net.endpoints)
    delivered = sum(1 for m in net.messages.values() if m.delivered)
    retrans = sum(getattr(sw, "retransmits_issued", 0) for sw in net.switches)
    print(f"fat-tree: {topo.num_nodes} nodes, {topo.num_leaves} leaves, "
          f"{topo.num_spines} spines")
    print(f"messages delivered : {delivered}/{posted} (drained={drained})")
    print(f"retransmissions    : {retrans}")
    assert delivered == posted


def cfg_rng(cfg):
    from repro.engine.rng import DeterministicRng

    return DeterministicRng(cfg.sim.seed).stream("fattree-routing")


if __name__ == "__main__":
    main()
