"""simlint meta-tests: fixture corpus, suppressions, JSON schema, CLI
exit codes — and the guarantee that ``src/repro`` itself stays clean.

Each fixture file marks its violating lines with ``# expect: SIMxxx``
comments; the tests derive the expected (rule, line) pairs from those
markers so fixtures and expectations cannot drift apart.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.simlint import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    RULE_IDS,
    RULES,
    SCHEMA_VERSION,
    lint_file,
    lint_paths,
    lint_source,
    main,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "simlint_fixtures"
SRC = REPO / "src"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(SIM\d{3}(?:\s*,\s*SIM\d{3})*)")


def expected_markers(path: Path) -> set[tuple[str, int]]:
    """(rule_id, line) pairs declared by ``# expect:`` comments."""
    expected: set[tuple[str, int]] = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((rule_id.strip(), lineno))
    return expected


def actual_hits(path: Path) -> set[tuple[str, int]]:
    return {(v.rule_id, v.line) for v in lint_file(path)}


FIXTURE_FILES = [
    "sim001.py",
    "sim002.py",
    "parallel.py",
    "switch/sim003.py",
    "sim004.py",
    "sim005.py",
    "sim006.py",
    "analysis/sim007.py",
    "engine/sim008.py",
    "sim009.py",
    "sim010.py",
]


class TestFixtureCorpus:
    @pytest.mark.parametrize("rel", FIXTURE_FILES)
    def test_fixture_violations_match_markers(self, rel):
        path = FIXTURES / rel
        expected = expected_markers(path)
        assert expected, f"fixture {rel} declares no expectations"
        assert actual_hits(path) == expected

    def test_every_rule_has_fixture_coverage(self):
        covered = set()
        for rel in FIXTURE_FILES:
            covered.update(rule for rule, _ in expected_markers(FIXTURES / rel))
        assert covered == set(RULE_IDS)

    def test_rng_home_is_exempt(self):
        assert lint_file(FIXTURES / "rng.py") == []

    def test_rule_table_is_well_formed(self):
        ids = [r.rule_id for r in RULES]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        for rule in RULES:
            assert re.fullmatch(r"SIM\d{3}", rule.rule_id)
            assert rule.name and rule.rationale


class TestSuppressions:
    def test_suppressed_fixture_is_clean(self):
        assert lint_file(FIXTURES / "suppressed.py") == []

    def test_line_directive_is_rule_specific(self):
        src = "import time\n\nt = time.time()  # simlint: disable=SIM001\n"
        hits = lint_source(src, Path("model.py"))
        assert [v.rule_id for v in hits] == ["SIM002"]

    def test_disable_all_covers_any_rule(self):
        src = "import time\n\nt = time.time()  # simlint: disable=all\n"
        assert lint_source(src, Path("model.py")) == []

    def test_file_directive_scopes_to_whole_file(self):
        src = (
            "# simlint: disable-file=SIM002\n"
            "import time\n\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert lint_source(src, Path("model.py")) == []


class TestJsonOutput:
    def test_schema(self, capsys):
        code = main([str(FIXTURES / "sim006.py"), "--format", "json"])
        assert code == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["total"] == payload["by_rule"]["SIM006"] == 4
        for violation in payload["violations"]:
            assert set(violation) == {"rule", "path", "line", "col", "message"}
            assert violation["rule"] in RULE_IDS
            assert violation["line"] >= 1 and violation["col"] >= 1

    def test_text_output_has_stable_shape(self, capsys):
        code = main([str(FIXTURES / "sim004.py")])
        assert code == EXIT_VIOLATIONS
        out = capsys.readouterr().out.splitlines()
        assert re.match(r".*sim004\.py:\d+:\d+: SIM004 ", out[0])
        assert out[-1].startswith("simlint: 1 violation(s)")


class TestCli:
    def test_exit_clean_on_clean_tree(self, capsys):
        assert main([str(FIXTURES / "rng.py")]) == EXIT_CLEAN
        capsys.readouterr()

    def test_exit_error_on_missing_path(self, capsys):
        assert main([str(FIXTURES / "nope.py")]) == EXIT_ERROR
        capsys.readouterr()

    def test_exit_error_on_no_paths(self, capsys):
        assert main([]) == EXIT_ERROR
        capsys.readouterr()

    def test_exit_error_on_syntax_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == EXIT_ERROR
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.simlint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_CLEAN
        assert "SIM001" in proc.stdout


class TestRepoStaysClean:
    def test_src_repro_is_simlint_clean(self):
        violations, checked = lint_paths([SRC])
        assert checked > 50
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"src/repro regressed:\n{rendered}"
