"""Two-bank interleaved port memory (paper Figure 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.banked_buffer import PAGE_FLITS, BankedBuffer


class TestPartitioning:
    def test_page_rounding(self):
        buf = BankedBuffer(101, stash_flits=33)
        assert buf.capacity == 100
        assert buf.stash_capacity == 32
        assert buf.normal_capacity == 68

    def test_partition_isolation(self):
        buf = BankedBuffer(40, stash_flits=20)
        buf.allocate("normal", 20)
        # normal side full; stash side unaffected
        with pytest.raises(RuntimeError):
            buf.allocate("normal", 2)
        buf.allocate("stash", 20)
        with pytest.raises(RuntimeError):
            buf.allocate("stash", 2)

    def test_allocation_rounds_to_pages(self):
        buf = BankedBuffer(20, stash_flits=0)
        buf.allocate("normal", 3)  # rounds to 4
        assert buf.normal_free() == 16

    def test_free_returns_space(self):
        buf = BankedBuffer(20, stash_flits=8)
        buf.allocate("stash", 8)
        buf.free("stash", 8)
        assert buf.stash_free() == 8

    def test_over_free_rejected(self):
        buf = BankedBuffer(20)
        with pytest.raises(RuntimeError):
            buf.free("normal", 2)

    def test_unknown_partition_rejected(self):
        buf = BankedBuffer(20)
        with pytest.raises(ValueError):
            buf.allocate("mystery", 2)

    def test_repartition_requires_empty_stash(self):
        buf = BankedBuffer(40, stash_flits=20)
        buf.allocate("stash", 4)
        with pytest.raises(RuntimeError):
            buf.repartition(10)
        buf.free("stash", 4)
        buf.repartition(10)
        assert buf.stash_capacity == 10
        assert buf.normal_capacity == 30

    def test_repartition_respects_live_normal_data(self):
        buf = BankedBuffer(40, stash_flits=0)
        buf.allocate("normal", 32)
        with pytest.raises(RuntimeError):
            buf.repartition(16)

    @given(st.integers(PAGE_FLITS, 500), st.integers(0, 500))
    def test_partitions_always_cover_capacity(self, cap, stash):
        if stash > cap:
            with pytest.raises(ValueError):
                BankedBuffer(cap, stash)
            return
        buf = BankedBuffer(cap, stash)
        assert buf.normal_capacity + buf.stash_capacity == buf.capacity
        assert buf.capacity % PAGE_FLITS == 0


class TestBankConflicts:
    def test_two_accesses_full_throughput(self):
        """Paper Figure 4: a normal write and a stash read proceed in
        parallel because they start on different banks."""
        buf = BankedBuffer(64, stash_flits=32)
        w = buf.begin_access("normal_write", 8)
        r = buf.begin_access("stash_read", 8)
        for _ in range(8):
            advanced = buf.tick()
            assert advanced["normal_write"] and advanced["stash_read"]
        assert w.done and r.done
        assert w.stalls == 0 and r.stalls == 0

    def test_same_bank_collision_arbitrated(self):
        buf = BankedBuffer(64, stash_flits=32)
        a = buf.begin_access("normal_write", 4)
        buf.tick()  # a advances to odd bank next
        # b starts now; even bank is free (a is on odd), so no conflict
        b = buf.begin_access("stash_write", 4)
        total_stalls = 0
        while not (a.done and b.done):
            buf.tick()
            total_stalls = a.stalls + b.stalls
        assert total_stalls == 0

    def test_four_port_case_progresses(self):
        """All four logical ports active: two banks serve two accesses
        per cycle; everyone finishes within 2x the ideal time."""
        buf = BankedBuffer(64, stash_flits=32)
        accesses = [
            buf.begin_access(p, 6)
            for p in ("normal_read", "normal_write", "stash_read", "stash_write")
        ]
        ticks = 0
        while not all(a.done for a in accesses):
            buf.tick()
            ticks += 1
            assert ticks < 100, "bank scheduler livelocked"
        assert ticks <= 2 * 6 + 2

    def test_duplicate_port_access_rejected(self):
        buf = BankedBuffer(16)
        buf.begin_access("normal_read", 4)
        with pytest.raises(RuntimeError):
            buf.begin_access("normal_read", 2)

    def test_zero_length_rejected(self):
        buf = BankedBuffer(16)
        with pytest.raises(ValueError):
            buf.begin_access("normal_read", 0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["normal_read", "normal_write", "stash_read", "stash_write"]
                ),
                st.integers(1, 10),
            ),
            min_size=1,
            max_size=4,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=50)
    def test_all_accesses_complete(self, specs):
        buf = BankedBuffer(64, stash_flits=32)
        accesses = [buf.begin_access(p, n) for p, n in specs]
        for _ in range(200):
            if all(a.done for a in accesses):
                break
            buf.tick()
        assert all(a.done for a in accesses)
        # at most two accesses per cycle can advance (two banks), so a
        # single access never stalls more than the combined competitor time
        for a in accesses:
            assert a.stalls <= sum(n for _, n in specs)
