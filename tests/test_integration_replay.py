"""MPI trace replay over the network (the SST/Macro substitute)."""

import pytest

from repro.network import Network
from repro.trace.mpi import MpiProgram, all_to_all, allreduce
from repro.trace.replay import MpiReplay, run_trace
from tests.conftest import micro_config, single_switch_net


class TestBasicReplay:
    def test_single_send(self):
        net = single_switch_net()
        prog = MpiProgram("t", 2)
        prog.add_send(0, 1, 8)
        cycles = run_trace(net, prog)
        assert cycles > 0

    def test_ping_pong_orders_messages(self):
        """B's reply send must wait for A's message (recv dependency)."""
        net = single_switch_net()
        prog = MpiProgram("t", 2)
        prog.add_send(0, 1, 8, tag=0)  # A -> B
        prog.add_send(1, 0, 8, tag=1)  # B -> A, appended after B's recv
        run_trace(net, prog)
        msgs = sorted(net.messages.values(), key=lambda m: m.msg_id)
        a_to_b, b_to_a = msgs
        assert b_to_a.create_cycle >= a_to_b.complete_cycle

    def test_long_dependency_chain(self):
        """A token passed around a ring: completion times must be
        strictly increasing."""
        net = single_switch_net()
        n = 4
        # build in ring order: rank i's recv (from i-1) lands in its op
        # list before its own send, so the token is strictly passed on
        prog = MpiProgram("ring", n)
        for i in range(n):
            prog.add_send(i, (i + 1) % n, 4, tag=i)
        run_trace(net, prog)
        completes = {
            m.tag: m.complete_cycle for m in net.messages.values()
        }
        assert completes[0] < completes[1] < completes[2]

    def test_self_messages_complete_instantly(self):
        net = single_switch_net()
        prog = MpiProgram("t", 2)
        # hand-build a self-send: add_send skips it, so post via ops
        replay = MpiReplay(net, prog)
        net.sim.add(replay)
        net.sim.run(5)
        assert replay.finished

    def test_malformed_trace_rejected_upfront(self):
        net = single_switch_net()
        prog = MpiProgram("t", 2)
        prog.ops[0].append((1, 1, 99))  # recv that never matches
        with pytest.raises(ValueError, match="unmatched"):
            run_trace(net, prog, max_cycles=2000)

    def test_cycle_budget_exhaustion_raises(self):
        net = single_switch_net()
        prog = MpiProgram("t", 2)
        prog.add_send(0, 1, 500)  # needs far more than 20 cycles
        with pytest.raises(RuntimeError, match="incomplete"):
            run_trace(net, prog, max_cycles=20)


class TestCollectiveReplay:
    def test_allreduce_completes(self):
        net = single_switch_net()
        prog = MpiProgram("t", 6)
        allreduce(prog, list(range(6)), 4, 0)
        run_trace(net, prog)

    def test_all_to_all_completes_on_dragonfly(self):
        net = Network(micro_config())
        prog = MpiProgram("t", 6)
        all_to_all(prog, list(range(6)), 8, 0)
        cycles = run_trace(net, prog)
        assert cycles > 0

    def test_bandwidth_scales_runtime(self):
        """Doubling message sizes in an all-to-all must lengthen the
        bandwidth-bound execution."""
        times = []
        for size in (8, 16):
            net = single_switch_net()
            prog = MpiProgram("t", 6)
            all_to_all(prog, list(range(6)), size, 0)
            times.append(run_trace(net, prog))
        assert times[1] > times[0]


class TestRankMapping:
    def test_custom_mapping(self):
        net = Network(micro_config())
        prog = MpiProgram("t", 2)
        prog.add_send(0, 1, 4)
        # map ranks to the two most distant nodes
        run_trace(net, prog, rank_to_node=[0, net.topology.num_nodes - 1])
        msg = next(iter(net.messages.values()))
        assert msg.src == 0
        assert msg.dst == net.topology.num_nodes - 1

    def test_non_injective_mapping_rejected(self):
        net = Network(micro_config())
        prog = MpiProgram("t", 2)
        prog.add_send(0, 1, 4)
        with pytest.raises(ValueError, match="injective"):
            MpiReplay(net, prog, rank_to_node=[1, 1])

    def test_too_many_ranks_rejected(self):
        net = single_switch_net()
        prog = MpiProgram("t", 99)
        with pytest.raises(ValueError, match="exceed"):
            MpiReplay(net, prog)

    def test_contiguous_default_mapping(self):
        net = Network(micro_config())
        prog = MpiProgram("t", 3)
        prog.add_send(2, 0, 4)
        replay = MpiReplay(net, prog)
        assert replay.rank_to_node == [0, 1, 2]
