"""The engine-agnostic scenario layer: spec hashing, variant
resolution, and network materialisation.

The contract under test is the one both engines (and the sweep
executor's seed derivation) rely on: a ``ScenarioSpec`` is a pure value
— equal specs hash equal, different scenarios hash different, and
``resolved_config`` applies the paper's variant transforms exactly as
the pre-scenario experiment scripts did by hand.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.config import ReliabilityParams
from repro.scenario import (
    FatTreeTopologySpec,
    ScenarioSpec,
    SingleSwitchTopologySpec,
    UniformTraffic,
    congestion_scenario,
    reliability_scenario,
)
from repro.scenario.spec import build_network
from tests.conftest import micro_config


def test_spec_hash_is_stable_across_instances():
    cfg = micro_config()
    a = reliability_scenario(cfg, "stash50", traffic=(UniformTraffic(rate=0.4),))
    b = reliability_scenario(cfg, "stash50", traffic=(UniformTraffic(rate=0.4),))
    assert a == b
    assert a.spec_hash() == b.spec_hash()


def test_spec_hash_distinguishes_scenarios():
    cfg = micro_config()
    specs = [
        ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=0.4),)),
        ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=0.5),)),
        reliability_scenario(cfg, "baseline", traffic=(UniformTraffic(rate=0.4),)),
        reliability_scenario(cfg, "stash100", traffic=(UniformTraffic(rate=0.4),)),
        reliability_scenario(cfg, "stash25", traffic=(UniformTraffic(rate=0.4),)),
        congestion_scenario(cfg, "stash100"),
        ScenarioSpec(
            config=cfg,
            topology=SingleSwitchTopologySpec(num_nodes=4),
            traffic=(UniformTraffic(rate=0.4),),
        ),
        ScenarioSpec(
            config=cfg,
            topology=FatTreeTopologySpec(),
            traffic=(UniformTraffic(rate=0.4),),
        ),
    ]
    hashes = {s.spec_hash() for s in specs}
    assert len(hashes) == len(specs)


def test_with_seed_changes_hash_and_resolved_seed():
    cfg = micro_config()
    spec = ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=0.3),))
    seeded = spec.with_seed(12345)
    assert seeded.spec_hash() != spec.spec_hash()
    assert seeded.resolved_config().sim.seed == 12345
    # seed=None keeps the config's own seed
    assert spec.resolved_config().sim.seed == cfg.sim.seed


def test_reliability_variant_resolution_matches_manual_construction():
    cfg = micro_config()
    # what the pre-scenario fig5 script built by hand
    manual = cfg.with_(
        stash=replace(cfg.stash, enabled=True, capacity_scale=0.5),
        reliability=ReliabilityParams(enabled=True),
    )
    spec = reliability_scenario(cfg, "stash50")
    assert spec.resolved_config() == manual


def test_reliability_baseline_keeps_config_unchanged():
    # the paper's reliability baseline is the plain network: no stashing,
    # no retransmission, unlimited outstanding packets (the inert stash
    # fractions are normalised to defaults, which the disabled stash
    # never reads)
    cfg = micro_config()
    resolved = reliability_scenario(cfg, "baseline").resolved_config()
    assert resolved.stash.enabled is False
    assert resolved.reliability.enabled is False
    assert resolved.with_(stash=cfg.stash) == cfg


def test_congestion_variant_enables_ecn():
    cfg = micro_config()
    for variant, scale in (("baseline", None), ("stash100", 1.0), ("stash50", 0.5)):
        resolved = congestion_scenario(cfg, variant).resolved_config()
        assert resolved.ecn.enabled is True
        if scale is None:
            assert resolved.stash.enabled is False
        else:
            assert resolved.stash.enabled is True
            assert resolved.stash.capacity_scale == scale


def test_unknown_variant_rejected():
    cfg = micro_config()
    with pytest.raises(ValueError):
        reliability_scenario(cfg, "stash33")
    with pytest.raises(ValueError):
        congestion_scenario(cfg, "stash25")  # not in the VI-B study
    with pytest.raises(ValueError):
        ScenarioSpec(config=cfg, variant_kind="turbo")


def test_build_network_materialises_each_topology():
    cfg = micro_config()
    net = build_network(
        ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=0.2),))
    )
    assert net.topology.num_switches == 6  # p=1, a=2, h=1 dragonfly

    net = build_network(
        ScenarioSpec(
            config=cfg,
            topology=SingleSwitchTopologySpec(num_nodes=4),
            traffic=(UniformTraffic(rate=0.2),),
        )
    )
    assert net.topology.num_switches == 1
    assert net.topology.num_nodes == 4

    net = build_network(
        ScenarioSpec(
            config=cfg,
            topology=FatTreeTopologySpec(num_leaves=3, num_spines=2, p=2,
                                         min_ports=6, rows=2, cols=3),
            traffic=(UniformTraffic(rate=0.2),),
        )
    )
    assert net.topology.num_switches == 5  # 3 leaves + 2 spines
