"""Cross-kernel byte-identity: polling vs event cycle loops.

The event kernel's one proof obligation (docs/PERFORMANCE.md) is that a
skipped component step would have been a provable no-op — no state
change, no RNG draw, no counter increment.  These tests enforce the
consequence end to end: identical experiment output, down to every
individual latency sample, under both kernels.
"""

from __future__ import annotations

import io
import random
from contextlib import redirect_stdout
from dataclasses import replace

import numpy as np
import pytest

from repro.engine.config import SimParams
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig7 import run_fig7
from repro.experiments.common import reliability_network
from tests.conftest import micro_config


def _base(kernel: str, seed: int = 3):
    return micro_config(
        sim=SimParams(seed=seed, warmup_cycles=200, measure_cycles=600,
                      drain_cycles=8000, sample_period=25, kernel=kernel)
    )


def _render_fig5(kernel: str) -> str:
    """One quick fig5 sweep, captured exactly as the runner prints it."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        results = run_fig5(
            _base(kernel),
            loads=(0.2, 0.8),
            variants=("baseline", "stash100", "stash25"),
            seed=3,
        )
        print(format_fig5(results))
    return buffer.getvalue()


def test_fig5_quick_output_identical_across_kernels():
    polling = _render_fig5("polling")
    event = _render_fig5("event")
    assert polling, "fig5 rendered no output"
    assert polling == event


def test_fig7_results_identical_across_kernels():
    by_kernel = {}
    for kernel in ("polling", "event"):
        by_kernel[kernel] = run_fig7(
            _base(kernel), victim_rate=0.3, seed=3, total_cycles=1200
        )
    polling, event = by_kernel["polling"], by_kernel["event"]
    assert polling.keys() == event.keys()
    for variant in polling:
        p, e = polling[variant], event[variant]
        # exact equality on purpose: the kernels must not diverge by
        # even one sample (simlint float-equality rule does not apply to
        # identity assertions in tests)
        assert np.array_equal(p.time, e.time), variant
        assert np.array_equal(p.avg_latency, e.avg_latency, equal_nan=True), variant
        assert np.array_equal(p.icdf_latency, e.icdf_latency), variant
        assert p.mean_latency == pytest.approx(e.mean_latency, abs=0.0), variant
        assert p.p99_latency == pytest.approx(e.p99_latency, abs=0.0), variant


def _latency_samples(kernel: str, variant: str, rate: float, seed: int):
    net = reliability_network(_base(kernel, seed=seed), variant, seed=seed)
    net.add_uniform_traffic(rate=rate)
    net.run_standard()
    return net.sim.cycle, list(net.latency._samples)


@pytest.mark.parametrize("trial", range(4))
def test_fuzz_randomized_traffic_samples_identical(trial):
    """Fuzz flavour: randomized (variant, load, seed) points must yield
    the exact same per-packet latency sample sequence under both
    kernels, not just matching aggregates."""
    rng = random.Random(0xC0FFEE + trial)
    variant = rng.choice(["baseline", "stash100", "stash50", "stash25"])
    rate = rng.choice([0.15, 0.35, 0.55, 0.75])
    seed = rng.randrange(1, 10_000)
    p_cycle, p_samples = _latency_samples("polling", variant, rate, seed)
    e_cycle, e_samples = _latency_samples("event", variant, rate, seed)
    assert p_cycle == e_cycle
    assert p_samples, f"no traffic delivered for {variant}@{rate} seed={seed}"
    assert p_samples == e_samples
