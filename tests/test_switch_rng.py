"""Regression tests for the switch RNG-threading contract.

PR 2 removed the tiled switch's hidden fallback RNG
(``random.Random(switch_id * 7919 + 1)``): every switch must now be
handed a stream forked from the experiment seed.  These tests pin the
contract so it cannot silently regress.
"""

from __future__ import annotations

import pytest

from repro.engine.rng import DeterministicRng
from repro.network import Network
from tests.conftest import micro_config


def test_switch_requires_rng():
    """Constructing a switch without an RNG is a hard error, not a
    silently self-seeded fallback."""
    net = Network(micro_config())
    sw = net.switches[0]
    with pytest.raises(TypeError):
        type(sw)(0, net.config.switch, net.router, sw.port_specs)
    with pytest.raises(TypeError):
        type(sw)(0, net.config.switch, net.router, sw.port_specs, None)


def test_switch_rngs_derive_from_experiment_seed():
    """Each switch's stream is exactly DeterministicRng(seed).stream(
    "switch:<id>") — seeded from the experiment, not self-invented."""
    cfg = micro_config()
    net = Network(cfg)
    reference = DeterministicRng(cfg.sim.seed)
    for sw in net.switches:
        expected = reference.stream(f"switch:{sw.switch_id}")
        assert sw.rng.getstate() == expected.getstate()


def test_switches_never_share_a_stream():
    """No two switches alias the same RNG object or state, with and
    without stashing enabled."""
    from dataclasses import replace

    stashing = replace(micro_config().stash, enabled=True)
    for overrides in ({}, {"stash": stashing}):
        net = Network(micro_config(**overrides))
        rngs = [sw.rng for sw in net.switches]
        assert len({id(r) for r in rngs}) == len(rngs)
        states = [r.getstate() for r in rngs]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                assert states[i] != states[j]


def test_different_seeds_give_different_switch_streams():
    from dataclasses import replace

    cfg_a = micro_config()
    cfg_b = micro_config(sim=replace(cfg_a.sim, seed=cfg_a.sim.seed + 1))
    net_a, net_b = Network(cfg_a), Network(cfg_b)
    assert net_a.switches[0].rng.getstate() != net_b.switches[0].rng.getstate()
