"""Flow-level fastpath: determinism, sanity, and schema conformance.

The fastpath is a pure function of the :class:`ScenarioSpec` — no RNG,
no wall-clock, sorted iteration everywhere — so its results must be
*exactly* equal run-to-run and for any ``--jobs`` fan-out, not merely
statistically close.
"""

from __future__ import annotations

import pytest

from repro.engine.base import EngineResult, EngineUnsupported, get_engine
from repro.scenario import (
    FatTreeTopologySpec,
    ScenarioSpec,
    SingleSwitchTopologySpec,
    UniformTraffic,
    reliability_scenario,
)
from tests.conftest import micro_config


def _flow(spec):
    return get_engine("flow").run(spec)


def test_flow_engine_is_deterministic():
    spec = ScenarioSpec(
        config=micro_config(), traffic=(UniformTraffic(rate=0.6),)
    )
    a, b = _flow(spec), _flow(spec)
    assert a == b


def test_flow_low_load_accepts_offered():
    spec = ScenarioSpec(
        config=micro_config(), traffic=(UniformTraffic(rate=0.2),)
    )
    r = _flow(spec)
    assert r.engine == "flow"
    assert r.accepted_load == pytest.approx(r.offered_load, rel=1e-6)
    assert r.avg_latency > 0
    assert r.p99_latency >= r.avg_latency


def test_flow_throughput_monotone_and_saturating():
    cfg = micro_config()
    accepted = [
        _flow(ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=load),)))
        .accepted_load
        for load in (0.2, 0.5, 0.8, 1.0)
    ]
    # monotone up to fixed-point convergence noise
    for lo, hi in zip(accepted, accepted[1:]):
        assert hi >= lo - 1e-4
    # saturation: accepted never exceeds offered
    for load, acc in zip((0.2, 0.5, 0.8, 1.0), accepted):
        assert acc <= load + 1e-6


def test_flow_stash_capacity_binds():
    cfg = micro_config()
    full = _flow(
        reliability_scenario(
            cfg, "stash100", traffic=(UniformTraffic(rate=0.8),)
        )
    )
    quarter = _flow(
        reliability_scenario(
            cfg, "stash25", traffic=(UniformTraffic(rate=0.8),)
        )
    )
    assert quarter.accepted_load < full.accepted_load


def test_flow_supports_all_three_topologies():
    cfg = micro_config()
    for topo in (
        None,
        SingleSwitchTopologySpec(num_nodes=4),
        FatTreeTopologySpec(),
    ):
        kwargs = {"topology": topo} if topo is not None else {}
        r = _flow(
            ScenarioSpec(
                config=cfg, traffic=(UniformTraffic(rate=0.3),), **kwargs
            )
        )
        assert isinstance(r, EngineResult)
        assert r.accepted_load > 0


def test_flow_rejects_unknown_traffic():
    class WeirdTraffic:
        kind = "weird"

    spec = ScenarioSpec(config=micro_config())
    object.__setattr__(spec, "traffic", (WeirdTraffic(),))
    with pytest.raises(EngineUnsupported):
        _flow(spec)


def test_flow_fig5_jobs_byte_identical():
    """run_fig5 through the fastpath must produce identical results for
    serial and 4-way-parallel execution (the determinism contract CI
    enforces end-to-end on stdout)."""
    from repro.experiments.fig5 import run_fig5

    cfg = micro_config()
    kwargs = dict(
        loads=(0.2, 0.8),
        variants=("baseline", "stash25"),
        seed=3,
        engine="flow",
    )
    serial = run_fig5(cfg, jobs=1, **kwargs)
    fanned = run_fig5(cfg, jobs=4, **kwargs)
    assert serial == fanned


def test_flow_result_schema_matches_cycle():
    """Both engines emit the same stats schema for the same spec —
    groups, extras discoverability, and the scalar surface the
    experiment scripts consume."""
    spec = ScenarioSpec(
        config=micro_config(), traffic=(UniformTraffic(rate=0.3),)
    )
    flow = _flow(spec)
    cycle = get_engine("cycle").run(spec)
    for field in (
        "offered_load",
        "accepted_load",
        "avg_latency",
        "p90_latency",
        "p99_latency",
        "max_latency",
        "packets_measured",
        "cycles",
    ):
        assert hasattr(flow, field) and hasattr(cycle, field)
    assert flow.engine == "flow" and cycle.engine == "cycle"
