"""Network-level plumbing: ids, registries, stats windows, probes."""

import math

import pytest

from repro.engine.config import StashParams
from repro.network import Network
from tests.conftest import drain_and_check, micro_config, single_switch_net


class TestAllocation:
    def test_pids_unique_and_monotone(self):
        net = single_switch_net()
        pids = [net.alloc_pid() for _ in range(100)]
        assert pids == sorted(pids)
        assert len(set(pids)) == 100

    def test_message_registry(self):
        net = single_switch_net()
        msg = net.alloc_message(0, 1, 8, cycle=5, tag=3)
        assert net.messages[msg.msg_id] is msg
        assert msg.tag == 3


class TestStatsWindows:
    def test_latency_outside_window_dropped(self):
        net = single_switch_net()
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)  # no window open
        assert net.latency.count == 0

    def test_offered_accepted_balance_below_saturation(self):
        net = single_switch_net()
        net.add_uniform_traffic(rate=0.3)
        net.sim.run(300)
        net.open_measurement()
        net.sim.run(1500)
        net.close_measurement()
        res = net.result()
        assert res.accepted_load == pytest.approx(res.offered_load, rel=0.15)

    def test_result_nan_without_samples(self):
        net = single_switch_net()
        res = net.result()
        assert math.isnan(res.avg_latency)
        assert res.packets_measured == 0

    def test_inflight_latency_leq_total(self):
        net = single_switch_net()
        net.open_measurement()
        for _ in range(5):
            net.endpoints[0].post_message(1, 12, net.sim.cycle)
        drain_and_check(net)
        assert net.inflight_latency.mean <= net.latency.mean


class TestProbes:
    def test_stash_utilization_zero_on_baseline(self):
        net = single_switch_net()
        assert net.stash_utilization() == 0.0

    def test_stash_utilization_single_switch_argument(self):
        net = single_switch_net(stash=True)
        sw = net.switches[0]
        part = sw.stash_dir.partitions[0]
        part.commit(part.capacity // 2)
        assert net.stash_utilization(0) > 0
        assert net.stash_utilization() == net.stash_utilization(0)

    def test_quiescent_detects_pending_endpoint_work(self):
        net = single_switch_net()
        assert net.quiescent()
        net.endpoints[0].post_message(1, 4, 0)
        assert not net.quiescent()


class TestGroupTracking:
    def test_groups_partition_latency_samples(self):
        net = single_switch_net()
        net.track_group("left", {0, 1, 2})
        net.track_group("right", {3, 4, 5})
        net.open_measurement()
        for src in range(6):
            net.endpoints[src].post_message((src + 1) % 6, 4, 0)
        drain_and_check(net)
        left = net.group_latency["left"].count
        right = net.group_latency["right"].count
        assert left == right == 3
        assert left + right == net.latency.count


class TestMultiSourceWiring:
    def test_sources_limited_to_node_subset(self):
        net = single_switch_net()
        net.add_uniform_traffic(rate=0.5, nodes=[0, 1], stop=300)
        net.sim.run(300)
        for node in (2, 3, 4, 5):
            assert net.endpoints[node].messages_posted == 0
        assert net.endpoints[0].messages_posted > 0

    def test_micro_dragonfly_switch_count(self):
        net = Network(micro_config())
        assert len(net.switches) == 6
        assert len(net.endpoints) == 6

    def test_stashing_switch_type_selected_by_config(self):
        from repro.switch.stashing_switch import StashingSwitch
        from repro.switch.tiled_switch import TiledSwitch

        base = Network(micro_config())
        assert type(base.switches[0]) is TiledSwitch
        stash = Network(
            micro_config(stash=StashParams(enabled=True, frac_local=0.5))
        )
        assert type(stash.switches[0]) is StashingSwitch
