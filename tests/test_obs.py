"""Observability layer tests: instruments, filters, capture plumbing,
determinism, and the zero-overhead-when-off contract.

The two load-bearing guarantees:

* enabling observability never changes simulation results (obs-on and
  obs-off runs produce identical ``RunResult`` values), and
* a merged ``--trace`` file is byte-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import doctest
import time
from dataclasses import replace

import pytest

from repro.engine.config import ObsParams, SimParams
from repro.engine.parallel import (
    RunSpec,
    derive_run_seed,
    drain_run_log,
    run_specs,
)
from repro.network import Network
from repro.obs import (
    Counter,
    CounterRegistry,
    EventTrace,
    FixedHistogram,
    Gauge,
    Timeline,
    merge_snapshots,
    take_captures,
)
from repro.obs.counters import metric_name_ok
from tests.conftest import micro_config


def obs_config(trace: bool = True, **sim_overrides):
    cfg = micro_config(
        sim=SimParams(seed=5, warmup_cycles=200, measure_cycles=600,
                      drain_cycles=8000, sample_period=25)
    )
    if sim_overrides:
        cfg = cfg.with_(sim=replace(cfg.sim, **sim_overrides))
    return cfg.with_(obs=ObsParams(enabled=True, trace=trace))


def _obs_point(cfg, load, seed):
    """Module-level sweep point (picklable) used by the jobs-N tests."""
    cfg = cfg.with_(sim=replace(cfg.sim, seed=seed))
    net = Network(cfg)
    net.add_uniform_traffic(rate=load)
    net.run_standard()
    return load


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


class TestCounters:
    def test_metric_name_scheme(self):
        assert metric_name_ok("switch.damq.peak_committed_in")
        assert metric_name_ok("a.b.c.d")
        assert not metric_name_ok("switch.damq")  # needs >= 3 segments
        assert not metric_name_ok("Switch.damq.x")
        assert not metric_name_ok("switch..x")

    def test_counter_is_monotonic(self):
        c = Counter("a.b.c")
        c.add(3)
        c.add(0)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_tracks_max(self):
        g = Gauge("a.b.peak_x")
        for v in (2, 9, 4):
            g.set(v)
        assert g.value == 4 and g.max == 9

    def test_histogram_buckets(self):
        h = FixedHistogram("a.b.c", (10, 20))
        for v in (5, 10, 11, 50):
            h.record(v)
        assert h.buckets == [2, 1, 1]  # <=10, <=20, >20
        with pytest.raises(ValueError):
            FixedHistogram("a.b.c", (10, 10))

    def test_registry_idempotent_and_kind_checked(self):
        reg = CounterRegistry()
        assert reg.counter("a.b.c") is reg.counter("a.b.c")
        with pytest.raises(ValueError):
            reg.gauge("a.b.c")
        with pytest.raises(ValueError):
            reg.counter("not-a-metric")

    def test_snapshot_and_merge(self):
        reg = CounterRegistry()
        reg.counter("x.y.n").add(2)
        reg.gauge("x.y.peak_q").set(7)
        snap = reg.snapshot()
        merged = merge_snapshots([snap, snap])
        assert merged["x.y.n"] == 4  # counters sum
        assert merged["x.y.peak_q"] == 7  # peaks max


class TestEventTrace:
    def test_allowlist_window_and_stride(self):
        t = EventTrace(events=("ecn.mark",), start=2, stop=8, stride=2)
        for c in range(10):
            t.emit(c, "ecn.mark", 0, 0, 0, c, 1)
            t.emit(c, "flit.inject", -1, 0, 0, c, 1)
        cycles = [r[0] for r in t.records]
        assert cycles == [2, 4, 6]  # window [2, 8), every 2nd occurrence
        assert all(r[1] == "ecn.mark" for r in t.records)

    def test_record_cap_counts_dropped(self):
        t = EventTrace(max_records=2)
        for c in range(5):
            t.emit(c, "flit.inject", -1, 0, 0, c, 1)
        assert len(t.records) == 2 and t.dropped == 3

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError):
            EventTrace(events=("nope.nope",))


class TestTimeline:
    def test_tracks_series_and_peaks(self):
        from repro.engine.simulator import Simulator

        sim = Simulator()
        box = {"v": 0}

        class Bump:
            def step(self, cycle):
                box["v"] = cycle

        sim.add(Bump())
        tl = Timeline(5)
        tl.track("v", lambda: box["v"])
        tl.install(sim)
        sim.run(20)
        assert tl.cycles == [0, 5, 10, 15]
        assert tl.series("v") == [0, 5, 10, 15]
        assert tl.peak("v") == 15
        assert tl.mean("v") == 7.5
        assert list(tl.rows()) == [(0, 0), (5, 5), (10, 10), (15, 15)]

    def test_duplicate_name_rejected(self):
        tl = Timeline(5)
        tl.track("v", lambda: 0)
        with pytest.raises(ValueError):
            tl.track("v", lambda: 1)


def test_obs_doctests_pass():
    import repro.analysis.obsview
    import repro.obs.counters
    import repro.obs.events
    import repro.obs.timeline

    for mod in (repro.obs.counters, repro.obs.events, repro.obs.timeline,
                repro.analysis.obsview):
        result = doctest.testmod(mod)
        assert result.attempted > 0, f"{mod.__name__} lost its doctests"
        assert result.failed == 0, f"{mod.__name__} doctest failures"


# ---------------------------------------------------------------------------
# zero-overhead-when-off and no-result-perturbation contracts
# ---------------------------------------------------------------------------


class TestZeroOverheadContract:
    def test_obs_off_components_hold_none(self):
        net = Network(micro_config())
        assert net.obs is None and net._trace is None
        assert all(sw.obs is None for sw in net.switches)
        assert all(ep.obs is None for ep in net.endpoints)

    def test_obs_off_never_calls_emit(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("emit called with observability off")

        monkeypatch.setattr(EventTrace, "emit", boom)
        net = Network(micro_config())
        net.add_uniform_traffic(rate=0.4)
        net.run_standard()  # would raise if any guard were wrong
        assert net.sim.cycle > 0

    def test_metrics_only_mode_attaches_no_trace(self):
        net = Network(obs_config(trace=False))
        assert net.obs is not None and net._trace is None
        assert all(sw.obs is None for sw in net.switches)
        net.add_uniform_traffic(rate=0.4)
        net.run_standard()
        caps = take_captures()
        assert len(caps) == 1
        assert caps[0].records == () and caps[0].counters
        assert caps[0].counters["engine.sim.cycles"] == net.sim.cycle

    def test_obs_on_results_identical_to_off(self):
        def run(cfg):
            net = Network(cfg)
            net.add_uniform_traffic(rate=0.5)
            return net.run_standard()

        off = run(micro_config(sim=obs_config().sim))
        on = run(obs_config(trace=True))
        take_captures()  # leave no live observers behind
        assert on == off

    def test_counter_overhead_is_bounded(self):
        """Loose wall-clock guard: metrics-only mode may not slow the
        cycle loop measurably (counters are harvested at capture time,
        the trace guards are single attribute checks)."""

        def timed(cfg):
            best = float("inf")
            for _ in range(3):
                net = Network(cfg)
                net.add_uniform_traffic(rate=0.5)
                t0 = time.perf_counter()
                net.run_standard()
                best = min(best, time.perf_counter() - t0)
            take_captures()
            return best

        off = timed(micro_config(sim=obs_config().sim))
        on = timed(obs_config(trace=False))
        assert on <= off * 2.5 + 0.05


# ---------------------------------------------------------------------------
# capture plumbing and jobs-N determinism
# ---------------------------------------------------------------------------


def _sweep_trace(jobs: int) -> str:
    from repro.analysis.obsview import trace_lines

    base = obs_config(trace=True)
    specs = [
        RunSpec(key=load, fn=_obs_point, args=(base, load),
                seed=derive_run_seed(9, f"obs:{load!r}"))
        for load in (0.2, 0.4, 0.6)
    ]
    outcomes = run_specs(specs, jobs=jobs)
    assert all(len(o.obs) == 1 for o in outcomes)
    return "\n".join(trace_lines(drain_run_log())) + "\n"


class TestTraceDeterminism:
    def test_trace_bytes_identical_jobs_1_vs_4(self):
        serial = _sweep_trace(1)
        pooled = _sweep_trace(4)
        assert serial == pooled
        header = serial.splitlines()[0]
        assert '"schema":"repro.obs.trace"' in header
        assert '"runs":3' in header

    def test_run_log_orders_by_spec_not_completion(self):
        _sweep_trace(4)  # drained internally; log must now be empty
        assert drain_run_log() == []

    def test_csv_rendering_matches_jsonl_count(self, tmp_path):
        from repro.analysis.obsview import load_trace, write_trace

        base = obs_config(trace=True)
        specs = [
            RunSpec(key=0.4, fn=_obs_point, args=(base, 0.4),
                    seed=derive_run_seed(9, "obs:csv"))
        ]
        run_specs(specs, jobs=1)
        caps = drain_run_log()
        jsonl = tmp_path / "t.jsonl"
        csv = tmp_path / "t.csv"
        n_jsonl = write_trace(str(jsonl), caps)
        n_csv = write_trace(str(csv), caps, fmt="csv")
        assert n_jsonl == n_csv > 0
        header, events = load_trace(str(jsonl))
        assert header["runs"] == 1 and len(events) == n_jsonl
        assert csv.read_text().splitlines()[0] == (
            "run,cycle,event,sw,port,vc,pid,value"
        )

    def test_event_values_follow_schema(self):
        cfg = obs_config(trace=True)
        net = Network(cfg)
        net.add_uniform_traffic(rate=0.5)
        net.run_standard()
        caps = take_captures()
        events = {r[1] for r in caps[0].records}
        assert "flit.inject" in events and "packet.deliver" in events
        for cycle, event, sw, port, vc, pid, value in caps[0].records:
            if event == "flit.inject":
                assert sw == -1 and value > 0  # port carries the node id
            if event == "packet.deliver":
                assert sw == -1 and value >= 0  # value is the latency
