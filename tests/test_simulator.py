"""Cycle-loop kernel."""

import pytest

from repro.engine.simulator import Simulator


class Recorder:
    def __init__(self):
        self.cycles = []

    def step(self, cycle):
        self.cycles.append(cycle)


def test_run_advances_each_component_every_cycle():
    sim = Simulator()
    a, b = Recorder(), Recorder()
    sim.add(a)
    sim.add(b)
    sim.run(5)
    assert a.cycles == b.cycles == [0, 1, 2, 3, 4]
    assert sim.cycle == 5


def test_run_is_resumable():
    sim = Simulator()
    r = Recorder()
    sim.add(r)
    sim.run(3)
    sim.run(2)
    assert r.cycles == [0, 1, 2, 3, 4]


def test_sampler_period():
    sim = Simulator()
    hits = []
    sim.add_sampler(10, hits.append)
    sim.run(35)
    assert hits == [0, 10, 20, 30]


def test_sampler_rejects_bad_period():
    with pytest.raises(ValueError):
        Simulator().add_sampler(0, lambda c: None)


def test_sampler_phase_anchored_to_registration_cycle():
    # regression: a sampler added mid-run used to fire on multiples of
    # the global cycle count instead of its own registration cycle
    sim = Simulator()
    sim.run(3)
    hits = []
    sim.add_sampler(10, hits.append)
    sim.run(25)  # cycles 3..27
    assert hits == [3, 13, 23]


def test_samplers_with_different_anchors_coexist():
    sim = Simulator()
    early, late = [], []
    sim.add_sampler(10, early.append)
    sim.run(5)
    sim.add_sampler(10, late.append)
    sim.run(30)  # to cycle 35
    assert early == [0, 10, 20, 30]
    assert late == [5, 15, 25]


def test_run_until_true_immediately():
    sim = Simulator()
    assert sim.run_until(lambda: True, max_cycles=100)
    assert sim.cycle == 0


def test_run_until_deadline():
    sim = Simulator()
    assert not sim.run_until(lambda: False, max_cycles=100)
    assert sim.cycle == 100


def test_run_until_condition_met_midway():
    sim = Simulator()
    r = Recorder()
    sim.add(r)
    ok = sim.run_until(lambda: len(r.cycles) >= 10, max_cycles=1000, check_period=4)
    assert ok
    assert sim.cycle <= 16  # checked every 4 cycles


@pytest.mark.parametrize("kernel", ["polling", "event"])
def test_run_until_stops_exactly_at_first_true_cycle(kernel):
    # regression: the predicate used to be checked only every
    # check_period cycles, overshooting the stop point by up to a full
    # period (wasted cycles and late phase transitions)
    sim = Simulator(kernel=kernel)
    r = Recorder()
    sim.add(r)
    ok = sim.run_until(
        lambda: len(r.cycles) >= 10, max_cycles=1000, check_period=64
    )
    assert ok
    assert sim.cycle == 10
    assert r.cycles == list(range(10))


@pytest.mark.parametrize("kernel", ["polling", "event"])
def test_run_until_overshoot_pinned_for_odd_stop_cycles(kernel):
    # stop cycles that are not multiples of the legacy check period
    for stop in (1, 7, 63, 65, 129):
        sim = Simulator(kernel=kernel)
        r = Recorder()
        sim.add(r)
        assert sim.run_until(lambda: len(r.cycles) >= stop, max_cycles=1000)
        assert sim.cycle == stop
