"""Campaign service: file parsing, expansion, store integrity, caching,
sharding, and resume-after-SIGKILL byte-identity.

The flow engine makes most of these tests cheap (a tiny-preset flow
point is milliseconds); the kill/resume test deliberately uses the
committed short-window cycle campaign so each point is slow enough for
the signal to land mid-run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    RESULT_SCHEMA_VERSION,
    ResultStore,
    CorruptEntryError,
    MergeConflictError,
    expand_campaign,
    merge_stores,
    parse_campaign_text,
    run_campaign,
    shard_points,
)
from repro.campaign.cli import main as campaign_main
from repro.campaign.service import point_meta
from repro.campaign.spec import load_campaign, parse_toml_subset
from repro.campaign.store import encode_entry
from repro.experiments.common import preset_by_name, sweep_specs
from repro.experiments.fig5 import fig5_entries
from repro.obs.counters import CounterRegistry

REPO = Path(__file__).resolve().parent.parent

TINY_FLOW_TOML = """
[campaign]
name = "unit-tiny-flow"
sweep = "fig5"
preset = "tiny"
engine = "flow"
seeds = [1]

[axes]
variants = ["baseline", "stash25"]
loads = [0.3, 0.7]
"""


def tiny_flow_campaign(**overrides) -> Campaign:
    base = dict(
        name="unit-tiny-flow",
        sweep="fig5",
        preset="tiny",
        engine="flow",
        seeds=(1,),
        axes={"variants": ["baseline", "stash25"], "loads": [0.3, 0.7]},
    )
    base.update(overrides)
    return Campaign(**base)


def store_bytes(root: Path) -> dict[str, bytes]:
    """Relative path -> file bytes for every entry under a store root."""
    store = ResultStore(root)
    return {
        str(p.relative_to(root)): p.read_bytes() for p in store.entry_paths()
    }


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------


class TestParsing:
    def test_toml_round_trip(self):
        campaign = parse_campaign_text(TINY_FLOW_TOML, "toml")
        assert campaign.name == "unit-tiny-flow"
        assert campaign.sweep == "fig5"
        assert campaign.engine == "flow"
        assert campaign.seeds == (1,)
        assert campaign.axes["loads"] == [0.3, 0.7]
        assert campaign == tiny_flow_campaign()

    def test_json_equivalent(self):
        data = {
            "campaign": {
                "name": "unit-tiny-flow",
                "sweep": "fig5",
                "preset": "tiny",
                "engine": "flow",
                "seeds": [1],
            },
            "axes": {
                "variants": ["baseline", "stash25"],
                "loads": [0.3, 0.7],
            },
        }
        campaign = parse_campaign_text(json.dumps(data), "json")
        assert campaign == parse_campaign_text(TINY_FLOW_TOML, "toml")

    def test_load_campaign_by_suffix(self, tmp_path):
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(TINY_FLOW_TOML)
        assert load_campaign(str(toml_path)) == tiny_flow_campaign()

    def test_subset_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_toml_subset(TINY_FLOW_TOML) == tomllib.loads(
            TINY_FLOW_TOML
        )

    def test_committed_campaign_files_parse_under_both_parsers(self):
        """Every campaigns/*.toml must stay inside the 3.10 subset."""
        tomllib = pytest.importorskip("tomllib")
        files = sorted((REPO / "campaigns").glob("*.toml"))
        assert files, "no committed campaign files found"
        for path in files:
            text = path.read_text()
            assert parse_toml_subset(text) == tomllib.loads(text), path
            load_campaign(str(path))  # and it validates as a campaign

    @pytest.mark.parametrize(
        "mutant, match",
        [
            ({"sweep": "fig6"}, "unknown sweep"),
            ({"preset": "huge"}, "unknown preset"),
            ({"engine": "quantum"}, "unknown engine"),
            ({"seeds": ()}, "seeds"),
            ({"seeds": (True,)}, "seeds"),
            ({"windows": {"tea_break": 5}}, "windows"),
        ],
    )
    def test_validation_errors(self, mutant, match):
        with pytest.raises(CampaignError, match=match):
            tiny_flow_campaign(**mutant)

    def test_unknown_sections_and_keys_rejected(self):
        with pytest.raises(CampaignError, match="unknown campaign section"):
            parse_campaign_text('{"campaign": {}, "extra": {}}', "json")
        with pytest.raises(CampaignError, match="unknown \\[campaign\\] key"):
            parse_campaign_text(
                '{"campaign": {"name": "x", "sweep": "fig5", "bogus": 1}}',
                "json",
            )
        with pytest.raises(CampaignError, match="missing 'sweep'"):
            parse_campaign_text('{"campaign": {"name": "x"}}', "json")

    def test_unknown_axes_rejected_at_expansion(self):
        campaign = tiny_flow_campaign(axes={"flavours": ["mint"]})
        with pytest.raises(ValueError, match="unknown \\['flavours'\\]"):
            expand_campaign(campaign)

    def test_subset_parser_rejects_unsupported_toml(self):
        with pytest.raises(CampaignError, match="single-level"):
            parse_toml_subset("[a.b]\n")
        with pytest.raises(CampaignError, match="key = value"):
            parse_toml_subset("just words\n")
        with pytest.raises(CampaignError, match="unsupported value"):
            parse_toml_subset("x = 1979-05-27\n")

    def test_campaign_hash_ignores_axes_order(self):
        a = tiny_flow_campaign(axes={"variants": ["baseline"], "loads": [0.3]})
        b = tiny_flow_campaign(axes={"loads": [0.3], "variants": ["baseline"]})
        assert a.campaign_hash() == b.campaign_hash()
        assert a.campaign_hash() != tiny_flow_campaign().campaign_hash()


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------


class TestExpansion:
    def test_order_indices_and_keys(self):
        points = expand_campaign(tiny_flow_campaign(seeds=(1, 2)))
        assert [p.index for p in points] == list(range(8))
        assert points[0].key == (1, "baseline", 0.3)
        assert points[4].key == (2, "baseline", 0.3)  # seed-major order

    def test_matches_interactive_sweep_specs(self):
        """A campaign point's executor spec is exactly what the
        interactive harness builds — same seed, same spec, same fn —
        so cached results are interchangeable."""
        campaign = tiny_flow_campaign()
        base = campaign.base_config()
        entries = fig5_entries(
            base, loads=(0.3, 0.7), variants=("baseline", "stash25")
        )
        expected = sweep_specs(entries, seed=1, engine="flow")
        points = expand_campaign(campaign)
        assert len(points) == len(expected)
        for point, spec in zip(points, expected):
            run = point.run_spec()
            assert run.seed == spec.seed
            assert run.args == spec.args
            assert run.fn is spec.fn

    def test_loads_coerced_to_float(self):
        """TOML `1` and `1.0` must label (and therefore seed and hash)
        identically."""
        ints = expand_campaign(
            tiny_flow_campaign(axes={"variants": ["baseline"], "loads": [1]})
        )
        floats = expand_campaign(
            tiny_flow_campaign(axes={"variants": ["baseline"], "loads": [1.0]})
        )
        assert [p.store_key() for p in ints] == [
            p.store_key() for p in floats
        ]

    def test_windows_override_reaches_config(self):
        campaign = tiny_flow_campaign(windows={"measure_cycles": 123})
        assert campaign.base_config().sim.measure_cycles == 123
        plain = tiny_flow_campaign().base_config()
        assert plain.sim.measure_cycles != 123

    def test_store_key_includes_engine_and_schema(self):
        flow = expand_campaign(tiny_flow_campaign())[0]
        cycle = expand_campaign(tiny_flow_campaign(engine="cycle"))[0]
        assert flow.spec.spec_hash() == cycle.spec.spec_hash()
        assert flow.store_key() != cycle.store_key()
        assert flow.store_key()[2] == RESULT_SCHEMA_VERSION

    def test_shards_partition(self):
        points = expand_campaign(tiny_flow_campaign(seeds=(1, 2)))
        s0 = shard_points(points, (0, 3))
        s1 = shard_points(points, (1, 3))
        s2 = shard_points(points, (2, 3))
        got = sorted(p.index for shard in (s0, s1, s2) for p in shard)
        assert got == [p.index for p in points]
        assert shard_points(points, None) == points
        with pytest.raises(CampaignError, match="invalid shard"):
            shard_points(points, (3, 3))


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------


def _one_computed_entry(tmp_path):
    """Run a one-point campaign; returns (campaign, store, entry path)."""
    campaign = tiny_flow_campaign(
        axes={"variants": ["baseline"], "loads": [0.3]}
    )
    store = ResultStore(tmp_path / "store")
    run_campaign(campaign, store)
    [path] = store.entry_paths()
    return campaign, store, path


class TestStore:
    def test_round_trip_and_canonical_bytes(self, tmp_path):
        campaign, store, path = _one_computed_entry(tmp_path)
        point = expand_campaign(campaign)[0]
        entry = store.load(point.store_key())
        assert entry is not None
        assert entry.result.engine == "flow"
        assert entry.meta["label"] == point.label
        # bytes are a pure function of (key, result, meta)
        assert path.read_bytes() == encode_entry(
            point.store_key(), entry.result, point_meta(point)
        )

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "empty")
        key = ("0" * 64, "flow", RESULT_SCHEMA_VERSION)
        assert store.load(key) is None
        assert len(store) == 0

    def test_truncated_entry_is_corrupt(self, tmp_path):
        campaign, store, path = _one_computed_entry(tmp_path)
        point = expand_campaign(campaign)[0]
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CorruptEntryError, match="unreadable"):
            store.load(point.store_key())
        assert store.get(point.store_key()) is None

    def test_bit_flip_is_corrupt(self, tmp_path):
        campaign, store, path = _one_computed_entry(tmp_path)
        point = expand_campaign(campaign)[0]
        raw = bytearray(path.read_bytes())
        pos = raw.index(b'"result"') + 20
        raw[pos] = raw[pos] ^ 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptEntryError):
            store.load(point.store_key())

    def test_misfiled_entry_is_corrupt(self, tmp_path):
        """Valid bytes under the wrong cache key must not be served."""
        campaign, store, path = _one_computed_entry(tmp_path)
        other = ResultStore(tmp_path / "store")
        wrong_key = ("ab" * 32, "flow", RESULT_SCHEMA_VERSION)
        wrong_path = other.path_for(wrong_key)
        wrong_path.parent.mkdir(parents=True, exist_ok=True)
        wrong_path.write_bytes(path.read_bytes())
        with pytest.raises(CorruptEntryError, match="identity"):
            store.load(wrong_key)

    def test_merge_union_and_conflict(self, tmp_path):
        campaign = tiny_flow_campaign()
        full = ResultStore(tmp_path / "full")
        run_campaign(campaign, full)
        half = ResultStore(tmp_path / "half")
        run_campaign(campaign, half, shard=(0, 2))

        merged = tmp_path / "merged"
        copied, identical = merge_stores(
            [tmp_path / "half", tmp_path / "full"], merged
        )
        assert (copied, identical) == (len(full), len(half))
        assert store_bytes(merged) == store_bytes(tmp_path / "full")

        # corrupt one overlapping entry -> conflict refused
        [first, *_] = ResultStore(merged).entry_paths()
        first.write_bytes(first.read_bytes().replace(b"flow", b"wolf", 1))
        with pytest.raises(MergeConflictError, match="different bytes"):
            merge_stores([tmp_path / "full"], merged)


# ----------------------------------------------------------------------
# executor: caching, sharding, batching, counters
# ----------------------------------------------------------------------


class TestRunCampaign:
    def test_second_run_is_all_hits_and_bytes_stable(self, tmp_path):
        campaign = tiny_flow_campaign()
        store = ResultStore(tmp_path / "store")
        first = run_campaign(campaign, store)
        assert (first.hits, first.computed) == (0, 4)
        before = store_bytes(tmp_path / "store")

        reg = CounterRegistry()
        second = run_campaign(campaign, store, registry=reg)
        assert (second.hits, second.computed) == (4, 0)
        assert second.hit_rate == 1.0
        assert second.batches == 0
        assert store_bytes(tmp_path / "store") == before
        snap = reg.snapshot()
        assert snap["campaign.points.hit"] == 4
        assert snap["campaign.points.total"] == 4

    def test_corrupt_entry_recomputed_not_served(self, tmp_path):
        campaign = tiny_flow_campaign()
        store = ResultStore(tmp_path / "store")
        run_campaign(campaign, store)
        before = store_bytes(tmp_path / "store")
        [path, *_] = store.entry_paths()
        path.write_bytes(b'{"body": "gone"')

        reg = CounterRegistry()
        lines: list[str] = []
        summary = run_campaign(
            campaign, store, registry=reg, progress=lines.append
        )
        assert summary.corrupt == 1
        assert summary.computed == 1
        assert summary.hits == 3
        assert reg.snapshot()["campaign.cache.corrupt"] == 1
        assert any("corrupt entry" in line for line in lines)
        # the recomputation restores the exact original bytes
        assert store_bytes(tmp_path / "store") == before

    def test_shards_merge_to_full_run_bytes(self, tmp_path):
        campaign = tiny_flow_campaign(seeds=(1, 2))
        full = ResultStore(tmp_path / "full")
        summary = run_campaign(campaign, full, jobs=2)
        assert summary.computed == 8

        for i in range(2):
            shard_sum = run_campaign(
                campaign, ResultStore(tmp_path / f"s{i}"), shard=(i, 2)
            )
            assert shard_sum.shard_points == 4
        merge_stores([tmp_path / "s0", tmp_path / "s1"], tmp_path / "merged")
        assert store_bytes(tmp_path / "merged") == store_bytes(
            tmp_path / "full"
        )

    def test_batches_bound_admission_not_results(self, tmp_path):
        campaign = tiny_flow_campaign()
        reg = CounterRegistry()
        store = ResultStore(tmp_path / "batched")
        summary = run_campaign(campaign, store, batch=1, registry=reg)
        assert summary.batches == 4
        assert reg.snapshot()["campaign.batches.admitted"] == 4

        plain = ResultStore(tmp_path / "plain")
        run_campaign(campaign, plain)
        assert store_bytes(tmp_path / "batched") == store_bytes(
            tmp_path / "plain"
        )

    def test_summary_receipt_is_deterministic(self, tmp_path):
        campaign = tiny_flow_campaign()
        store = ResultStore(tmp_path / "store")
        run_campaign(campaign, store)
        a = run_campaign(campaign, store).format()
        b = run_campaign(campaign, store).format()
        assert a == b
        assert "cache     100.0%" in a


# ----------------------------------------------------------------------
# report + CLI
# ----------------------------------------------------------------------


class TestReportAndCli:
    def _write_campaign(self, tmp_path) -> Path:
        path = tmp_path / "unit.toml"
        path.write_text(TINY_FLOW_TOML)
        return path

    def test_report_requires_complete_store(self, tmp_path, capsys):
        from repro.analysis.campaign import (
            CampaignReportError,
            campaign_rows,
            format_campaign_report,
        )

        campaign = tiny_flow_campaign()
        store = ResultStore(tmp_path / "store")
        run_campaign(campaign, store, shard=(0, 2))
        with pytest.raises(CampaignReportError, match="missing 2 of 4"):
            campaign_rows(campaign, store)

        run_campaign(campaign, store, shard=(1, 2))
        rows = campaign_rows(campaign, store)
        text = format_campaign_report(campaign, rows)
        assert "Campaign report — unit-tiny-flow" in text
        assert "baseline" in text and "stash25" in text
        assert "avg-latency CDF" in text

    def test_cli_run_report_show_merge(self, tmp_path, capsys):
        campaign_file = str(self._write_campaign(tmp_path))
        store = str(tmp_path / "store")

        assert campaign_main(["run", campaign_file, "--store", store]) == 0
        out1 = capsys.readouterr().out
        assert "computed  4" in out1

        # report before completion fails loudly with exit 1
        empty = str(tmp_path / "empty")
        assert (
            campaign_main(["report", campaign_file, "--store", empty]) == 1
        )
        err = capsys.readouterr().err
        assert "missing 4 of 4" in err

        assert campaign_main(["report", campaign_file, "--store", store]) == 0
        report_a = capsys.readouterr().out
        assert "Campaign report" in report_a

        # second run: all hits, and the report bytes are unchanged
        assert campaign_main(["run", campaign_file, "--store", store]) == 0
        assert "hits      4" in capsys.readouterr().out
        campaign_main(["report", campaign_file, "--store", store])
        assert capsys.readouterr().out == report_a

        assert (
            campaign_main(["show", campaign_file, "--store", store]) == 0
        )
        shown = capsys.readouterr().out
        assert shown.count("[cached]") == 4

        merged = str(tmp_path / "merged")
        assert campaign_main(["merge", merged, store, store]) == 0
        assert store_bytes(Path(merged)) == store_bytes(Path(store))

    def test_cli_rejects_bad_shard(self, tmp_path):
        campaign_file = str(self._write_campaign(tmp_path))
        with pytest.raises(SystemExit):
            campaign_main(
                ["run", campaign_file, "--store", "s", "--shard", "2/2"]
            )


# ----------------------------------------------------------------------
# resume after SIGKILL
# ----------------------------------------------------------------------


class TestResumeAfterKill:
    CAMPAIGN = REPO / "campaigns" / "resume_smoke.toml"

    def _run(self, store: Path, *extra: str) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.campaign", "run",
             str(self.CAMPAIGN), "--store", str(store), *extra],
            env=env, cwd=REPO, capture_output=True, text=True,
        )

    def test_sigkill_resume_is_byte_identical(self, tmp_path):
        """Kill a campaign run mid-flight with SIGKILL; the resumed run
        computes only the missing points and the final store and report
        are byte-identical to an uninterrupted run's."""
        baseline = tmp_path / "baseline"
        proc = self._run(baseline)
        assert proc.returncode == 0, proc.stderr
        total = len(store_bytes(baseline))
        assert total == 4

        killed = tmp_path / "killed"
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign", "run",
             str(self.CAMPAIGN), "--store", str(killed)],
            env=env, cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(store_bytes(killed)) >= 1:
                    break
                if victim.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
                time.sleep(0.05)
            victim.send_signal(signal.SIGKILL)
            assert victim.wait(timeout=30) == -signal.SIGKILL
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)

        partial = store_bytes(killed)
        assert 1 <= len(partial) < total
        # every surviving entry is already byte-identical (atomic writes)
        full = store_bytes(baseline)
        for rel, data in partial.items():
            assert full[rel] == data

        resume = self._run(killed)
        assert resume.returncode == 0, resume.stderr
        assert f"hits      {len(partial)}" in resume.stdout
        assert f"computed  {total - len(partial)}" in resume.stdout
        assert store_bytes(killed) == full

        # and the rendered reports agree byte-for-byte
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        reports = [
            subprocess.run(
                [sys.executable, "-m", "repro.campaign", "report",
                 str(self.CAMPAIGN), "--store", str(s)],
                env=env, cwd=REPO, capture_output=True, text=True,
            )
            for s in (baseline, killed)
        ]
        assert all(r.returncode == 0 for r in reports)
        assert reports[0].stdout == reports[1].stdout
