"""Alternative tile geometries.

The paper cites published tiled designs at several scales: 8x8 tiles for
a 64-port switch (YARC/BlackWidow) and 3x4 tiles for 36 ports; its own
evaluation uses 4x4 tiles for 20 ports.  The datapath must work for all
of them — tiling only has to satisfy P = R*I = C*O.
"""

import pytest

from repro.engine.config import (
    DragonflyParams,
    NetworkConfig,
    ReliabilityParams,
    SimParams,
    StashParams,
    SwitchParams,
)
from repro.network import Network
from repro.topology.single_switch import SingleSwitchTopology
from tests.conftest import drain_and_check


def _switch(num_ports, rows, cols):
    return SwitchParams(
        num_ports=num_ports,
        rows=rows,
        cols=cols,
        num_vcs=6,
        input_buffer_flits=96,
        output_buffer_flits=96,
        max_packet_flits=4,
        sideband_latency=2,
    )


def _net(num_ports, rows, cols, nodes, stash=False):
    cfg = NetworkConfig(
        switch=_switch(num_ports, rows, cols),
        dragonfly=DragonflyParams(p=1, a=2, h=1, latency_endpoint=1,
                                  latency_local=2, latency_global=4),
        stash=StashParams(enabled=stash, frac_local=0.5),
        reliability=ReliabilityParams(enabled=stash),
        sim=SimParams(seed=5, warmup_cycles=100, measure_cycles=500,
                      drain_cycles=60000),
    )
    topo = SingleSwitchTopology(nodes, num_ports, latency=2)
    return Network(cfg, topology=topo)


@pytest.mark.parametrize(
    "ports,rows,cols,nodes",
    [
        (36, 3, 4, 12),   # the 3x4-tile 36-port design the paper cites
        (64, 8, 8, 16),   # BlackWidow-scale 8x8 tiles
        (12, 2, 3, 12),   # asymmetric R != C
        (6, 1, 1, 6),     # degenerate single tile (pure crossbar)
        (8, 4, 2, 8),     # tall tiling
    ],
)
def test_geometry_delivers(ports, rows, cols, nodes):
    net = _net(ports, rows, cols, nodes)
    for src in range(nodes):
        net.endpoints[src].post_message((src + 1) % nodes, 8, 0)
    drain_and_check(net)


@pytest.mark.parametrize("ports,rows,cols,nodes", [(36, 3, 4, 12), (64, 8, 8, 16)])
def test_geometry_with_stashing(ports, rows, cols, nodes):
    net = _net(ports, rows, cols, nodes, stash=True)
    for src in range(nodes):
        net.endpoints[src].post_message((src + 5) % nodes, 8, 0)
    drain_and_check(net)
    sw = net.switches[0]
    stored = sum(p.stored_total for p in sw.stash_dir.partitions)
    assert stored == nodes * 2  # two packets per 8-flit message


def test_internal_bandwidth_ratio_matches_rows():
    """The paper's observation: column bandwidth is R x switch radix."""
    for ports, rows, cols in [(20, 4, 4), (64, 8, 8), (36, 3, 4)]:
        sw = _switch(ports, rows, cols)
        assert sw.internal_bandwidth_ratio == rows
        # total column channels = R*C*O = R*P (substituting P = C*O)
        assert rows * cols * sw.tile_outputs == rows * ports
