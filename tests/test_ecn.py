"""ECN transmission windows (paper Section IV-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import EcnParams
from repro.protocol.ecn import EcnWindows


def windows(**kw):
    defaults = dict(
        enabled=True,
        window_max_flits=4096,
        window_min_flits=24,
        recovery_period=30,
        recovery_flits=1,
    )
    defaults.update(kw)
    return EcnWindows(EcnParams(**defaults))


class TestWindowGating:
    def test_initial_window_is_max(self):
        w = windows()
        assert w.window(5) == 4096
        assert w.can_send(5, 4096)
        assert not w.can_send(5, 4097)

    def test_inject_consumes_window(self):
        w = windows()
        w.on_inject(5, 4000)
        assert not w.can_send(5, 100)
        assert w.can_send(5, 96)

    def test_windows_are_per_destination(self):
        w = windows()
        w.on_inject(5, 4096)
        assert not w.can_send(5, 1)
        assert w.can_send(6, 4096)

    def test_ack_releases(self):
        w = windows()
        w.on_inject(5, 100)
        w.on_ack(5, 100, ecn_marked=False)
        assert w.in_flight(5) == 0
        assert w.window(5) == 4096  # unmarked ACK leaves the window alone

    def test_ack_underflow_rejected(self):
        w = windows()
        with pytest.raises(RuntimeError):
            w.on_ack(5, 10, ecn_marked=False)


class TestMarking:
    def test_marked_ack_cuts_to_80_percent(self):
        w = windows()
        w.on_inject(5, 24)
        w.on_ack(5, 24, ecn_marked=True)
        assert w.window(5) == pytest.approx(4096 * 0.8)
        assert w.window_cuts == 1

    def test_multiplicative_decrease_compounds(self):
        w = windows()
        for _ in range(3):
            w.on_inject(5, 24)
            w.on_ack(5, 24, ecn_marked=True)
        assert w.window(5) == pytest.approx(4096 * 0.8**3)

    def test_floor_at_window_min(self):
        w = windows(window_max_flits=100, window_min_flits=50)
        for _ in range(20):
            w.on_inject(5, 1)
            w.on_ack(5, 1, ecn_marked=True)
        assert w.window(5) == 50


class TestRecovery:
    def test_recovers_one_flit_per_period(self):
        w = windows(recovery_period=30, recovery_flits=1)
        w.on_inject(5, 24)
        w.on_ack(5, 24, ecn_marked=True)
        start = w.window(5)
        for cycle in range(1, 30):
            w.tick(cycle)
        assert w.window(5) == start
        w.tick(30)
        assert w.window(5) == start + 1

    def test_recovery_stops_at_max(self):
        w = windows(window_max_flits=30, window_min_flits=10,
                    recovery_period=1, recovery_flits=10)
        w.on_inject(5, 1)
        w.on_ack(5, 1, ecn_marked=True)  # 24 (0.8*30)
        for cycle in range(1, 4):
            w.tick(cycle)
        assert w.window(5) == 30
        assert w.throttled_destinations == 0

    def test_paper_constants_recover_in_expected_time(self):
        """4096 * 0.2 flits lost per cut; +1 flit / 30 cycles means full
        recovery from one cut takes ~24.6k cycles."""
        w = windows()
        w.on_inject(5, 24)
        w.on_ack(5, 24, ecn_marked=True)
        deficit = 4096 - w.window(5)
        cycles_needed = deficit * 30
        assert cycles_needed == pytest.approx(24576, rel=0.01)


class TestDisabled:
    def test_disabled_never_gates(self):
        w = windows(enabled=False)
        assert w.can_send(5, 10**9)
        w.on_inject(5, 100)
        assert w.in_flight(5) == 0  # accounting off entirely


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 64), st.booleans()),
        max_size=80,
    )
)
@settings(max_examples=50)
def test_in_flight_never_negative_and_window_bounded(ops):
    w = windows(window_max_flits=256, window_min_flits=8)
    outstanding: dict[int, list[int]] = {}
    for dst, size, marked in ops:
        if w.can_send(dst, size):
            w.on_inject(dst, size)
            outstanding.setdefault(dst, []).append(size)
        elif outstanding.get(dst):
            done = outstanding[dst].pop(0)
            w.on_ack(dst, done, marked)
        assert w.in_flight(dst) >= 0
        assert 8 <= w.window(dst) <= 256
