"""Full-datapath integration on a single switch: ingress -> row bus ->
tile crossbar -> column channel -> output mux -> output buffer -> link."""

import pytest

from tests.conftest import drain_and_check, single_switch_net


class TestDelivery:
    def test_one_packet(self):
        net = single_switch_net()
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)
        assert net.endpoints[1].packets_delivered == 1

    def test_all_to_all(self):
        net = single_switch_net()
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    net.endpoints[src].post_message(dst, 8, 0)
        drain_and_check(net)
        assert all(ep.packets_delivered == 10 for ep in net.endpoints)

    def test_in_order_within_pair(self):
        """Single path per (src, dst) on one switch: packets of one
        message must arrive in sequence order."""
        net = single_switch_net()
        net.endpoints[0].post_message(1, 40, 0)  # 10 packets
        seqs = []
        net.on_packet_delivered_hooks.append(
            lambda pkt, c: seqs.append(pkt.seq)
        )
        drain_and_check(net)
        assert seqs == sorted(seqs)

    def test_min_latency_sane(self):
        """Latency >= channel latencies + pipeline depth."""
        net = single_switch_net()
        net.open_measurement()
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)
        # 2 (inject) + 2 (eject) channel cycles + >=4 pipeline stages + flits
        assert net.latency.mean >= 8
        assert net.latency.mean <= 60  # and not absurdly slow

    def test_wide_packets_wormhole(self):
        """A packet larger than every internal buffer still flows
        (wormhole: it occupies multiple stages at once)."""
        net = single_switch_net()
        # message of 4 packets x 4 flits from every node to node 0
        for src in range(1, 6):
            net.endpoints[src].post_message(0, 16, 0)
        drain_and_check(net)
        assert net.endpoints[0].packets_delivered == 20


class TestBandwidth:
    def test_single_flow_near_link_rate(self):
        net = single_switch_net()
        net.endpoints[0].post_message(1, 400, 0)
        net.sim.run(600)
        # 400 flits over a 1 flit/cycle link with pipeline fill: done
        assert net.endpoints[1].flits_ejected >= 390

    def test_oversubscribed_output_shares_fairly(self):
        """Five sources to one destination: each gets ~1/5 of the link."""
        net = single_switch_net()
        for src in range(1, 6):
            net.endpoints[src].post_message(0, 400, 0)
        net.sim.run(1200)
        delivered = {
            src: 0 for src in range(1, 6)
        }
        for msg in net.messages.values():
            delivered[msg.src] = msg.packets_delivered
        total = sum(delivered.values())
        assert total > 0
        share = {s: d / total for s, d in delivered.items()}
        for s, frac in share.items():
            assert frac == pytest.approx(0.2, abs=0.06), share


class TestDeterminism:
    def _run(self, seed):
        net = single_switch_net()
        net.add_uniform_traffic(rate=0.4, stop=800)
        net.sim.run(800)
        net.drain(30000)
        return (
            sum(ep.flits_ejected for ep in net.endpoints),
            sorted(m.complete_cycle for m in net.messages.values()),
        )

    def test_same_config_bit_identical(self):
        assert self._run(1) == self._run(1)


class TestIdleFastPath:
    def test_idle_switch_skips_work(self):
        net = single_switch_net()
        sw = net.switches[0]
        assert sw.quiescent
        net.sim.run(100)
        assert sw.quiescent
        net.endpoints[0].post_message(1, 4, net.sim.cycle)
        net.sim.run(5)
        assert not sw.quiescent
        drain_and_check(net)
        assert sw.quiescent

    def test_inflight_counter_balances(self):
        net = single_switch_net()
        net.add_uniform_traffic(rate=0.5, stop=500)
        net.sim.run(500)
        net.drain(30000)
        assert net.switches[0].inflight == 0
