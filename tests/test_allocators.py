"""Separable output-first crossbar allocator."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.switch.allocators import SeparableOutputFirstAllocator


def test_empty_requests():
    alloc = SeparableOutputFirstAllocator(2, 2, 2)
    assert alloc.allocate([]) == []


def test_single_request_granted():
    alloc = SeparableOutputFirstAllocator(3, 2, 3)
    assert alloc.allocate([(1, 0, 2)]) == [(1, 0, 2)]


def test_one_grant_per_output():
    alloc = SeparableOutputFirstAllocator(3, 1, 1)
    granted = alloc.allocate([(0, 0, 0), (1, 0, 0), (2, 0, 0)])
    assert len(granted) == 1


def test_one_grant_per_input():
    alloc = SeparableOutputFirstAllocator(1, 1, 3)
    granted = alloc.allocate([(0, 0, 0), (0, 0, 1), (0, 0, 2)])
    assert len(granted) == 1


def test_disjoint_requests_all_granted():
    alloc = SeparableOutputFirstAllocator(3, 1, 3)
    reqs = [(0, 0, 0), (1, 0, 1), (2, 0, 2)]
    assert sorted(alloc.allocate(reqs)) == reqs


def test_round_robin_fairness_per_output():
    alloc = SeparableOutputFirstAllocator(2, 1, 1)
    wins = Counter()
    for _ in range(100):
        for inp, _vc, _out in alloc.allocate([(0, 0, 0), (1, 0, 0)]):
            wins[inp] += 1
    assert wins[0] == wins[1] == 50


def test_vcs_share_fairly():
    """All VCs have equal priority (paper Section V) — including slots
    that model the S and R VCs."""
    alloc = SeparableOutputFirstAllocator(1, 3, 1)
    wins = Counter()
    for _ in range(300):
        for _inp, vc, _out in alloc.allocate([(0, 0, 0), (0, 1, 0), (0, 2, 0)]):
            wins[vc] += 1
    assert wins[0] == wins[1] == wins[2] == 100


@given(
    st.integers(1, 5),
    st.integers(1, 4),
    st.integers(1, 5),
    st.data(),
)
@settings(max_examples=60)
def test_matching_is_valid(num_in, num_vcs, num_out, data):
    alloc = SeparableOutputFirstAllocator(num_in, num_vcs, num_out)
    reqs = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, num_in - 1),
                st.integers(0, num_vcs - 1),
                st.integers(0, num_out - 1),
            ),
            max_size=20,
            unique=True,
        )
    )
    granted = alloc.allocate(reqs)
    # every grant was requested
    assert all(g in reqs for g in granted)
    # at most one grant per input and per output
    assert len({g[0] for g in granted}) == len(granted)
    assert len({g[2] for g in granted}) == len(granted)
    # work-conserving at the single-request level
    if len(reqs) == 1:
        assert granted == reqs
