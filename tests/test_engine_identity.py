"""Cycle-engine output identity across the scenario-layer refactor.

The goldens under ``tests/goldens/`` are verbatim stdout captures of
fig5/fig9/fattree taken *before* the experiments were rebuilt on
``ScenarioSpec`` + the sweep harness.  The refactor's contract is that
the cycle engine's formatted output — seeds, sweep order, and every
simulated flit — is byte-identical, so these tests compare whole
rendered tables, not summary statistics.

If an intentional behaviour change breaks one of these, regenerate the
golden in the same commit and say so in the commit message.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.config import SimParams
from tests.conftest import micro_config

GOLDENS = Path(__file__).parent / "goldens"


def _golden_config():
    return micro_config(
        sim=SimParams(
            seed=3,
            warmup_cycles=200,
            measure_cycles=600,
            drain_cycles=8000,
            sample_period=25,
        )
    )


def _assert_matches(name: str, rendered: str) -> None:
    golden = (GOLDENS / name).read_text()
    assert rendered + "\n" == golden, (
        f"{name} drifted from the pre-refactor capture; diff the "
        f"rendered output against tests/goldens/{name}"
    )


def test_fig5_byte_identical_to_pre_scenario_capture():
    from repro.experiments.fig5 import format_fig5, run_fig5

    out = format_fig5(
        run_fig5(
            _golden_config(),
            loads=(0.2, 0.8),
            variants=("baseline", "stash100", "stash25"),
            seed=3,
        )
    )
    _assert_matches("fig5_micro.txt", out)


def test_fig9_byte_identical_to_pre_scenario_capture():
    from repro.experiments.fig9 import format_fig9, run_fig9

    out = format_fig9(
        run_fig9(
            _golden_config(),
            bursts_pkts=(1, 4),
            variants=("baseline", "stash100"),
            seed=3,
        )
    )
    _assert_matches("fig9_micro.txt", out)


def test_fattree_byte_identical_to_pre_scenario_capture():
    from repro.experiments.fattree_exp import (
        format_fattree,
        run_fattree_reliability,
    )

    out = format_fattree(
        run_fattree_reliability(
            _golden_config(),
            loads=(0.3,),
            variants=("baseline", "stash100"),
            seed=3,
        )
    )
    _assert_matches("fattree_micro.txt", out)
