"""Offline Markdown link checker tests.

Exercises link extraction, GitHub anchor slugging, file/anchor
resolution, and CLI exit codes on synthetic docs — then runs the real
repo docs through the checker so CI failures reproduce locally.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.linkcheck import (
    EXIT_BROKEN,
    EXIT_CLEAN,
    EXIT_ERROR,
    check_file,
    check_paths,
    extract_links,
    heading_slugs,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestExtractLinks:
    def test_inline_links_and_images(self):
        text = "see [a](x.md) and ![img](pics/p.png)\nthen [b](y.md#top)"
        assert extract_links(text) == [
            (1, "x.md"), (1, "pics/p.png"), (2, "y.md#top")
        ]

    def test_code_fences_and_spans_skipped(self):
        text = "\n".join([
            "real [a](x.md)",
            "```",
            "fenced [b](gone.md)",
            "```",
            "span `[c](gone.md)` after [d](y.md)",
        ])
        assert extract_links(text) == [(1, "x.md"), (5, "y.md")]

    def test_titles_allowed(self):
        assert extract_links('[a](x.md "Title here")') == [(1, "x.md")]


class TestHeadingSlugs:
    def test_github_slugging(self):
        text = "# Quick Start!\n## repro.obs: the API\n### under_score"
        slugs = heading_slugs(text)
        assert "quick-start" in slugs
        assert "reproobs-the-api" in slugs
        assert "under_score" in slugs

    def test_duplicate_headings_get_suffixes(self):
        slugs = heading_slugs("# Setup\n## Setup\n### Setup")
        assert {"setup", "setup-1", "setup-2"} <= slugs

    def test_code_span_in_heading(self):
        assert "the-obs-field" in heading_slugs("## The `obs` field")


class TestCheckFile:
    def _write(self, tmp_path: Path, name: str, text: str) -> Path:
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def test_good_relative_link(self, tmp_path):
        self._write(tmp_path, "docs/A.md", "# Alpha\nbody")
        src = self._write(tmp_path, "README.md",
                          "[a](docs/A.md) [anchor](docs/A.md#alpha)")
        assert check_file(src, root=tmp_path) == []

    def test_missing_file_reported(self, tmp_path):
        src = self._write(tmp_path, "README.md", "x\n[bad](nope.md)")
        broken = check_file(src, root=tmp_path)
        assert len(broken) == 1
        assert broken[0].line == 2
        assert broken[0].reason == "file not found"
        assert "nope.md" in broken[0].render()

    def test_missing_anchor_reported(self, tmp_path):
        self._write(tmp_path, "A.md", "# Only Heading")
        src = self._write(tmp_path, "B.md", "[x](A.md#other)")
        broken = check_file(src, root=tmp_path)
        assert [b.reason for b in broken] == ["missing anchor"]

    def test_same_file_anchor(self, tmp_path):
        ok = self._write(tmp_path, "A.md", "# Top\n[up](#top)")
        assert check_file(ok, root=tmp_path) == []
        bad = self._write(tmp_path, "B.md", "# Top\n[up](#bottom)")
        assert len(check_file(bad, root=tmp_path)) == 1

    def test_duplicate_anchor_suffix_resolves(self, tmp_path):
        self._write(tmp_path, "A.md", "# Setup\n## Setup")
        src = self._write(tmp_path, "B.md", "[s](A.md#setup-1)")
        assert check_file(src, root=tmp_path) == []

    def test_external_schemes_skipped(self, tmp_path):
        src = self._write(
            tmp_path, "A.md",
            "[w](https://example.com/x) [m](mailto:a@b.c) [p](//cdn/x)",
        )
        assert check_file(src, root=tmp_path) == []

    def test_repo_absolute_target(self, tmp_path):
        self._write(tmp_path, "docs/D.md", "# D")
        src = self._write(tmp_path, "docs/sub/S.md", "[d](/docs/D.md)")
        assert check_file(src, root=tmp_path) == []
        assert len(check_file(src, root=tmp_path / "docs")) == 1

    def test_anchor_only_checked_for_markdown(self, tmp_path):
        self._write(tmp_path, "data.csv", "a,b\n1,2")
        src = self._write(tmp_path, "A.md", "[csv](data.csv#row-3)")
        assert check_file(src, root=tmp_path) == []


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("# G\n[self](#g)", encoding="utf-8")
        bad = tmp_path / "bad.md"
        bad.write_text("[x](missing.md)", encoding="utf-8")

        assert main([str(good)]) == EXIT_CLEAN
        assert main([str(bad)]) == EXIT_BROKEN
        assert "missing.md" in capsys.readouterr().out
        assert main([]) == EXIT_ERROR
        assert main([str(tmp_path / "ghost.md")]) == EXIT_ERROR

    def test_directory_walk_sorted(self, tmp_path):
        (tmp_path / "b.md").write_text("[x](a.md)", encoding="utf-8")
        (tmp_path / "a.md").write_text("[x](nope.md)", encoding="utf-8")
        broken, checked = check_paths([tmp_path], root=tmp_path)
        assert checked == 2
        assert [b.path for b in broken] == [str(tmp_path / "a.md")]


def test_repo_docs_have_no_broken_links():
    paths = [REPO_ROOT / "README.md", REPO_ROOT / "docs",
             REPO_ROOT / "EXPERIMENTS.md"]
    broken, checked = check_paths(
        [p for p in paths if p.exists()], root=REPO_ROOT
    )
    assert checked >= 3
    assert broken == [], "\n".join(b.render() for b in broken)
