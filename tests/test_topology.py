"""Topologies: dragonfly wiring, fat-tree, single switch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import DragonflyParams
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.single_switch import SingleSwitchTopology
from repro.topology.topology import PortSpec


class TestDragonflyCanonical:
    def _topo(self, p=2, a=3, h=2, groups=0, ports=None):
        return DragonflyTopology(
            DragonflyParams(p=p, a=a, h=h, num_groups=groups,
                            latency_endpoint=1, latency_local=2,
                            latency_global=10),
            num_ports=ports,
        )

    def test_counts(self):
        t = self._topo()
        assert t.g == 7
        assert t.num_switches == 21
        assert t.num_nodes == 42

    def test_wiring_verified_at_build(self):
        # verify_wiring runs in __init__; reaching here means symmetric
        self._topo(p=3, a=4, h=3)

    def test_every_group_pair_has_exactly_one_global_link(self):
        t = self._topo()
        pairs = set()
        for s in range(t.num_switches):
            for spec in t.switch_ports(s):
                if spec.link_class == "global":
                    _, peer, _ = spec.peer
                    pair = frozenset((t.group_of(s), t.group_of(peer)))
                    assert len(pair) == 2, "global link within a group"
                    pairs.add(pair)
        expected = t.g * (t.g - 1) // 2
        assert len(pairs) == expected

    def test_local_full_connectivity(self):
        t = self._topo()
        for g in range(t.g):
            switches = [g * t.a + i for i in range(t.a)]
            for s in switches:
                peers = {
                    spec.peer[1]
                    for spec in t.switch_ports(s)
                    if spec.link_class == "local"
                }
                assert peers == set(switches) - {s}

    def test_route_to_group_minimal(self):
        t = self._topo()
        for s in range(t.num_switches):
            grp = t.group_of(s)
            for target in range(t.g):
                if target == grp:
                    continue
                port = t.route_to_group(s, target)
                spec = t.port_spec(s, port)
                if spec.link_class == "global":
                    _, peer, _ = spec.peer
                    assert t.group_of(peer) == target
                else:
                    assert spec.link_class == "local"
                    _, gw, _ = spec.peer
                    assert t.has_global_to(gw, target)

    def test_node_attachment(self):
        t = self._topo()
        for node in range(t.num_nodes):
            s = t.node_switch(node)
            port = t.node_port(node)
            assert t.port_spec(s, port).peer == ("node", node)
            assert t.eject_port(s, node) == port

    def test_eject_port_wrong_switch_rejected(self):
        t = self._topo()
        with pytest.raises(ValueError):
            t.eject_port(0, t.num_nodes - 1)

    def test_subcanonical_groups(self):
        t = self._topo(groups=5)
        assert t.g == 5
        unused = sum(
            1
            for s in range(t.num_switches)
            for spec in t.switch_ports(s)
            if spec.link_class == "unused"
        )
        # each group wires g-1=4 of its a*h=6 global slots
        assert unused == 5 * 2

    def test_extra_switch_ports_marked_unused(self):
        t = self._topo(ports=10)
        spec = t.switch_ports(0)
        assert len(spec) == 10
        assert spec[-1].link_class == "unused"

    def test_insufficient_ports_rejected(self):
        with pytest.raises(ValueError):
            self._topo(ports=4)

    def test_paper_scale_builds(self):
        t = DragonflyTopology(DragonflyParams())  # 3080 nodes
        assert t.num_nodes == 3080
        assert t.g == 56

    @given(st.integers(1, 3), st.integers(2, 4), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_shapes_wire_symmetrically(self, p, a, h):
        # verify_wiring (called in the constructor) raises on asymmetry
        DragonflyTopology(
            DragonflyParams(p=p, a=a, h=h, latency_endpoint=1,
                            latency_local=2, latency_global=4)
        )


class TestFatTree:
    def test_wiring(self):
        t = FatTreeTopology(num_leaves=4, num_spines=2, p=3)
        assert t.num_nodes == 12
        assert t.num_switches == 6
        assert t.is_leaf(0) and not t.is_leaf(4)

    def test_uplink_downlink_consistency(self):
        t = FatTreeTopology(num_leaves=3, num_spines=2, p=2)
        for leaf in range(3):
            for spine in range(2):
                up = t.uplink_port(leaf, spine)
                spec = t.port_spec(leaf, up)
                assert spec.link_class == "global"
                _, peer, peer_port = spec.peer
                assert peer == 3 + spine
                assert peer_port == t.downlink_port(peer, leaf)

    def test_insufficient_ports_rejected(self):
        with pytest.raises(ValueError):
            FatTreeTopology(num_leaves=4, num_spines=4, p=4, num_ports=6)


class TestSingleSwitch:
    def test_basic(self):
        t = SingleSwitchTopology(num_nodes=4, num_ports=6)
        assert t.num_switches == 1
        assert t.node_switch(3) == 0
        assert t.node_port(3) == 3
        assert t.end_ports(0) == [0, 1, 2, 3]

    def test_class_override(self):
        t = SingleSwitchTopology(
            3, 4, link_classes=["endpoint", "local", "global"]
        )
        assert t.port_class(0, 1) == "local"
        assert t.port_class(0, 2) == "global"

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            SingleSwitchTopology(num_nodes=8, num_ports=6)


class TestPortSpec:
    def test_connected_needs_peer(self):
        with pytest.raises(ValueError):
            PortSpec(0, "local", None, 4)

    def test_connected_needs_latency(self):
        with pytest.raises(ValueError):
            PortSpec(0, "endpoint", ("node", 0), 0)
