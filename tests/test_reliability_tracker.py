"""End-to-end retransmission tracker: all four ACK/location orderings
(paper Section IV-A)."""

import pytest

from repro.core.reliability import EndToEndTracker
from repro.core.sideband import SidebandKind, SidebandNetwork, SidebandMessage


class TestOrderings:
    def test_location_then_positive_ack_deletes(self):
        t = EndToEndTracker(port=0)
        t.track(pid=1, size_flits=8)
        assert t.on_location(1, stash_port=4, location=9) is None
        msg = t.on_ack(1, positive=True)
        assert msg is not None
        assert msg.kind == SidebandKind.DELETE
        assert (msg.dest_port, msg.location) == (4, 9)
        assert t.outstanding == 0
        assert t.deletes_sent == 1

    def test_location_then_negative_ack_retransmits(self):
        t = EndToEndTracker(port=2)
        t.track(1, 8)
        t.on_location(1, 4, 9)
        msg = t.on_ack(1, positive=False)
        assert msg.kind == SidebandKind.RETRANSMIT
        assert msg.origin_port == 2
        assert t.retransmits_sent == 1

    def test_positive_ack_then_location(self):
        """Paper: 'the eventual arrival of the location message will be
        followed immediately by a deletion command'."""
        t = EndToEndTracker(0)
        t.track(1, 8)
        assert t.on_ack(1, positive=True) is None  # record must persist
        assert t.outstanding == 1
        assert t.acks_before_location == 1
        msg = t.on_location(1, 4, 9)
        assert msg.kind == SidebandKind.DELETE

    def test_negative_ack_then_location(self):
        """Paper: 'all retransmit processing simply waits until the
        location message arrives'."""
        t = EndToEndTracker(0)
        t.track(1, 8)
        t.on_ack(1, positive=False)
        msg = t.on_location(1, 4, 9)
        assert msg.kind == SidebandKind.RETRANSMIT


class TestBookkeeping:
    def test_duplicate_track_rejected(self):
        t = EndToEndTracker(0)
        t.track(1, 8)
        with pytest.raises(RuntimeError):
            t.track(1, 8)

    def test_ack_for_untracked_packet_ignored(self):
        t = EndToEndTracker(0)
        assert t.on_ack(42, positive=True) is None

    def test_location_for_unknown_packet_rejected(self):
        t = EndToEndTracker(0)
        with pytest.raises(RuntimeError):
            t.on_location(42, 1, 1)

    def test_outstanding_flits(self):
        t = EndToEndTracker(0)
        t.track(1, 8)
        t.track(2, 16)
        assert t.outstanding_flits == 24

    def test_pid_reusable_after_resolution(self):
        t = EndToEndTracker(0)
        t.track(1, 8)
        t.on_location(1, 2, 0)
        t.on_ack(1, positive=True)
        t.track(1, 8)  # fresh cycle for the same pid is legal
        assert t.outstanding == 1


class TestSidebandNetwork:
    def test_delivery_latency(self):
        net = SidebandNetwork(num_ports=6, latency=3)
        msg = SidebandMessage(SidebandKind.DELETE, dest_port=2, pid=1,
                              stash_port=2, location=0)
        net.send(msg, cycle=10)
        assert net.deliver_ready(12) == []
        assert net.deliver_ready(13) == [msg]
        assert net.in_flight == 0

    def test_send_order_preserved(self):
        net = SidebandNetwork(4, latency=1)
        msgs = [
            SidebandMessage(SidebandKind.DELETE, i, i, i, 0) for i in range(3)
        ]
        for m in msgs:
            net.send(m, 0)
        assert net.deliver_ready(1) == msgs

    def test_out_of_range_destination_rejected(self):
        net = SidebandNetwork(4, latency=1)
        with pytest.raises(ValueError):
            net.send(
                SidebandMessage(SidebandKind.DELETE, 9, 0, 9, 0), 0
            )

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            SidebandNetwork(4, latency=0)
