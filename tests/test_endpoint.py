"""Endpoint / NIC behaviour, exercised on a single-switch network."""

import pytest

from repro.switch.flit import PacketKind
from tests.conftest import drain_and_check, single_switch_net


class TestSegmentation:
    def test_message_split_into_max_packets(self):
        net = single_switch_net()
        ep = net.endpoints[0]
        msg = ep.post_message(dst=1, size_flits=10, cycle=0)
        # max packet is 4 flits -> 4 + 4 + 2
        assert msg.packets_total == 3
        sizes = [p.size for p in ep.send_queues[1]]
        assert sizes == [4, 4, 2]

    def test_exact_multiple(self):
        net = single_switch_net()
        msg = net.endpoints[0].post_message(1, 8, 0)
        assert msg.packets_total == 2

    def test_self_send_completes_locally(self):
        net = single_switch_net()
        done = []
        msg = net.endpoints[0].post_message(
            0, 8, 0, on_complete=lambda m, c: done.append(c)
        )
        assert msg.delivered
        assert done == [0]
        assert not net.endpoints[0].send_queues  # nothing hit the network

    def test_backlog_accounting(self):
        net = single_switch_net()
        ep = net.endpoints[0]
        ep.post_message(1, 10, 0)
        ep.post_message(2, 4, 0)
        assert ep.backlog_flits == 14
        assert not ep.idle


class TestInjectionArbitration:
    def test_round_robin_across_destinations(self):
        """Per-packet round-robin over active queue pairs (paper Sec. V)."""
        net = single_switch_net()
        ep = net.endpoints[0]
        ep.post_message(1, 16, 0)  # 4 packets
        ep.post_message(2, 16, 0)  # 4 packets
        order = []
        hook = lambda pkt, cycle: order.append(pkt.dst) if pkt.src == 0 else None
        net.on_packet_delivered_hooks.append(hook)
        drain_and_check(net)
        # strict alternation between the two destinations
        assert sorted(order[:2]) == [1, 2]
        assert order[:6] in ([1, 2, 1, 2, 1, 2], [2, 1, 2, 1, 2, 1])

    def test_one_flit_per_cycle(self):
        net = single_switch_net()
        ep = net.endpoints[0]
        ep.post_message(1, 40, 0)
        net.sim.run(20)
        assert ep.flits_injected <= 20


class TestAcks:
    def test_every_data_packet_acked(self):
        net = single_switch_net()
        net.endpoints[0].post_message(1, 12, 0)  # 3 packets
        drain_and_check(net)
        # destination generated one ACK per data packet
        assert net.endpoints[1].packets_delivered == 3
        # source received them: pending table empty
        assert not net.endpoints[0]._pending_acks

    def test_acks_disabled(self):
        net = single_switch_net()
        net.acks_enabled = False
        for ep in net.endpoints:
            ep.acks_enabled = False
        net.endpoints[0].post_message(1, 8, 0)
        drain_and_check(net)
        assert net.endpoints[0]._pending_acks  # never cleared: no ACKs

    def test_ack_latency_counts_in_flits(self):
        net = single_switch_net()
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)
        # 4 data flits ejected at node 1, 1 ack flit at node 0
        assert net.endpoints[1].flits_ejected == 4
        assert net.endpoints[0].flits_ejected == 1


class TestDelivery:
    def test_latency_recorded_within_window(self):
        net = single_switch_net()
        net.open_measurement()
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)
        assert net.latency.count == 1
        assert net.latency.mean > 0

    def test_message_completion_callback(self):
        net = single_switch_net()
        done = []
        net.endpoints[0].post_message(
            1, 12, 0, on_complete=lambda m, c: done.append((m.msg_id, c))
        )
        drain_and_check(net)
        assert len(done) == 1

    def test_packet_kind_data(self):
        net = single_switch_net()
        kinds = []
        net.on_packet_delivered_hooks.append(
            lambda pkt, c: kinds.append(pkt.kind)
        )
        net.endpoints[0].post_message(1, 4, 0)
        drain_and_check(net)
        assert kinds == [PacketKind.DATA]  # hooks fire for data only
