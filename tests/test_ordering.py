"""Packet order enforcement (paper Section IV-C): unit tests for the
reorder buffer plus full-network integration with adaptive routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import OrderingParams, ReliabilityParams, StashParams
from repro.network import Network
from repro.protocol.ordering import ReorderBuffer
from repro.switch.flit import Packet
from tests.conftest import drain_and_check, micro_config


def _pkt(seq, msg_id=1, size=4, pid=None):
    p = Packet(pid if pid is not None else 100 + seq, 0, 1, size,
               msg_id=msg_id, seq=seq)
    return p


class TestReorderBufferUnit:
    def test_in_sequence_delivers_immediately(self):
        rb = ReorderBuffer(16)
        accepted, out = rb.accept(_pkt(0))
        assert accepted and [p.seq for p in out] == [0]
        accepted, out = rb.accept(_pkt(1))
        assert accepted and [p.seq for p in out] == [1]
        assert rb.empty

    def test_early_packet_held_then_released(self):
        rb = ReorderBuffer(16)
        accepted, out = rb.accept(_pkt(1))
        assert accepted and out == []
        assert rb.used_flits == 4
        accepted, out = rb.accept(_pkt(0))
        assert [p.seq for p in out] == [0, 1]
        assert rb.empty

    def test_deep_reordering_chain(self):
        rb = ReorderBuffer(64)
        for seq in (3, 1, 2):
            _, out = rb.accept(_pkt(seq))
            assert out == []
        _, out = rb.accept(_pkt(0))
        assert [p.seq for p in out] == [0, 1, 2, 3]

    def test_full_buffer_drops(self):
        rb = ReorderBuffer(8)
        assert rb.accept(_pkt(1))[0]
        assert rb.accept(_pkt(2))[0]  # 8 flits held: full
        accepted, out = rb.accept(_pkt(3))
        assert not accepted and out == []
        assert rb.dropped_total == 1

    def test_duplicate_of_delivered_swallowed(self):
        rb = ReorderBuffer(16)
        rb.accept(_pkt(0))
        accepted, out = rb.accept(_pkt(0, pid=999))
        assert accepted and out == []

    def test_duplicate_of_held_swallowed(self):
        rb = ReorderBuffer(16)
        rb.accept(_pkt(1))
        accepted, out = rb.accept(_pkt(1, pid=999))
        assert accepted and out == []
        assert rb.used_flits == 4  # not double-counted

    def test_messages_independent(self):
        rb = ReorderBuffer(32)
        _, out_a = rb.accept(_pkt(0, msg_id=1))
        _, held_b = rb.accept(_pkt(1, msg_id=2))
        assert [p.seq for p in out_a] == [0]
        assert held_b == []

    def test_finish_message_rejects_leftovers(self):
        rb = ReorderBuffer(16)
        rb.accept(_pkt(2, msg_id=7))
        with pytest.raises(RuntimeError):
            rb.finish_message(7)

    def test_finish_clears_state(self):
        rb = ReorderBuffer(16)
        rb.accept(_pkt(0, msg_id=7))
        rb.finish_message(7)
        assert rb.empty

    @given(
        order=st.permutations(list(range(8))),
        capacity=st.integers(8, 64),
    )
    @settings(max_examples=60)
    def test_any_arrival_order_delivers_in_sequence(self, order, capacity):
        """Whatever fits is always released in sequence order; drops are
        exactly the packets that arrive early into a full buffer."""
        rb = ReorderBuffer(capacity)
        delivered: list[int] = []
        pending = list(order)
        attempts = 0
        while pending and attempts < 200:
            seq = pending.pop(0)
            accepted, out = rb.accept(_pkt(seq, size=4))
            delivered.extend(p.seq for p in out)
            if not accepted:
                pending.append(seq)  # model the retransmission
            attempts += 1
        assert delivered == sorted(delivered)
        assert delivered == list(range(8))


class TestOrderedNetwork:
    def _net(self, buffer_flits=64, error_rate=0.0):
        cfg = micro_config(
            stash=StashParams(enabled=True, frac_local=0.5),
            reliability=ReliabilityParams(enabled=True,
                                          error_rate=error_rate),
            ordering=OrderingParams(enabled=True,
                                    buffer_flits=buffer_flits),
        )
        return Network(cfg)

    def test_ordering_requires_reliability(self):
        with pytest.raises(ValueError, match="reliability"):
            micro_config(ordering=OrderingParams(enabled=True))

    def test_ordered_delivery_under_adaptive_routing(self):
        net = self._net()
        seqs: dict[tuple[int, int], list[int]] = {}
        net.on_packet_delivered_hooks.append(
            lambda pkt, c: seqs.setdefault((pkt.msg_id), []).append(pkt.seq)
        )
        for src in range(6):
            net.endpoints[src].post_message((src + 3) % 6, 40, 0)
        drain_and_check(net, max_cycles=150_000)
        for msg_id, order in seqs.items():
            assert order == sorted(order), (msg_id, order)

    def test_tiny_reorder_buffer_recovers_via_retransmission(self):
        net = self._net(buffer_flits=4)  # one early packet at most
        net.add_uniform_traffic(rate=0.4, stop=1200)
        net.sim.run(1200)
        drain_and_check(net, max_cycles=250_000)
        # under load some packets must have been dropped and recovered
        retrans = sum(sw.retransmits_issued for sw in net.switches)
        drops = sum(ep.packets_reorder_dropped for ep in net.endpoints)
        assert drops == 0 or retrans > 0

    def test_ordering_with_corruption(self):
        net = self._net(buffer_flits=32, error_rate=0.05)
        net.add_uniform_traffic(rate=0.25, stop=800)
        net.sim.run(800)
        drain_and_check(net, max_cycles=250_000)
        for ep in net.endpoints:
            assert ep.reorder is not None and ep.reorder.empty
