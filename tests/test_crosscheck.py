"""Cycle-vs-flow cross-validation at test scale.

The full validation family lives in :mod:`repro.analysis.crosscheck`
(CI runs it as its own job); this suite holds the same contract on
micro-scale presets cheap enough for tier 1: on each of the three
topologies the fastpath models, flow throughput within
:data:`~repro.analysis.crosscheck.THROUGHPUT_TOLERANCE` of the cycle
kernel, both engines consuming byte-identical spec hashes.
"""

from __future__ import annotations

import pytest

from repro.analysis.crosscheck import (
    THROUGHPUT_TOLERANCE,
    CrossCheckRow,
    format_crosscheck,
    run_crosscheck,
)
from repro.scenario import (
    FatTreeTopologySpec,
    ScenarioSpec,
    SingleSwitchTopologySpec,
    UniformTraffic,
)
from tests.conftest import micro_config


def _presets():
    cfg = micro_config()
    return [
        (
            "single-switch",
            ScenarioSpec(
                config=cfg,
                topology=SingleSwitchTopologySpec(num_nodes=4),
                traffic=(UniformTraffic(rate=0.5),),
            ),
        ),
        (
            "dragonfly",
            ScenarioSpec(config=cfg, traffic=(UniformTraffic(rate=0.5),)),
        ),
        (
            "fat-tree",
            ScenarioSpec(
                config=cfg,
                topology=FatTreeTopologySpec(),
                traffic=(UniformTraffic(rate=0.3),),
            ),
        ),
    ]


@pytest.fixture(scope="module")
def rows() -> list[CrossCheckRow]:
    return run_crosscheck(presets=_presets())


def test_three_presets_within_tolerance(rows):
    assert len(rows) == 3
    for row in rows:
        assert abs(row.throughput_delta) <= THROUGHPUT_TOLERANCE, (
            f"{row.preset}: flow {row.flow_throughput:.3f} vs cycle "
            f"{row.cycle_throughput:.3f} ({row.throughput_delta:+.1%})"
        )


def test_engines_consume_identical_spec_hashes(rows):
    # run_crosscheck asserts hash equality internally; re-derive here so
    # the contract survives refactors of that internal assert
    for (_, spec), row in zip(_presets(), rows):
        assert spec.spec_hash().startswith(row.spec_hash)


def test_flow_engine_is_faster(rows):
    # micro presets are tiny, so demand only a loose floor here; the
    # >=50x fig5-scale claim is measured by BENCH_9.json and the CI
    # crosscheck job on the tiny preset
    for row in rows:
        assert row.flow_seconds < row.cycle_seconds


def test_format_flags_out_of_tolerance():
    good = CrossCheckRow(
        preset="ok", spec_hash="abc", cycle_throughput=0.5,
        flow_throughput=0.51, cycle_latency=10.0, flow_latency=11.0,
        cycle_seconds=1.0, flow_seconds=0.01,
    )
    bad = CrossCheckRow(
        preset="drifted", spec_hash="def", cycle_throughput=0.5,
        flow_throughput=0.7, cycle_latency=10.0, flow_latency=11.0,
        cycle_seconds=1.0, flow_seconds=0.01,
    )
    out = format_crosscheck([good, bad])
    assert "OUT OF TOLERANCE" in out
    assert good.within_tolerance and not bad.within_tolerance
