"""ASCII chart rendering."""

import math

import pytest

from repro.analysis.ascii_chart import line_chart, multi_series_chart


def test_single_series_renders_extremes():
    out = line_chart([0, 1, 2, 3], [10, 20, 15, 40], label="lat")
    assert "40" in out
    assert "10" in out
    assert "*" in out
    assert "lat" in out


def test_multi_series_distinct_glyphs():
    out = multi_series_chart(
        {
            "baseline": ([0, 1], [1, 2]),
            "stash": ([0, 1], [2, 4]),
        }
    )
    assert "*=baseline" in out
    assert "o=stash" in out
    assert "o" in out.splitlines()[0] + out.splitlines()[1]


def test_constant_series_no_div_by_zero():
    out = line_chart([1, 2, 3], [5, 5, 5])
    assert "5" in out


def test_nan_points_skipped():
    out = line_chart([0, 1, 2], [1.0, math.nan, 3.0])
    assert "(no finite data)" not in out


def test_all_nan_reports_empty():
    assert "no finite data" in line_chart([0], [math.nan])


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        multi_series_chart({})


def test_dimensions_respected():
    out = line_chart(list(range(10)), list(range(10)), width=30, height=6)
    body_lines = [l for l in out.splitlines() if "┤" in l or "│" in l]
    assert len(body_lines) == 6
