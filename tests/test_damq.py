"""DAMQ buffers and the credit-mirror protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.switch.damq import Damq, DamqMirror, VcSpaceAccounting
from repro.switch.flit import Packet


class TestVcSpaceAccounting:
    def test_reserve_guarantees_per_vc_space(self):
        acc = VcSpaceAccounting(num_vcs=2, capacity=20, reserve=5)
        acc.admit(0, 10)  # 5 private + 5 shared; shared pool = 10
        assert acc.can_admit(1, 5)  # vc1's private reserve is untouchable
        acc.admit(1, 5)
        assert not acc.can_admit(1, 6)
        assert acc.can_admit(1, 5)

    def test_shared_pool_exhaustion(self):
        acc = VcSpaceAccounting(num_vcs=2, capacity=10, reserve=0)
        acc.admit(0, 7)
        assert not acc.can_admit(1, 4)
        assert acc.can_admit(1, 3)

    def test_release_returns_shared_first(self):
        acc = VcSpaceAccounting(num_vcs=2, capacity=10, reserve=2)
        acc.admit(0, 6)  # 2 private + 4 shared
        acc.release(0, 4)
        assert acc.committed[0] == 2
        assert acc.can_admit(1, 8)  # all shared space back

    def test_over_release_rejected(self):
        acc = VcSpaceAccounting(1, 10, 0)
        acc.admit(0, 3)
        with pytest.raises(RuntimeError):
            acc.release(0, 4)

    def test_over_admit_rejected(self):
        acc = VcSpaceAccounting(1, 4, 0)
        with pytest.raises(RuntimeError):
            acc.admit(0, 5)

    def test_capacity_must_cover_reserves(self):
        with pytest.raises(ValueError):
            VcSpaceAccounting(num_vcs=4, capacity=10, reserve=3)

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 8)), max_size=60
        )
    )
    @settings(max_examples=60)
    def test_invariants_under_random_traffic(self, ops):
        acc = VcSpaceAccounting(num_vcs=4, capacity=64, reserve=4)
        for vc, n in ops:
            if acc.can_admit(vc, n):
                acc.admit(vc, n)
            elif acc.committed[vc] >= n:
                acc.release(vc, n)
        # invariants: never exceed capacity; shared accounting consistent
        assert 0 <= acc.total_committed <= acc.capacity
        shared = sum(
            max(0, c - r) for c, r in zip(acc.committed, acc.reserves)
        )
        assert shared == acc._shared_used
        assert shared <= acc.shared_capacity


class TestDamq:
    def _pkt(self, size=4, pid=1):
        return Packet(pid, 0, 1, size)

    def test_admit_then_stream(self):
        d = Damq(num_vcs=2, capacity=16, reserve=0)
        pkt = self._pkt(4)
        for f in pkt.flits:
            assert d.can_admit(0)
            d.admit_flit(0)
            d.push(0, f)
        assert d.vc_flits(0) == 4
        assert d.total_committed == 4
        out = [d.pop(0) for _ in range(4)]
        assert out == pkt.flits
        assert d.empty

    def test_admit_respects_capacity(self):
        d = Damq(1, 2, 0)
        d.admit_flit(0)
        d.admit_flit(0)
        assert not d.can_admit(0)
        with pytest.raises(RuntimeError):
            d.admit_flit(0)

    def test_pop_no_release_retains_space(self):
        d = Damq(1, 8, 0)
        pkt = self._pkt(2)
        d.admit_flit(0)
        d.push(0, pkt.flits[0])
        d.pop_no_release(0)
        assert d.total_committed == 1  # space still held
        d.space.release(0, 1)
        assert d.total_committed == 0

    def test_front_peeks(self):
        d = Damq(1, 8, 0)
        pkt = self._pkt(2)
        d.admit_flit(0)
        d.push(0, pkt.flits[0])
        assert d.front(0) is pkt.flits[0]
        assert d.front(0) is pkt.flits[0]

    def test_occupancy_fraction(self):
        d = Damq(1, 10, 0)
        for _ in range(5):
            d.admit_flit(0)
        assert d.occupancy_fraction() == pytest.approx(0.5)


class TestMirrorProtocol:
    """The upstream mirror must track the downstream buffer exactly."""

    def test_mirror_and_real_agree(self):
        real = Damq(num_vcs=2, capacity=12, reserve=0)
        mirror = DamqMirror(num_vcs=2, capacity=12, reserve=0)
        p1, p2 = Packet(1, 0, 1, 4), Packet(2, 0, 1, 4)

        for f in p1.flits:
            assert mirror.can_send_flit(0)
            mirror.debit_flit(0)
            real.admit_flit(0)
            real.push(0, f)
        for f in p2.flits:
            mirror.debit_flit(1)
            real.admit_flit(1)
            real.push(1, f)

        assert mirror.in_flight == real.total_committed == 8
        for _ in range(4):
            mirror.debit_flit(0)
        assert not mirror.can_send_flit(0)

        # downstream pops two flits and returns credits
        real.pop(0)
        real.pop(0)
        mirror.credit(0, 2)
        assert mirror.in_flight - 4 == real.total_committed == 6

    @given(
        sizes=st.lists(st.integers(1, 6), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_mirror_never_overflows_real(self, sizes):
        """Admission control through the mirror guarantees the real
        buffer always accepts what arrives."""
        real = Damq(num_vcs=3, capacity=24, reserve=0)
        mirror = DamqMirror(num_vcs=3, capacity=24, reserve=0)
        in_flight: list[int] = []
        for i, size in enumerate(sizes):
            vc = i % 3
            sent = 0
            while sent < size and mirror.can_send_flit(vc):
                mirror.debit_flit(vc)
                real.admit_flit(vc)  # must never raise
                in_flight.append(vc)
                sent += 1
            if sent < size and in_flight:
                vc0 = in_flight.pop(0)
                real.space.release(vc0, 1)
                mirror.credit(vc0, 1)
        assert mirror.in_flight == real.total_committed
