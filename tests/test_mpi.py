"""Mini-MPI layer: op construction, matching validation, collectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.mpi import (
    OP_RECV,
    OP_SEND,
    MpiProgram,
    all_to_all,
    allreduce,
    barrier,
    op_recv,
    op_send,
)


class TestOps:
    def test_send_recv_tuples(self):
        assert op_send(3, 8, tag=2) == (OP_SEND, 3, 8, 2)
        assert op_recv(1, tag=5) == (OP_RECV, 1, 5)

    def test_zero_size_send_rejected(self):
        with pytest.raises(ValueError):
            op_send(1, 0)


class TestProgram:
    def test_add_send_pairs_ops(self):
        prog = MpiProgram("t", 3)
        prog.add_send(0, 2, 8, tag=1)
        assert prog.ops[0] == [op_send(2, 8, 1)]
        assert prog.ops[2] == [op_recv(0, 1)]
        prog.validate()

    def test_self_send_skipped(self):
        prog = MpiProgram("t", 2)
        prog.add_send(1, 1, 8)
        assert prog.total_ops == 0

    def test_validate_catches_orphan_recv(self):
        prog = MpiProgram("t", 2)
        prog.ops[0].append(op_recv(1, 0))
        with pytest.raises(ValueError, match="unmatched"):
            prog.validate()

    def test_validate_catches_orphan_send(self):
        prog = MpiProgram("t", 2)
        prog.ops[0].append(op_send(1, 4, 0))
        with pytest.raises(ValueError, match="unmatched"):
            prog.validate()

    def test_flit_accounting(self):
        prog = MpiProgram("t", 3)
        prog.add_send(0, 1, 8)
        prog.add_send(1, 2, 16)
        assert prog.total_send_flits == 24


class TestCollectives:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16])
    def test_allreduce_matches(self, n):
        prog = MpiProgram("t", n)
        allreduce(prog, list(range(n)), 4, tag_base=0)
        prog.validate()

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_allreduce_power_of_two_volume(self, n):
        """Recursive doubling: every rank sends log2(n) messages."""
        prog = MpiProgram("t", n)
        allreduce(prog, list(range(n)), 1, 0)
        sends_per_rank = [
            sum(1 for op in ops if op[0] == OP_SEND) for op_list in [prog.ops]
            for ops in op_list
        ]
        import math

        assert all(s == int(math.log2(n)) for s in sends_per_rank)

    def test_allreduce_single_rank_noop(self):
        prog = MpiProgram("t", 1)
        next_tag = allreduce(prog, [0], 4, 7)
        assert next_tag == 7
        assert prog.total_ops == 0

    def test_barrier_is_one_flit(self):
        prog = MpiProgram("t", 4)
        barrier(prog, list(range(4)), 0)
        sizes = {op[2] for ops in prog.ops for op in ops if op[0] == OP_SEND}
        assert sizes == {1}

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_all_to_all_every_pair(self, n):
        prog = MpiProgram("t", n)
        all_to_all(prog, list(range(n)), 4, 0)
        prog.validate()
        pairs = {
            (src, op[1])
            for src, ops in enumerate(prog.ops)
            for op in ops
            if op[0] == OP_SEND
        }
        expected = {(i, j) for i in range(n) for j in range(n) if i != j}
        assert pairs == expected

    def test_collectives_on_subsets(self):
        prog = MpiProgram("t", 10)
        allreduce(prog, [2, 5, 7], 4, 0)
        prog.validate()
        assert not prog.ops[0]  # uninvolved ranks untouched

    @given(st.integers(2, 12), st.integers(1, 32))
    @settings(max_examples=40)
    def test_collectives_always_match(self, n, size):
        prog = MpiProgram("t", n)
        tag = allreduce(prog, list(range(n)), size, 0)
        tag = all_to_all(prog, list(range(n)), size, tag)
        barrier(prog, list(range(n)), tag)
        prog.validate()
