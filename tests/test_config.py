"""Configuration dataclasses: presets, derived values, validation."""

import pytest

from repro.engine.config import (
    DragonflyParams,
    EcnParams,
    NetworkConfig,
    ReliabilityParams,
    SimParams,
    StashParams,
    SwitchParams,
    paper_preset,
    rtt_buffer_flits,
    small_preset,
    tiny_preset,
)


class TestSwitchParams:
    def test_paper_tiling(self):
        sw = SwitchParams()
        assert sw.num_ports == 20
        assert sw.tile_inputs == 5
        assert sw.tile_outputs == 5
        assert sw.internal_bandwidth_ratio == 4

    def test_tiling_identity(self):
        # P = R * I and P = C * O (paper equations 1a/1b)
        for ports, rows, cols in [(20, 4, 4), (6, 2, 2), (64, 8, 8), (12, 2, 3)]:
            sw = SwitchParams(
                num_ports=ports, rows=rows, cols=cols,
                input_buffer_flits=1000, output_buffer_flits=1000,
            )
            assert rows * sw.tile_inputs == ports
            assert cols * sw.tile_outputs == ports

    def test_rejects_untileable_ports(self):
        with pytest.raises(ValueError, match="not divisible"):
            SwitchParams(num_ports=7, rows=2, cols=2)

    def test_rejects_subunit_speedup(self):
        with pytest.raises(ValueError, match="speedup"):
            SwitchParams(speedup=0.9)

    def test_rejects_buffer_smaller_than_packet(self):
        with pytest.raises(ValueError, match="smaller than one packet"):
            SwitchParams(input_buffer_flits=10, max_packet_flits=24)

    def test_row_buffer_scales_with_packet(self):
        sw = SwitchParams(max_packet_flits=24, row_buffer_packets=4)
        assert sw.row_buffer_flits == 96


class TestStashParams:
    def test_paper_fractions(self):
        st = StashParams()
        assert st.fraction_for("endpoint") == pytest.approx(7 / 8)
        assert st.fraction_for("local") == pytest.approx(3 / 4)
        assert st.fraction_for("global") == 0.0

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            StashParams().fraction_for("quantum")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            StashParams(capacity_scale=1.5)

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            StashParams(placement="round-robin")


class TestDragonflyParams:
    def test_paper_scale(self):
        df = DragonflyParams()
        assert df.groups == 56  # canonical a*h + 1 = 11*5 + 1
        assert df.num_switches == 616
        assert df.num_nodes == 3080
        assert df.switch_radix == 20

    def test_subcanonical_groups(self):
        df = DragonflyParams(p=2, a=3, h=2, num_groups=5)
        assert df.groups == 5

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            DragonflyParams(p=2, a=3, h=2, num_groups=8)

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError):
            DragonflyParams(latency_endpoint=50, latency_local=40)


class TestNetworkConfig:
    def test_reliability_requires_stash(self):
        with pytest.raises(ValueError, match="requires stashing"):
            NetworkConfig(reliability=ReliabilityParams(enabled=True))

    def test_congestion_stash_requires_stash_and_ecn(self):
        with pytest.raises(ValueError):
            NetworkConfig(ecn=EcnParams(enabled=True, stash_on_congestion=True))

    def test_radix_must_fit(self):
        with pytest.raises(ValueError, match="ports"):
            NetworkConfig(
                switch=SwitchParams(num_ports=6, rows=2, cols=2,
                                    input_buffer_flits=200,
                                    output_buffer_flits=200),
                dragonfly=DragonflyParams(),  # needs 20 ports
            )

    def test_with_replaces_sections(self):
        cfg = tiny_preset()
        cfg2 = cfg.with_(sim=SimParams(seed=99))
        assert cfg2.sim.seed == 99
        assert cfg2.switch == cfg.switch


class TestPresets:
    @pytest.mark.parametrize("preset", [tiny_preset, small_preset, paper_preset])
    def test_presets_valid(self, preset):
        cfg = preset()
        assert cfg.dragonfly.switch_radix <= cfg.switch.num_ports

    def test_paper_preset_constants(self):
        cfg = paper_preset()
        assert cfg.switch.input_buffer_flits == 1000  # 10 KB / 10 B flits
        assert cfg.switch.max_packet_flits == 24
        assert cfg.switch.speedup == pytest.approx(1.3)
        assert cfg.ecn.window_max_flits == 4096
        assert cfg.ecn.recovery_period == 30
        assert (cfg.dragonfly.latency_endpoint,
                cfg.dragonfly.latency_local,
                cfg.dragonfly.latency_global) == (5, 40, 500)
        # paper keeps the published 3/4 local fraction
        assert cfg.stash.frac_local == pytest.approx(3 / 4)

    def test_scaled_presets_keep_buffer_over_rtt(self):
        for cfg in (tiny_preset(), small_preset()):
            rtt = rtt_buffer_flits(cfg.dragonfly.latency_global)
            assert cfg.switch.input_buffer_flits >= rtt

    def test_scaled_presets_normal_partition_holds_packets(self):
        # the endpoint-port normal partition must hold >= 3 packets or
        # injection serializes (see tiny_preset docstring)
        for cfg in (tiny_preset(), small_preset()):
            normal = cfg.switch.input_buffer_flits * (1 - cfg.stash.frac_endpoint)
            assert normal >= 3 * cfg.switch.max_packet_flits


def test_rtt_buffer_flits():
    assert rtt_buffer_flits(40, slack=16) == 96
    assert rtt_buffer_flits(1, slack=0) == 2
