"""Traffic patterns and injection processes."""

import random

import pytest

from repro.traffic.generators import BernoulliSource, BurstSource
from repro.traffic.patterns import (
    bit_complement,
    hotspot,
    permutation,
    uniform_random,
)


class TestPatterns:
    def test_uniform_never_self(self):
        pick = uniform_random(8)
        rng = random.Random(1)
        for _ in range(500):
            src = rng.randrange(8)
            assert pick(src, rng) != src

    def test_uniform_covers_all_destinations(self):
        pick = uniform_random(6)
        rng = random.Random(2)
        seen = {pick(0, rng) for _ in range(300)}
        assert seen == {1, 2, 3, 4, 5}

    def test_uniform_needs_two_nodes(self):
        with pytest.raises(ValueError):
            uniform_random(1)

    def test_permutation(self):
        pick = permutation([1, 0, 3, 2])
        rng = random.Random(1)
        assert pick(0, rng) == 1
        assert pick(3, rng) == 2

    def test_permutation_rejects_self_map(self):
        with pytest.raises(ValueError):
            permutation([0, 1])

    def test_bit_complement(self):
        pick = bit_complement(8)
        assert pick(0, random.Random(1)) == 7
        assert pick(3, random.Random(1)) == 4

    def test_bit_complement_needs_even(self):
        with pytest.raises(ValueError):
            bit_complement(7)

    def test_hotspot_targets_only_listed(self):
        pick = hotspot([2, 5])
        rng = random.Random(1)
        assert {pick(0, rng) for _ in range(100)} == {2, 5}

    def test_hotspot_avoids_self_when_possible(self):
        pick = hotspot([2, 5])
        rng = random.Random(1)
        assert all(pick(2, rng) == 5 for _ in range(20))

    def test_hotspot_empty_rejected(self):
        with pytest.raises(ValueError):
            hotspot([])


class FakeEndpoint:
    def __init__(self, node=0, seed=1):
        self.node = node
        self.rng = random.Random(seed)
        self.posted = []
        self.backlog_flits = 0

    def post_message(self, dst, size, cycle, tag=0, on_complete=None):
        self.posted.append((dst, size, cycle, tag))
        self.backlog_flits += size


class TestBernoulliSource:
    def test_rate_matches_expectation(self):
        src = BernoulliSource(rate=0.5, msg_flits=8,
                              pattern=uniform_random(4))
        ep = FakeEndpoint()
        cycles = 40_000
        for c in range(cycles):
            src.generate(ep, c)
        flits = sum(size for _, size, _, _ in ep.posted)
        assert flits / cycles == pytest.approx(0.5, rel=0.1)

    def test_start_stop_window(self):
        src = BernoulliSource(rate=1.0, msg_flits=1,
                              pattern=uniform_random(4), start=10, stop=20)
        ep = FakeEndpoint()
        for c in range(40):
            src.generate(ep, c)
        assert all(10 <= c < 20 for _, _, c, _ in ep.posted)
        assert len(ep.posted) == 10

    def test_zero_rate_generates_nothing(self):
        src = BernoulliSource(rate=0.0, msg_flits=4, pattern=uniform_random(4))
        ep = FakeEndpoint()
        for c in range(100):
            src.generate(ep, c)
        assert not ep.posted

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliSource(rate=1.5, msg_flits=4, pattern=uniform_random(4))

    def test_tag_propagates(self):
        src = BernoulliSource(rate=1.0, msg_flits=1,
                              pattern=uniform_random(4), tag=9)
        ep = FakeEndpoint()
        src.generate(ep, 0)
        assert ep.posted and ep.posted[0][3] == 9


class TestBurstSource:
    def test_keeps_outstanding_bound(self):
        src = BurstSource(msg_flits=32, pattern=uniform_random(4),
                          outstanding=2)
        ep = FakeEndpoint()
        src.generate(ep, 0)
        assert ep.backlog_flits == 64
        src.generate(ep, 1)  # already at bound: nothing new
        assert ep.backlog_flits == 64
        ep.backlog_flits = 10  # network drained most of it
        src.generate(ep, 2)
        assert ep.backlog_flits >= 64

    def test_window(self):
        src = BurstSource(msg_flits=8, pattern=uniform_random(4),
                          start=5, stop=6)
        ep = FakeEndpoint()
        src.generate(ep, 0)
        assert not ep.posted
        src.generate(ep, 5)
        assert ep.posted
