"""Runtime wake-contract enforcement: ``Simulator(verify_wake=True)``
shadow mode and the stale-wake guard in ``Simulator.wake``.

The fuzz tests reuse the seed derivation of
``tests/test_kernel_identity.py`` (``0xC0FFEE + trial``): the same
randomized (variant, load, seed) points that prove byte-identity must
also pass the shadow check clean — and the shadow check itself must not
perturb results.  The mutation test drops one component's wakes on
purpose and asserts the shadow mode names the sleeping component.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.engine.config import SimParams, tiny_preset
from repro.engine.simulator import Simulator, WakeContractError
from repro.experiments.common import reliability_network
from repro.network import Network
from tests.conftest import micro_config


class _Idler:
    """Sleeps forever; work arrives only via an external wake."""

    def __init__(self) -> None:
        self.steps = 0

    def step(self, cycle: int) -> None:
        self.steps += 1

    def next_active_cycle(self, cycle: int) -> int | None:
        return None


class TestStaleWakeRaises:
    def test_wake_behind_current_cycle_raises(self):
        sim = Simulator()
        sim.add(_Idler())
        sim.run(10)
        with pytest.raises(ValueError, match="stale wake"):
            sim.wake(0, sim.cycle - 1)

    def test_wake_at_current_cycle_is_allowed(self):
        sim = Simulator()
        idler = _Idler()
        sim.add(idler)
        sim.run(10)
        sim.wake(0, sim.cycle)  # due immediately: legal, not stale
        sim.run(5)
        # stepped once at cycle 0, slept through the rest, then once
        # more at the woken cycle
        assert idler.steps == 2

    def test_wake_component_respects_the_guard(self):
        sim = Simulator()
        idler = _Idler()
        sim.add(idler)
        sim.run(10)
        with pytest.raises(ValueError, match="stale wake"):
            sim.wake_component(idler, 3)


def _fuzz_point(trial: int):
    rng = random.Random(0xC0FFEE + trial)
    variant = rng.choice(["baseline", "stash100", "stash50", "stash25"])
    rate = rng.choice([0.15, 0.35, 0.55, 0.75])
    seed = rng.randrange(1, 10_000)
    return variant, rate, seed


def _samples(variant: str, rate: float, seed: int, verify: bool):
    cfg = micro_config(
        sim=SimParams(seed=seed, warmup_cycles=200, measure_cycles=600,
                      drain_cycles=8000, sample_period=25,
                      verify_wake=verify)
    )
    net = reliability_network(cfg, variant, seed=seed)
    net.add_uniform_traffic(rate=rate)
    net.run_standard()
    return net.sim.cycle, list(net.latency._samples)


@pytest.mark.parametrize("trial", range(4))
def test_fuzz_verify_wake_clean_and_invisible(trial):
    """Shadow mode neither raises nor changes a single sample on the
    kernel-identity fuzz points."""
    variant, rate, seed = _fuzz_point(trial)
    cycle, samples = _samples(variant, rate, seed, verify=False)
    v_cycle, v_samples = _samples(variant, rate, seed, verify=True)
    assert samples, f"no traffic delivered for {variant}@{rate} seed={seed}"
    assert (cycle, samples) == (v_cycle, v_samples)


@pytest.mark.nightly
@pytest.mark.parametrize("trial", range(4, 16))
def test_fuzz_verify_wake_nightly(trial):
    """Heavier nightly sweep over fresh fuzz points, shadow mode on."""
    variant, rate, seed = _fuzz_point(trial)
    _, samples = _samples(variant, rate, seed, verify=True)
    assert samples


class TestMutationRuntime:
    def test_dropped_wake_is_detected_and_attributed(self):
        """Monkeypatch the simulator to drop every wake aimed at one
        switch: the shadow check must raise and name that component."""
        cfg = tiny_preset()
        cfg = replace(cfg, sim=replace(cfg.sim, verify_wake=True))
        net = Network(cfg)
        net.add_uniform_traffic(0.05)

        victim = net.sim.index_of(net.switches[0])
        original_wake = net.sim.wake

        def dropping(idx: int, cycle: int) -> None:
            if idx != victim:
                original_wake(idx, cycle)

        net.sim.wake = dropping
        with pytest.raises(WakeContractError, match="missed wake") as exc:
            net.run_standard()
        message = str(exc.value)
        assert type(net.switches[0]).__name__ in message
        assert f"component #{victim}" in message
        assert "pending state" in message

    def test_same_run_is_clean_without_the_mutation(self):
        cfg = tiny_preset()
        cfg = replace(cfg, sim=replace(cfg.sim, verify_wake=True))
        net = Network(cfg)
        net.add_uniform_traffic(0.05)
        net.run_standard()
        assert net.latency.count > 0
