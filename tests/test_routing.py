"""Routing algorithms: VC ladder, minimal/Valiant/PAR correctness.

The route-walker tests simulate a packet's hop-by-hop traversal using
only the router and topology (no flit datapath), asserting the three
properties deadlock freedom rests on: routes terminate at the right
ejection port, VCs strictly increase along switch-to-switch hops, and
hop counts respect the PAR budget.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import DragonflyParams
from repro.routing.dragonfly_routing import (
    DragonflyMinimalRouter,
    DragonflyParRouter,
    DragonflyValiantRouter,
    make_dragonfly_router,
)
from repro.routing.fattree_routing import FatTreeRouter
from repro.routing.routing import VcLadder
from repro.switch.flit import Packet
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology


class FakeCtx:
    """Routing context with controllable congestion."""

    def __init__(self, switch_id, congestion=None):
        self.switch_id = switch_id
        self._congestion = congestion or {}

    def output_congestion(self, port):
        return self._congestion.get(port, 0)


def _topo(p=2, a=3, h=2):
    return DragonflyTopology(
        DragonflyParams(p=p, a=a, h=h, latency_endpoint=1,
                        latency_local=2, latency_global=10)
    )


def walk(topo, router, src, dst, congestion=None, max_hops=8):
    """Follow routing decisions from src's switch to ejection; returns
    the list of (switch, out_port, vc) hops."""
    pkt = Packet(1, src, dst, 4)
    router.prepare_injection(pkt)
    switch = topo.node_switch(src)
    in_port = topo.node_port(src)
    hops = []
    for _ in range(max_hops):
        ctx = FakeCtx(switch, congestion)
        out_port, vc = router.route(ctx, in_port, pkt)
        hops.append((switch, out_port, vc))
        spec = topo.port_spec(switch, out_port)
        if spec.link_class == "endpoint":
            assert spec.peer == ("node", dst), (
                f"ejected at {spec.peer}, wanted node {dst}"
            )
            return hops
        _, switch, in_port = spec.peer
        pkt.vc = vc
    raise AssertionError(f"no ejection after {max_hops} hops: {hops}")


class TestVcLadder:
    def test_minimal_path_vcs(self):
        ladder = VcLadder("LLGLGL")
        vc0, ptr = ladder.next_vc(0, "L")
        vc1, ptr = ladder.next_vc(ptr, "G")
        vc2, _ = ladder.next_vc(ptr, "L")
        assert (vc0, vc1, vc2) == (0, 2, 3)

    def test_full_valiant_path(self):
        ladder = VcLadder("LLGLGL")
        ptr = 0
        vcs = []
        for hop in "LLGLGL":
            vc, ptr = ladder.next_vc(ptr, hop)
            vcs.append(vc)
        assert vcs == [0, 1, 2, 3, 4, 5]

    def test_budget_exceeded_raises(self):
        ladder = VcLadder("LLGLGL")
        with pytest.raises(RuntimeError):
            ladder.next_vc(5, "G")  # no G at or after position 5

    def test_can_take(self):
        ladder = VcLadder("LLGLGL")
        assert ladder.can_take(0, "G")
        assert not ladder.can_take(5, "G")
        assert ladder.can_take(5, "L")

    def test_invalid_sequence_rejected(self):
        with pytest.raises(ValueError):
            VcLadder("LXG")


class TestMinimalRouting:
    def test_same_switch_ejects_directly(self):
        topo = _topo()
        router = DragonflyMinimalRouter(topo)
        hops = walk(topo, router, src=0, dst=1)
        assert len(hops) == 1

    def test_intra_group_one_local_hop(self):
        topo = _topo()
        router = DragonflyMinimalRouter(topo)
        # nodes 0 and 2*p=4 are on switches 0 and 2, same group
        hops = walk(topo, router, src=0, dst=2 * topo.p)
        assert len(hops) == 2
        assert topo.port_class(hops[0][0], hops[0][1]) == "local"

    def test_inter_group_at_most_lgl(self):
        topo = _topo()
        router = DragonflyMinimalRouter(topo)
        for dst in range(topo.p * topo.a, topo.num_nodes, 7):
            hops = walk(topo, router, src=0, dst=dst)
            classes = [topo.port_class(s, p) for s, p, _ in hops[:-1]]
            assert classes.count("global") == 1
            assert classes.count("local") <= 2

    def test_all_pairs_reachable_with_increasing_vcs(self):
        topo = _topo()
        router = DragonflyMinimalRouter(topo)
        for src in range(0, topo.num_nodes, 5):
            for dst in range(topo.num_nodes):
                if src == dst:
                    continue
                hops = walk(topo, router, src, dst)
                vcs = [
                    vc for s, p, vc in hops
                    if topo.port_class(s, p) != "endpoint"
                ]
                assert vcs == sorted(vcs), f"{src}->{dst}: {vcs}"


class TestValiantRouting:
    def test_routes_terminate_everywhere(self):
        topo = _topo()
        router = DragonflyValiantRouter(topo, random.Random(3))
        for src in range(0, topo.num_nodes, 3):
            for dst in range(0, topo.num_nodes, 2):
                if src != dst:
                    walk(topo, router, src, dst)

    def test_nonminimal_flag_set_for_intergroup(self):
        topo = _topo()
        router = DragonflyValiantRouter(topo, random.Random(3))
        pkt = Packet(1, 0, topo.num_nodes - 1, 4)
        router.prepare_injection(pkt)
        router.route(FakeCtx(0), 0, pkt)
        assert pkt.nonminimal
        assert pkt.mid_group not in (
            topo.group_of(0),
            topo.group_of(topo.node_switch(topo.num_nodes - 1)),
        )

    def test_intra_group_stays_minimal(self):
        topo = _topo()
        router = DragonflyValiantRouter(topo, random.Random(3))
        hops = walk(topo, router, src=0, dst=2 * topo.p)
        assert len(hops) == 2


class TestParRouting:
    def test_uncongested_stays_minimal(self):
        topo = _topo()
        router = DragonflyParRouter(topo, random.Random(5))
        for dst in range(topo.p * topo.a, topo.num_nodes, 5):
            hops = walk(topo, router, src=0, dst=dst)
            classes = [topo.port_class(s, p) for s, p, _ in hops[:-1]]
            assert classes.count("global") == 1  # minimal: one global hop
        assert router.diversions == 0

    def test_congestion_diverts(self):
        topo = _topo()
        router = DragonflyParRouter(topo, random.Random(5), threshold=2)
        detours = 0
        # congest every minimal port out of the source switch; over many
        # destinations the random mid-group pick must divert some routes
        for dst in range(topo.p * topo.a, topo.num_nodes, 3):
            min_port = topo.route_to_group(
                0, topo.group_of(topo.node_switch(dst))
            )
            congestion = {min_port: 1000}
            hops = walk(topo, router, src=0, dst=dst, congestion=congestion)
            classes = [topo.port_class(s, p) for s, p, _ in hops[:-1]]
            if classes.count("global") == 2:
                detours += 1
        assert router.diversions >= 1
        assert detours >= 1

    def test_par_all_pairs_with_random_congestion(self):
        topo = _topo()
        rng = random.Random(11)
        router = DragonflyParRouter(topo, random.Random(5), threshold=0)
        for src in range(0, topo.num_nodes, 4):
            for dst in range(0, topo.num_nodes, 3):
                if src == dst:
                    continue
                congestion = {
                    port: rng.randrange(50)
                    for port in range(topo.num_ports)
                }
                hops = walk(topo, router, src, dst, congestion=congestion)
                vcs = [
                    vc for s, p, vc in hops
                    if topo.port_class(s, p) != "endpoint"
                ]
                assert vcs == sorted(vcs)
                assert len(vcs) <= 6

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_par_random_pairs_property(self, a, b):
        topo = _topo(p=2, a=4, h=2)  # 9 groups, 72 nodes
        router = DragonflyParRouter(topo, random.Random(7), threshold=1)
        src = a % topo.num_nodes
        dst = b % topo.num_nodes
        if src == dst:
            return
        congestion = {p: (a * 31 + p * 17) % 60 for p in range(topo.num_ports)}
        walk(topo, router, src, dst, congestion=congestion)

    def test_factory(self):
        topo = _topo()
        rng = random.Random(1)
        assert isinstance(make_dragonfly_router(topo, rng, "min"),
                          DragonflyMinimalRouter)
        assert isinstance(make_dragonfly_router(topo, rng, "val"),
                          DragonflyValiantRouter)
        assert isinstance(make_dragonfly_router(topo, rng, "par"),
                          DragonflyParRouter)
        with pytest.raises(ValueError):
            make_dragonfly_router(topo, rng, "ugal")


class TestFatTreeRouting:
    def test_local_leaf_ejects(self):
        topo = FatTreeTopology(num_leaves=3, num_spines=2, p=2)
        router = FatTreeRouter(topo, random.Random(1))
        pkt = Packet(1, 0, 1, 4)
        router.prepare_injection(pkt)
        out, _vc = router.route(FakeCtx(0), 0, pkt)
        assert out == 1  # node 1's port on leaf 0

    def test_up_down_path(self):
        topo = FatTreeTopology(num_leaves=3, num_spines=2, p=2)
        router = FatTreeRouter(topo, random.Random(1))
        pkt = Packet(1, 0, 5, 4)  # leaf 0 -> leaf 2
        router.prepare_injection(pkt)
        up, vc_up = router.route(FakeCtx(0), 0, pkt)
        assert topo.port_class(0, up) == "global"
        assert vc_up == 0
        _, spine, spine_in = topo.port_spec(0, up).peer
        down, vc_down = router.route(FakeCtx(spine), spine_in, pkt)
        assert vc_down == 1
        assert topo.port_spec(spine, down).peer[1] == 2  # to leaf 2

    def test_adaptive_uplink_prefers_less_congested(self):
        topo = FatTreeTopology(num_leaves=2, num_spines=3, p=2)
        router = FatTreeRouter(topo, random.Random(1))
        congestion = {topo.uplink_port(0, 0): 100, topo.uplink_port(0, 1): 100}
        pkt = Packet(1, 0, 3, 4)
        router.prepare_injection(pkt)
        out, _ = router.route(FakeCtx(0, congestion), 0, pkt)
        assert out == topo.uplink_port(0, 2)
