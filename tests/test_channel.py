"""Delay-line channels."""

import pytest

from repro.engine.channel import Channel, CreditChannel


def test_latency_respected():
    ch = Channel(3)
    ch.send("a", cycle=10)
    assert list(ch.recv_ready(12)) == []
    assert list(ch.recv_ready(13)) == ["a"]
    assert list(ch.recv_ready(14)) == []


def test_fifo_order():
    ch = Channel(2)
    for i in range(5):
        ch.send(i, cycle=i)
    out = []
    for cycle in range(12):
        out.extend(ch.recv_ready(cycle))
    assert out == [0, 1, 2, 3, 4]


def test_batch_delivery_same_cycle():
    ch = Channel(1)
    ch.send("x", 5)
    ch.send("y", 5)
    assert list(ch.recv_ready(6)) == ["x", "y"]


def test_peek_does_not_consume():
    ch = Channel(1)
    ch.send("x", 0)
    assert ch.peek_ready(1) == "x"
    assert ch.peek_ready(1) == "x"
    assert list(ch.recv_ready(1)) == ["x"]
    assert ch.peek_ready(1) is None


def test_empty_and_len():
    ch = Channel(1)
    assert ch.empty
    ch.send(1, 0)
    assert not ch.empty
    assert len(ch) == 1


def test_zero_latency_rejected():
    with pytest.raises(ValueError):
        Channel(0)


def test_credit_channel_tuples():
    ch = CreditChannel(2)
    ch.send_credit(vc=3, flits=2, cycle=0)
    assert list(ch.recv_ready(2)) == [(3, 2)]


def test_recv_ready_drains_eagerly_despite_partial_consumption():
    # regression: recv_ready used to be a lazy generator, so a caller
    # that stopped iterating early left due items queued in the channel
    ch = Channel(1)
    for i in range(4):
        ch.send(i, cycle=0)
    for item in ch.recv_ready(1):
        if item == 1:
            break  # early exit must not strand items 2 and 3
    assert ch.empty
    assert ch.recv_ready(1) == []


def test_recv_ready_returns_list():
    ch = Channel(1)
    ch.send("x", 0)
    ready = ch.recv_ready(1)
    assert isinstance(ready, list)
    # the returned list is a snapshot: iterating twice sees the same items
    assert list(ready) == list(ready) == ["x"]


def test_send_rejects_out_of_order_cycle():
    # regression: a send below the queue tail's cycle used to be
    # accepted silently, corrupting FIFO delivery order and the event
    # kernel's next-arrival deadline
    ch = Channel(2, name="lnk")
    ch.send("a", cycle=10)
    with pytest.raises(ValueError, match="out-of-order send on lnk"):
        ch.send("b", cycle=9)
    # the offending item must not have been enqueued
    assert len(ch) == 1
    assert ch.recv_ready(12) == ["a"]


def test_send_same_cycle_is_in_order():
    ch = Channel(1)
    ch.send("a", cycle=4)
    ch.send("b", cycle=4)  # equal cycles are fine (batched sends)
    ch.send("c", cycle=5)
    assert ch.recv_ready(6) == ["a", "b", "c"]


def test_credit_channel_inherits_monotonic_contract():
    ch = CreditChannel(3)
    ch.send_credit(vc=1, flits=2, cycle=8)
    with pytest.raises(ValueError):
        ch.send_credit(vc=1, flits=2, cycle=5)
