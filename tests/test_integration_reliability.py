"""End-to-end reliability stashing, full datapath (paper Section IV-A)."""

import pytest

from repro.engine.config import ReliabilityParams, StashParams
from repro.network import Network
from repro.switch.flit import PacketKind
from tests.conftest import drain_and_check, micro_config, single_switch_net


def reliability_net(error_rate=0.0, capacity_scale=1.0, **overrides):
    cfg = micro_config(
        stash=StashParams(enabled=True, frac_local=0.5,
                          capacity_scale=capacity_scale),
        reliability=ReliabilityParams(enabled=True, error_rate=error_rate),
        **overrides,
    )
    return Network(cfg)


class TestCopyLifecycle:
    def test_every_data_packet_copied(self):
        net = reliability_net()
        net.endpoints[0].post_message(3, 16, 0)  # 4 packets
        drain_and_check(net)
        copies = sum(
            ip.copies_dispatched for sw in net.switches for ip in sw.in_ports
        )
        assert copies == 4

    def test_acks_not_copied(self):
        net = reliability_net()
        net.endpoints[0].post_message(3, 4, 0)  # 1 packet -> 1 ack back
        drain_and_check(net)
        copies = sum(
            ip.copies_dispatched for sw in net.switches for ip in sw.in_ports
        )
        assert copies == 1  # the data packet only

    def test_stash_drains_after_acks(self):
        net = reliability_net()
        net.add_uniform_traffic(rate=0.3, stop=1000)
        net.sim.run(1000)
        drain_and_check(net)
        for sw in net.switches:
            assert sw.stash_dir is not None
            for part in sw.stash_dir.partitions:
                assert part.empty, (sw.switch_id, part.port)
            assert all(t.outstanding == 0 for t in sw.trackers.values())

    def test_stores_equal_deletes_when_error_free(self):
        net = reliability_net()
        net.add_uniform_traffic(rate=0.3, stop=1000)
        net.sim.run(1000)
        drain_and_check(net)
        stored = deleted = 0
        for sw in net.switches:
            for part in sw.stash_dir.partitions:
                stored += part.stored_total
                deleted += part.deleted_total
        assert stored > 0
        assert stored == deleted

    def test_copies_only_at_first_hop_end_ports(self):
        net = reliability_net()
        net.add_uniform_traffic(rate=0.3, stop=600)
        net.sim.run(600)
        net.drain(50000)
        for sw in net.switches:
            for ip in sw.in_ports:
                if not ip.is_end_port:
                    assert ip.copies_dispatched == 0

    def test_global_ports_never_store(self):
        net = reliability_net()
        net.add_uniform_traffic(rate=0.4, stop=1200)
        net.sim.run(1200)
        net.drain(50000)
        for s, sw in enumerate(net.switches):
            for spec in net.topology.switch_ports(s):
                if spec.link_class == "global":
                    assert sw.stash_dir.partitions[spec.port].stored_total == 0


class TestRetransmission:
    def test_recovers_from_corruption(self):
        net = reliability_net(error_rate=0.1)
        net.add_uniform_traffic(rate=0.25, stop=1200)
        net.sim.run(1200)
        drain_and_check(net, max_cycles=120_000)
        corrupted = sum(ep.packets_corrupted for ep in net.endpoints)
        retrans = sum(sw.retransmits_issued for sw in net.switches)
        assert corrupted > 0, "fault injection produced no errors"
        assert retrans >= corrupted  # clones can be corrupted again

    def test_repeated_corruption_eventually_delivers(self):
        net = reliability_net(error_rate=0.4)
        net.endpoints[0].post_message(3, 8, 0)
        drain_and_check(net, max_cycles=200_000)

    def test_tracker_and_switch_counters_agree(self):
        net = reliability_net(error_rate=0.3)
        net.add_uniform_traffic(rate=0.2, stop=800)
        net.sim.run(800)
        net.drain(120_000)
        assert sum(sw.retransmits_issued for sw in net.switches) == sum(
            t.retransmits_sent
            for sw in net.switches
            for t in sw.trackers.values()
        )


class TestSelfPacing:
    def test_tiny_stash_limits_outstanding(self):
        """With almost no stash capacity, injection self-paces: the
        input stalls whenever no stash space is free (paper: 'the
        network simply slows down its packet injection rate')."""
        throttled = reliability_net(capacity_scale=0.05)
        free = reliability_net(capacity_scale=1.0)
        for net in (throttled, free):
            net.add_uniform_traffic(rate=0.9, stop=1500)
            net.sim.run(1500)
        inj_throttled = sum(ep.flits_injected for ep in throttled.endpoints)
        inj_free = sum(ep.flits_injected for ep in free.endpoints)
        assert inj_throttled < 0.8 * inj_free
        stalls = sum(
            ip.stall_no_stash
            for sw in throttled.switches
            for ip in sw.in_ports
        )
        assert stalls > 0
        # and it still conserves everything once traffic stops
        drain_and_check(throttled, max_cycles=200_000)

    def test_acks_flow_despite_stash_stall(self):
        """ACKs must bypass a stash-stalled data queue (they ride their
        own injection VC), otherwise the stall never clears."""
        net = reliability_net(capacity_scale=0.05)
        net.add_uniform_traffic(rate=0.9, stop=1000)
        net.sim.run(1000)
        drain_and_check(net, max_cycles=200_000)


class TestOnSingleSwitch:
    def test_single_switch_reliability(self):
        net = single_switch_net(stash=True, reliability=True)
        for src in range(6):
            net.endpoints[src].post_message((src + 1) % 6, 12, 0)
        drain_and_check(net)
        sw = net.switches[0]
        assert all(p.empty for p in sw.stash_dir.partitions)

    def test_single_switch_fault_injection(self):
        net = single_switch_net(
            stash=True, reliability=True, error_rate=0.2
        )
        for src in range(6):
            net.endpoints[src].post_message((src + 2) % 6, 20, 0)
        drain_and_check(net, max_cycles=150_000)
        assert sum(ep.packets_corrupted for ep in net.endpoints) > 0


class TestNoDegradation:
    def test_throughput_matches_baseline_at_moderate_load(self):
        """The paper's headline: full-capacity stashing is performance
        neutral."""
        base_net = Network(micro_config())
        stash_net = reliability_net()
        results = []
        for net in (base_net, stash_net):
            net.add_uniform_traffic(rate=0.35)
            res = net.run_standard()
            results.append(res)
        base, stash = results
        assert stash.accepted_load == pytest.approx(base.accepted_load,
                                                    rel=0.05)
        assert stash.avg_latency == pytest.approx(base.avg_latency, rel=0.25)
