"""Stashing on the fat-tree substrate (the paper's 'similar analyses'
topology)."""

from repro.engine.config import ReliabilityParams, StashParams
from repro.engine.rng import DeterministicRng
from repro.network import Network
from repro.routing.fattree_routing import FatTreeRouter
from repro.topology.fattree import FatTreeTopology
from tests.conftest import drain_and_check, micro_config


def fattree_net(stash=False, reliability=False, error_rate=0.0):
    cfg = micro_config()
    if stash:
        cfg = cfg.with_(
            stash=StashParams(enabled=True, frac_local=0.5),
            reliability=ReliabilityParams(enabled=reliability,
                                          error_rate=error_rate),
        )
    topo = FatTreeTopology(
        num_leaves=3,
        num_spines=1,
        p=2,
        num_ports=cfg.switch.num_ports,
        latency_endpoint=1,
        latency_up=6,
    )
    router = FatTreeRouter(topo, DeterministicRng(cfg.sim.seed).stream("ft"))
    return Network(cfg, topology=topo, router=router)


class TestFatTreeTraffic:
    def test_all_pairs(self):
        net = fattree_net()
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    net.endpoints[src].post_message(dst, 8, 0)
        drain_and_check(net)

    def test_cross_leaf_traverses_spine(self):
        net = fattree_net()
        net.open_measurement()
        net.endpoints[0].post_message(5, 4, 0)  # leaf 0 -> leaf 2
        drain_and_check(net)
        # two uplink traversals at latency 6 each, plus pipelines
        assert net.latency.mean >= 12

    def test_uniform_load_conserves(self):
        net = fattree_net()
        net.add_uniform_traffic(rate=0.3, stop=1200)
        net.sim.run(1200)
        drain_and_check(net)


class TestFatTreeStashing:
    def test_leaf_switches_get_stash_uplinks_none(self):
        net = fattree_net(stash=True)
        leaf = net.switches[0]
        topo = net.topology
        for spec in topo.switch_ports(0):
            part = leaf.stash_dir.partitions[spec.port]
            if spec.link_class == "endpoint":
                assert part.enabled
            elif spec.link_class == "global":
                assert not part.enabled  # uplinks keep all their buffering

    def test_reliability_on_fattree(self):
        net = fattree_net(stash=True, reliability=True)
        net.add_uniform_traffic(rate=0.25, stop=1000)
        net.sim.run(1000)
        drain_and_check(net, max_cycles=100_000)
        for sw in net.switches:
            if sw.stash_dir:
                assert all(p.empty for p in sw.stash_dir.partitions)

    def test_fault_recovery_on_fattree(self):
        net = fattree_net(stash=True, reliability=True, error_rate=0.1)
        net.add_uniform_traffic(rate=0.2, stop=800)
        net.sim.run(800)
        drain_and_check(net, max_cycles=150_000)
        assert sum(sw.retransmits_issued for sw in net.switches
                   if hasattr(sw, "retransmits_issued")) >= 0
