"""Per-VC endpoint injection streams.

The NIC keeps one in-progress packet per injection VC, so ACKs (VC 1)
interleave into a long data stream (VC 0) instead of queueing behind it.
This is the property that breaks the reliability-stashing ACK deadlock
(see docs/ARCHITECTURE.md section 3.3).
"""

from repro.endpoints.endpoint import ACK_INJECT_VC, DATA_INJECT_VC
from tests.conftest import drain_and_check, single_switch_net


def _drain_channel(net, node):
    """Pull everything currently on a node's injection wire."""
    ch = net.endpoints[node].flit_out
    return list(ch.recv_ready(net.sim.cycle + ch.latency + 1))


def test_ack_interleaves_into_data_stream():
    net = single_switch_net()
    ep0 = net.endpoints[0]
    # a long data message keeps VC0 busy for many cycles...
    ep0.post_message(1, 60, 0)
    # ...while node 2's short message to node 0 will make ep0 owe an ACK
    net.endpoints[2].post_message(0, 4, 0)

    seen_vcs: list[int] = []
    for _ in range(60):
        net.sim.run(1)
        for vc, _flit in net.endpoints[0].flit_out.recv_ready(
            net.sim.cycle + 10
        ):
            seen_vcs.append(vc)
        if ACK_INJECT_VC in seen_vcs:
            break
    assert ACK_INJECT_VC in seen_vcs, "ACK never injected"
    idx = seen_vcs.index(ACK_INJECT_VC)
    # the ACK went out while VC0 data flits were still flowing: data
    # appears both before and after it
    assert DATA_INJECT_VC in seen_vcs[:idx]
    # note: we consumed the wire, so rebuild a fresh net for conservation
    net2 = single_switch_net()
    net2.endpoints[0].post_message(1, 60, 0)
    net2.endpoints[2].post_message(0, 4, 0)
    drain_and_check(net2)


def test_data_resumes_after_ack():
    net = single_switch_net()
    net.endpoints[0].post_message(1, 24, 0)
    net.endpoints[2].post_message(0, 4, 0)
    drain_and_check(net)
    # all 6 data packets of the 24-flit message arrived despite the
    # interleaved ACK
    assert net.endpoints[1].packets_delivered == 6


def test_single_stream_per_vc():
    """Two data messages to different destinations still share VC0: the
    NIC starts the second packet only after the first packet's tail."""
    net = single_switch_net()
    ep = net.endpoints[0]
    ep.post_message(1, 8, 0)
    ep.post_message(2, 8, 0)
    heads = []
    for _ in range(80):
        net.sim.run(1)
        for vc, flit in ep.flit_out.recv_ready(net.sim.cycle + 10):
            if vc == DATA_INJECT_VC:
                heads.append((flit.pkt.pid, flit.head, flit.tail))
    # flits of distinct packets never interleave on VC0: each pid forms
    # exactly one contiguous run in the wire order
    pids = [pid for pid, _, _ in heads]
    runs = [pid for i, pid in enumerate(pids) if i == 0 or pids[i - 1] != pid]
    assert len(runs) == len(set(pids))
    assert len(set(pids)) == 4  # two 8-flit messages = four 4-flit packets
