"""Experiment harness smoke tests on micro-scale networks.

These verify the harness plumbing (variant construction, sweeps, result
shapes, formatters); the benchmarks regenerate the real figures.
"""

import math
from dataclasses import replace

import pytest

from repro.engine.config import SimParams
from repro.experiments.common import (
    CONGESTION_VARIANTS,
    RELIABILITY_VARIANTS,
    congestion_network,
    preset_by_name,
    quicken,
    reliability_network,
)
from tests.conftest import micro_config


def fast_base():
    return micro_config(
        sim=SimParams(seed=3, warmup_cycles=200, measure_cycles=800,
                      drain_cycles=6000, sample_period=25)
    )


class TestCommon:
    def test_preset_lookup(self):
        assert preset_by_name("tiny").dragonfly.p == 2
        with pytest.raises(ValueError):
            preset_by_name("gigantic")

    def test_quicken_scales_windows(self):
        base = preset_by_name("tiny")
        quick = quicken(base, 0.5)
        assert quick.sim.measure_cycles == base.sim.measure_cycles // 2

    def test_reliability_variants(self):
        base = fast_base()
        for variant, scale in RELIABILITY_VARIANTS.items():
            net = reliability_network(base, variant)
            if scale is None:
                assert net.switches[0].stash_dir is None
            else:
                assert net.switches[0].reliability_on
                cap_full = reliability_network(base, "stash100")
                assert net.switches[0].stash_dir.total_capacity() <= \
                    cap_full.switches[0].stash_dir.total_capacity()

    def test_congestion_variants(self):
        base = fast_base()
        for variant, scale in CONGESTION_VARIANTS.items():
            net = congestion_network(base, variant)
            assert net.switches[0].ecn_on
            assert net.switches[0].congestion_stash_on == (scale is not None)

    def test_seed_override(self):
        net = reliability_network(fast_base(), "baseline", seed=77)
        assert net.config.sim.seed == 77


class TestFig5:
    def test_sweep_shape(self):
        from repro.experiments.fig5 import format_fig5, run_fig5

        res = run_fig5(fast_base(), loads=(0.2,), variants=("baseline",
                                                            "stash100"))
        assert set(res) == {"baseline", "stash100"}
        for points in res.values():
            assert len(points) == 1
            p = points[0]
            assert 0 < p.accepted <= 1.0
            assert p.avg_latency > 0
        table = format_fig5(res)
        assert "baseline" in table and "stash100" in table


class TestFig6:
    def test_trace_runtimes(self):
        from repro.experiments.fig6 import format_fig6, run_fig6

        res = run_fig6(
            fast_base(), apps=("MiniFE",), variants=("baseline", "stash100"),
            size_scale=2, iterations=1,
        )
        assert res["MiniFE"]["baseline"] > 0
        out = format_fig6(res)
        assert "MiniFE" in out


class TestFig7:
    def test_transient_series(self):
        from repro.experiments.fig7 import format_fig7, run_fig7

        res = run_fig7(
            fast_base(), variants=("baseline",), include_reference=False,
            victim_rate=0.25,
        )
        r = res["baseline"]
        assert r.time.size > 0
        assert r.mean_latency > 0
        assert not math.isnan(r.p99_latency)
        assert "baseline" in format_fig7(res)


class TestFig8:
    def test_probe_series(self):
        from repro.experiments.fig8 import format_fig8, run_fig8

        res = run_fig8(fast_base(), variant="stash100", victim_rate=0.25)
        assert res.time.size > 0
        assert res.aggressor_load.max() > 0
        assert 0 <= res.peak_utilization <= 1.0
        assert "stash" in format_fig8(res).lower()


class TestFig9:
    def test_burst_sweep(self):
        from repro.experiments.fig9 import format_fig9, run_fig9

        res = run_fig9(
            fast_base(), bursts_pkts=(1, 4), variants=("baseline",),
            victim_rate=0.25,
        )
        series = res["baseline"]
        assert [b for b, _, _ in series] == [1, 4]
        assert all(p90 > 0 for _, p90, _ in series)
        assert "baseline" in format_fig9(res)


class TestTables:
    def test_table1(self):
        from repro.experiments.tables import format_table1, run_table1

        res = run_table1(fast_base())
        assert res["paper_total"] == pytest.approx(0.7225, abs=1e-4)
        assert "72" in format_table1(res)

    def test_table2(self):
        from repro.experiments.tables import format_table2, run_table2

        rows = run_table2(ranks=12, size_scale=2)
        assert len(rows) == 6
        assert all(r["ops"] > 0 for r in rows)
        assert "BIGFFT" in format_table2(rows)


class TestAblations:
    def test_speedup_ablation(self):
        from repro.experiments.ablations import run_speedup_ablation

        rows = run_speedup_ablation(fast_base(), speedups=(1.0, 1.3),
                                    load=0.3)
        assert [s for s, _, _ in rows] == [1.0, 1.3]
        assert all(acc > 0 for _, acc, _ in rows)

    def test_placement_ablation(self):
        from repro.experiments.ablations import run_placement_ablation

        res = run_placement_ablation(fast_base(), load=0.3,
                                     capacity_scale=0.5)
        assert set(res) == {"jsq", "random"}


class TestOccupancy:
    def test_census_rows(self):
        from repro.experiments.occupancy import (
            format_occupancy,
            run_occupancy_census,
        )

        rows = run_occupancy_census(fast_base(), load=0.4)
        classes = [r.link_class for r in rows]
        assert classes == ["endpoint", "local", "global"]
        for r in rows:
            assert 0 <= r.peak_flits <= r.capacity_flits
            assert 0.0 <= r.idle_fraction <= 1.0
        assert "idle" in format_occupancy(rows)

    def test_census_matches_independent_probe(self):
        """Regression guard for the Timeline migration: the census must
        report exactly what a hand-rolled sampler measures on a
        duplicate network run under the same derived seed."""
        from repro.engine.parallel import derive_run_seed
        from repro.experiments.occupancy import run_occupancy_census
        from repro.network import Network

        base, load, seed, period = fast_base(), 0.4, 1, 20
        rows = run_occupancy_census(base, load=load, seed=seed,
                                    sample_period=period)

        cfg = base.with_(sim=replace(
            base.sim, seed=derive_run_seed(seed, f"occupancy:{load!r}")))
        net = Network(cfg)
        net.add_uniform_traffic(rate=load)
        topo = net.topology
        probes: dict[str, list] = {}
        for s in range(topo.num_switches):
            for spec in topo.switch_ports(s):
                if spec.link_class in ("endpoint", "local", "global"):
                    ip = net.switches[s].in_ports[spec.port]
                    op = net.switches[s].out_ports[spec.port]
                    probes.setdefault(spec.link_class, []).append(
                        lambda ip=ip, op=op: ip.damq.total_committed
                        + op.out_damq.total_committed
                    )
        samples: dict[str, list[list[int]]] = {
            cls: [[] for _ in ps] for cls, ps in probes.items()
        }

        def sample(cycle):
            for cls, ps in probes.items():
                for i, probe in enumerate(ps):
                    samples[cls][i].append(probe())

        net.sim.add_sampler(period, sample)
        net.sim.run(cfg.sim.warmup_cycles + cfg.sim.measure_cycles)

        for r in rows:
            per_port = samples[r.link_class]
            peaks = [max(vals) for vals in per_port]
            assert r.ports == len(peaks)
            assert r.peak_flits == max(peaks)
            assert r.mean_peak_flits == pytest.approx(
                sum(peaks) / len(peaks))


class TestFatTreeExperiment:
    def test_variants_run(self):
        from repro.experiments.fattree_exp import (
            format_fattree,
            run_fattree_reliability,
        )

        res = run_fattree_reliability(
            fast_base(), loads=(0.25,), variants=("baseline", "stash100")
        )
        for series in res.values():
            offered, accepted, lat = series[0]
            assert accepted == pytest.approx(offered, rel=0.15)
            assert lat > 0
        assert "stash100" in format_fattree(res)


class TestPacedRetransmission:
    def test_pace_delays_recovery(self):
        from dataclasses import replace

        from repro.engine.config import ReliabilityParams, StashParams
        from repro.network import Network
        from tests.conftest import drain_and_check, micro_config

        def recovery_cycles(pace):
            cfg = micro_config(
                stash=StashParams(enabled=True, frac_local=0.5),
                reliability=ReliabilityParams(
                    enabled=True, error_rate=0.0, retransmit_pace=pace
                ),
            )
            net = Network(cfg)
            net.error_rate = 1.0  # corrupt exactly the first delivery
            net.endpoints[0].post_message(3, 4, 0)
            net.sim.run(30)
            net.error_rate = 0.0
            drain_and_check(net, max_cycles=100_000)
            msg = next(iter(net.messages.values()))
            return msg.complete_cycle

        fast = recovery_cycles(pace=0)
        slow = recovery_cycles(pace=400)
        assert slow >= fast + 300  # the pace visibly delays recovery

    def test_paced_retransmits_still_conserve(self):
        from repro.engine.config import ReliabilityParams, StashParams
        from repro.network import Network
        from tests.conftest import drain_and_check, micro_config

        cfg = micro_config(
            stash=StashParams(enabled=True, frac_local=0.5),
            reliability=ReliabilityParams(
                enabled=True, error_rate=0.1, retransmit_pace=150
            ),
        )
        net = Network(cfg)
        net.add_uniform_traffic(rate=0.2, stop=600)
        net.sim.run(600)
        drain_and_check(net, max_cycles=300_000)


class TestRunnerCli:
    def test_table_experiments_via_cli(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_flow_rejection_names_the_limitation(self, capsys):
        """`--engine flow` on a transient experiment must explain *why*
        (steady-state fluid model, no time-stepped mode) and point at
        the fastpath docs, not just refuse."""
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["fig7", "--engine", "flow"])
        err = capsys.readouterr().err
        assert "transients" in err
        assert "time-stepped" in err
        assert "docs/FASTPATH.md" in err
