"""Link-level retransmission: go-back-N unit tests + network integration
with injected link errors (the paper's Section I/II premise)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import LinkParams
from repro.network import Network
from repro.protocol.link import LinkReceiver, LinkSender
from repro.switch.flit import Packet
from tests.conftest import drain_and_check, micro_config


def _flits(n=8):
    return Packet(1, 0, 1, n).flits


class TestLinkParams:
    def test_error_requires_enabled(self):
        with pytest.raises(ValueError):
            LinkParams(error_rate=0.1)

    def test_bounds(self):
        with pytest.raises(ValueError):
            LinkParams(enabled=True, error_rate=1.0)
        with pytest.raises(ValueError):
            LinkParams(enabled=True, ack_interval=0)


class TestGoBackN:
    def _pair(self, error_rate=0.0, ack_interval=1, seed=1):
        params = LinkParams(enabled=True, error_rate=error_rate,
                            ack_interval=ack_interval)
        return LinkSender(params, random.Random(seed)), LinkReceiver(params)

    def test_clean_transfer_acks_and_releases(self):
        tx, rx = self._pair()
        flits = _flits(4)
        released = []
        for i, f in enumerate(flits):
            seq, vc, flit, corrupted = tx.stage_new(2, 3, f)
            assert (seq, vc, flit, corrupted) == (i, 3, f, False)
            accept, control = rx.receive(seq, corrupted)
            assert accept
            for kind, s in control:
                assert kind == "ack"
                released.extend(tx.on_ack(s))
        assert released == [(2, 1)] * 4
        assert tx.retained_flits == 0

    def test_corruption_triggers_nack_and_replay(self):
        tx, rx = self._pair()
        flits = _flits(3)
        wires = [tx.stage_new(0, 0, f) for f in flits]
        # corrupt the first flit on the wire
        seq0, vc0, f0, _ = wires[0]
        accept, control = rx.receive(seq0, True)
        assert not accept
        assert control == [("nack", 0)]
        # the two pipelined flits behind it are discarded silently
        for seq, _, _, _ in wires[1:]:
            accept, control = rx.receive(seq, False)
            assert not accept and control == []
        # sender replays everything from 0
        tx.on_nack(0)
        assert len(tx.replay) == 3
        for expected_seq in range(3):
            seq, vc, flit, corrupted = tx.pop_replay()
            assert seq == expected_seq
            accept, _ = rx.receive(seq, corrupted)
            assert accept
        assert tx.pop_replay() is None
        assert rx.flits_accepted == 3

    def test_corrupted_replay_renacks(self):
        """A replay that is itself corrupted must trigger a fresh NACK,
        otherwise the link wedges."""
        tx, rx = self._pair()
        seq, vc, f, _ = tx.stage_new(0, 0, _flits(1)[0])
        accept, control = rx.receive(seq, True)
        assert control == [("nack", 0)]
        tx.on_nack(0)
        seq, vc, f, _ = tx.pop_replay()
        accept, control = rx.receive(seq, True)  # corrupted again
        assert not accept
        assert control == [("nack", 0)]  # re-requested

    def test_cumulative_ack_interval(self):
        tx, rx = self._pair(ack_interval=4)
        acks = []
        for f in _flits(8):
            seq, _, _, c = tx.stage_new(0, 0, f)
            _, control = rx.receive(seq, c)
            acks.extend(control)
        assert acks == [("ack", 3), ("ack", 7)]
        tx.on_ack(3)
        assert tx.retained_flits == 4

    @given(st.integers(0, 2**31), st.integers(1, 40))
    @settings(max_examples=40)
    def test_every_flit_delivered_exactly_once(self, seed, n):
        """Property: under any corruption pattern, the receiver accepts
        each sequence exactly once and in order."""
        params = LinkParams(enabled=True, error_rate=0.3, ack_interval=2)
        tx = LinkSender(params, random.Random(seed))
        rx = LinkReceiver(params)
        flits = _flits(max(2, n))[: n] if n > 1 else _flits(2)[:1]
        staged = [tx.stage_new(0, 0, f) for f in flits]
        wire = list(staged)
        accepted = []
        budget = 60 * len(flits) + 200
        while wire and budget:
            budget -= 1
            seq, vc, flit, corrupted = wire.pop(0)
            accept, control = rx.receive(seq, corrupted)
            if accept:
                accepted.append(seq)
            for kind, s in control:
                if kind == "ack":
                    tx.on_ack(s)
                else:
                    tx.on_nack(s)
                    # replayed flits go behind what is already in flight
                    replayed = []
                    while True:
                        w = tx.pop_replay()
                        if w is None:
                            break
                        replayed.append(w)
                    wire.extend(replayed)
        assert budget > 0, "link protocol livelocked"
        assert accepted == list(range(len(flits)))


class TestNetworkWithLinkErrors:
    def _net(self, error_rate):
        cfg = micro_config(
            link=LinkParams(enabled=True, error_rate=error_rate,
                            ack_interval=2)
        )
        return Network(cfg)

    def test_clean_protocol_equals_plain_delivery(self):
        net = self._net(0.0)
        net.add_uniform_traffic(rate=0.3, stop=800)
        net.sim.run(800)
        drain_and_check(net, max_cycles=100_000)

    def test_lossy_links_still_deliver_everything(self):
        net = self._net(0.05)
        net.add_uniform_traffic(rate=0.25, stop=800)
        net.sim.run(800)
        drain_and_check(net, max_cycles=300_000)
        replayed = sum(
            op.link_tx.flits_replayed
            for sw in net.switches
            for op in sw.out_ports
            if op.link_tx is not None
        )
        assert replayed > 0, "no link-level retransmissions happened"

    def test_no_packet_duplicated_or_reordered(self):
        net = self._net(0.08)
        seqs: dict[int, list[int]] = {}
        net.on_packet_delivered_hooks.append(
            lambda pkt, c: seqs.setdefault(pkt.msg_id, []).append(pkt.seq)
        )
        for src in range(6):
            net.endpoints[src].post_message((src + 2) % 6, 20, 0)
        drain_and_check(net, max_cycles=300_000)
        for msg_id, order in seqs.items():
            assert sorted(order) == list(range(len(order))), (msg_id, order)

    def test_endpoint_links_unaffected(self):
        net = self._net(0.05)
        sw = net.switches[0]
        # endpoint ports carry no link protocol (short, clean links)
        for spec in net.topology.switch_ports(0):
            if spec.link_class == "endpoint":
                assert sw.in_ports[spec.port].link_rx is None
                assert sw.out_ports[spec.port].link_tx is None
            elif spec.link_class in ("local", "global"):
                assert sw.in_ports[spec.port].link_rx is not None
                assert sw.out_ports[spec.port].link_tx is not None
