"""wakecheck meta-tests: fixture corpus, suppressions, JSON schema, CLI
exit codes, the annotate mode — and the guarantee that ``src/repro``
itself satisfies the wake contract.

Each fixture marks its violating lines with ``# expect: WAKExxx``
comments; the tests derive the expected (rule, file, line) triples from
those markers so fixtures and expectations cannot drift apart.  The
mutation test deletes a real wake call from a copy of the tree and
asserts the analyzer catches the missing pairing.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.wakecheck import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    RULES,
    SCHEMA_VERSION,
    analyze_paths,
    main,
    render_annotation,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "wakecheck_fixtures"
SRC = REPO / "src"

RULE_IDS = frozenset(r.rule_id for r in RULES)

_EXPECT_RE = re.compile(r"#\s*expect:\s*(WAKE\d{3}(?:\s*,\s*WAKE\d{3})*)")

#: every fixture analyzes as its own whole program (file or directory)
VIOLATING_FIXTURES = [
    "unwoken_channel_write.py",
    "unwoken_credit_return.py",
    "cross_module_poke",
    "latch_clear_no_wake.py",
    "stale_cycle_wake.py",
    "unwoken_queue_append.py",
]


def expected_markers(root: Path) -> set[tuple[str, str, int]]:
    """(rule_id, filename, line) triples declared by ``# expect:``."""
    files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
    expected: set[tuple[str, str, int]] = set()
    for path in files:
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            match = _EXPECT_RE.search(text)
            if match:
                for rule_id in match.group(1).split(","):
                    expected.add((rule_id.strip(), path.name, lineno))
    return expected


class TestFixtureCorpus:
    @pytest.mark.parametrize("rel", VIOLATING_FIXTURES)
    def test_fixture_violations_match_markers(self, rel):
        path = FIXTURES / rel
        expected = expected_markers(path)
        assert expected, f"fixture {rel} declares no expectations"
        report = analyze_paths([path])
        actual = {
            (v.rule_id, Path(v.path).name, v.line)
            for v in report.violations
        }
        assert actual == expected
        assert report.exit_code == EXIT_VIOLATIONS

    def test_every_rule_has_fixture_coverage(self):
        covered = set()
        for rel in VIOLATING_FIXTURES:
            covered.update(
                rule for rule, _, _ in expected_markers(FIXTURES / rel)
            )
        assert covered == set(RULE_IDS)

    def test_rule_table_is_well_formed(self):
        ids = [r.rule_id for r in RULES]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        for rule in RULES:
            assert re.fullmatch(r"WAKE\d{3}", rule.rule_id)
            assert rule.name and rule.rationale

    def test_owner_step_write_is_not_flagged(self):
        """latch_clear_no_wake also contains Port.step writing its own
        latch — safe under the kernel's re-arm, and must stay silent."""
        report = analyze_paths([FIXTURES / "latch_clear_no_wake.py"])
        own_step_lines = {
            v.line for v in report.violations if "buffered" in v.message
        }
        assert not own_step_lines
        assert len(report.violations) == 1


class TestSuppressions:
    def test_suppressed_fixture_is_clean(self):
        report = analyze_paths([FIXTURES / "suppressed_ok.py"])
        assert report.violations == []
        assert report.exit_code == EXIT_CLEAN
        assert len(report.suppressions) == 1
        (sup,) = report.suppressions
        assert sup.rule_id == "WAKE001" and sup.reason

    def test_reasonless_suppression_is_reflagged(self, tmp_path):
        source = (FIXTURES / "suppressed_ok.py").read_text()
        source = re.sub(r"ok\([^)]*\)", "ok()", source)
        bad = tmp_path / "reasonless.py"
        bad.write_text(source)
        report = analyze_paths([bad])
        assert report.exit_code == EXIT_VIOLATIONS
        assert any(
            "without a reason" in v.message for v in report.violations
        )


class TestJsonOutput:
    def test_schema(self, capsys):
        code = main(
            [str(FIXTURES / "unwoken_channel_write.py"), "--format", "json"]
        )
        assert code == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["total"] == payload["by_rule"]["WAKE001"] == 1
        assert "Chan" in payload["conduits"]
        assert set(payload["roots"]) == {"Consumer", "Producer"}
        assert "_queue" in payload["wake_relevant"]["Chan"]
        for violation in payload["violations"]:
            assert set(violation) == {"rule", "path", "line", "col", "message"}
            assert violation["rule"] in RULE_IDS
            assert violation["line"] >= 1 and violation["col"] >= 1


class TestAnnotate:
    def test_annotate_creates_and_updates_doc(self, tmp_path, capsys):
        doc = tmp_path / "WAKE_CONTRACT.md"
        fixture = str(FIXTURES / "suppressed_ok.py")
        assert main([fixture, "--annotate", str(doc)]) == EXIT_CLEAN
        capsys.readouterr()
        first = doc.read_text()
        assert "wakecheck:begin" in first and "wakecheck:end" in first
        assert "`Gate`" in first and "`armed`" in first
        # prose outside the markers survives a regeneration
        doc.write_text("# Prose header\n\nkept text\n\n" + first + "\ntrailer\n")
        assert main([fixture, "--annotate", str(doc)]) == EXIT_CLEAN
        capsys.readouterr()
        second = doc.read_text()
        assert second.startswith("# Prose header")
        assert "kept text" in second and "trailer" in second
        assert second.count("wakecheck:begin") == 1

    def test_render_annotation_lists_suppressions(self):
        report = analyze_paths([FIXTURES / "suppressed_ok.py"])
        text = render_annotation(report)
        assert "Active suppressions" in text
        assert "suppressed_ok.py:27" in text


class TestCli:
    def test_exit_clean_on_clean_file(self, capsys):
        assert main([str(FIXTURES / "suppressed_ok.py")]) == EXIT_CLEAN
        capsys.readouterr()

    def test_exit_error_on_missing_path(self, capsys):
        assert main([str(FIXTURES / "nope.py")]) == EXIT_ERROR
        capsys.readouterr()

    def test_exit_error_on_no_paths(self, capsys):
        assert main([]) == EXIT_ERROR
        capsys.readouterr()

    def test_exit_error_on_syntax_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == EXIT_ERROR
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.wakecheck", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_CLEAN
        assert "WAKE001" in proc.stdout


class TestRepoSatisfiesContract:
    def test_src_repro_is_wake_clean(self):
        report = analyze_paths([SRC])
        assert report.files_checked > 50
        rendered = "\n".join(v.render() for v in report.violations)
        assert not report.violations, f"src/repro regressed:\n{rendered}"
        # acceptance: at most 5 justified suppressions repo-wide
        assert len(report.suppressions) <= 5
        for sup in report.suppressions:
            assert sup.reason

    def test_registry_found_the_real_contract(self):
        """The inferred registry must cover the known wake-relevant
        surface of the event kernel (docs/WAKE_CONTRACT.md)."""
        program = analyze_paths([SRC]).program
        assert len(program.roots) >= 4
        assert "Endpoint" in program.roots
        assert any("Switch" in r for r in program.roots)
        assert "Channel" in program.conduits
        assert "_queue" in program.relevant.get("Channel", set())
        assert "sources" in program.relevant.get("Endpoint", set())


class TestMutationStatic:
    def test_deleting_a_wake_call_is_caught(self, tmp_path):
        """Neuter the wake inside Channel.send in a copy of the tree:
        wakecheck must flag the now-unpaired queue append."""
        mutant = tmp_path / "src"
        shutil.copytree(SRC, mutant)
        channel = mutant / "repro" / "engine" / "channel.py"
        text = channel.read_text()
        wake_call = "sim.wake(self._wake_idx, deliver)"
        assert wake_call in text, "Channel.send wake idiom moved; update test"
        channel.write_text(text.replace(wake_call, "pass", 1))
        report = analyze_paths([mutant])
        assert report.exit_code == EXIT_VIOLATIONS
        assert any(
            v.rule_id == "WAKE001"
            and "Channel._queue" in v.message
            and v.path.endswith("channel.py")
            for v in report.violations
        ), "\n".join(v.render() for v in report.violations)
