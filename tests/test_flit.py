"""Packets, flits, messages."""

import pytest

from repro.switch.flit import Message, Packet, PacketKind


def test_flit_head_tail_marks():
    pkt = Packet(1, 0, 1, 4)
    marks = [(f.head, f.tail) for f in pkt.flits]
    assert marks == [(True, False), (False, False), (False, False), (False, True)]


def test_single_flit_packet_is_head_and_tail():
    pkt = Packet(1, 0, 1, 1)
    f = pkt.flits[0]
    assert f.head and f.tail


def test_packet_rejects_empty():
    with pytest.raises(ValueError):
        Packet(1, 0, 1, 0)


def test_latency_requires_delivery():
    pkt = Packet(1, 0, 1, 2, birth_cycle=10)
    with pytest.raises(ValueError):
        _ = pkt.latency
    pkt.inject_cycle = 12
    pkt.eject_cycle = 40
    assert pkt.latency == 28


def test_stash_clone_preserves_payload_identity():
    pkt = Packet(7, 2, 9, 5, msg_id=33, seq=4, birth_cycle=100)
    pkt.retransmissions = 1
    clone = pkt.stash_clone(pid=99)
    assert clone.pid == 99
    assert (clone.src, clone.dst, clone.size) == (2, 9, 5)
    assert (clone.msg_id, clone.seq) == (33, 4)
    assert clone.retransmissions == 2
    assert clone.flits is not pkt.flits


def test_clone_has_fresh_routing_state():
    pkt = Packet(7, 2, 9, 5)
    pkt.nonminimal = True
    pkt.mid_group = 3
    pkt.route_ptr = 4
    clone = pkt.stash_clone(8)
    assert not clone.nonminimal
    assert clone.mid_group == -1
    assert clone.route_ptr == 0


def test_message_delivery_accounting():
    msg = Message(1, 0, 5, size_flits=10, create_cycle=0)
    msg.packets_total = 3
    assert not msg.delivered
    msg.packets_delivered = 3
    assert msg.delivered


def test_message_rejects_empty():
    with pytest.raises(ValueError):
        Message(1, 0, 5, size_flits=0, create_cycle=0)


def test_ack_kind():
    ack = Packet(2, 5, 0, 1, PacketKind.ACK)
    ack.ack_for = 77
    assert ack.kind == PacketKind.ACK
    assert ack.ack_positive  # default positive
