"""Deterministic RNG: reproducibility and stream independence."""

from repro.engine.rng import DeterministicRng


def test_same_seed_same_streams():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.stream("x").random() for _ in range(10)] == [
        b.stream("x").random() for _ in range(10)
    ]


def test_different_labels_differ():
    rng = DeterministicRng(42)
    xs = [rng.stream("x").random() for _ in range(10)]
    ys = [rng.stream("y").random() for _ in range(10)]
    assert xs != ys


def test_different_seeds_differ():
    assert (
        DeterministicRng(1).stream("x").random()
        != DeterministicRng(2).stream("x").random()
    )


def test_stream_is_cached():
    rng = DeterministicRng(7)
    assert rng.stream("a") is rng.stream("a")


def test_stream_order_does_not_matter():
    a = DeterministicRng(5)
    b = DeterministicRng(5)
    a.stream("first")
    ax = a.stream("x").random()
    b.stream("other")
    b.stream("another")
    bx = b.stream("x").random()
    assert ax == bx


def test_numpy_seed_is_32bit_and_stable():
    rng = DeterministicRng(3)
    s1 = rng.numpy_seed("load")
    s2 = DeterministicRng(3).numpy_seed("load")
    assert s1 == s2
    assert 0 <= s1 < 2**32


def test_fork_independence():
    rng = DeterministicRng(9)
    child = rng.fork("worker")
    assert child.stream("x").random() != rng.stream("x").random()
