"""White-box invariants of the switch datapath, driven through small
single-switch networks."""

import pytest

from repro.engine.config import StashParams, SwitchParams
from tests.conftest import drain_and_check, single_switch_net


def _drained_net(stash=False, reliability=False, load=0.4, cycles=800):
    net = single_switch_net(stash=stash, reliability=reliability)
    net.add_uniform_traffic(rate=load, stop=cycles)
    net.sim.run(cycles)
    drain_and_check(net)
    return net


class TestCreditConservation:
    """After a full drain every credit must be back where it started —
    any leak would eventually wedge the switch."""

    def test_row_credits_restored(self):
        net = _drained_net()
        sw = net.switches[0]
        expected = sw.cfg.row_buffer_flits
        for ip in sw.in_ports:
            for col_credits in ip.row_credits:
                assert all(c == expected for c in col_credits), (
                    ip.idx, col_credits
                )

    def test_col_credits_restored(self):
        net = _drained_net()
        sw = net.switches[0]
        expected = sw.cfg.col_buffer_flits
        for row in sw.tiles:
            for tile in row:
                for out_credits in tile.col_credits:
                    assert all(c == expected for c in out_credits)

    def test_damq_space_restored(self):
        net = _drained_net()
        sw = net.switches[0]
        for ip in sw.in_ports:
            assert ip.damq.total_committed == 0
        for op in sw.out_ports:
            # retention releases may lag the last flit by one link RTT
            net.sim.run(op.retention + 2)
        for op in sw.out_ports:
            op.release_retained(net.sim.cycle + 10**6)
            assert op.out_damq.total_committed == 0

    def test_endpoint_mirrors_restored(self):
        net = _drained_net()
        net.sim.run(50)  # let trailing credits fly home
        for ep in net.endpoints:
            assert ep.mirror is not None
            assert ep.mirror.in_flight == 0

    def test_credits_restored_with_stashing(self):
        net = _drained_net(stash=True, reliability=True)
        sw = net.switches[0]
        expected = sw.cfg.row_buffer_flits
        for ip in sw.in_ports:
            for col_credits in ip.row_credits:
                assert all(c == expected for c in col_credits)


class TestLocksReleased:
    def test_all_stream_state_cleared_after_drain(self):
        net = _drained_net(stash=True, reliability=True)
        sw = net.switches[0]
        for ip in sw.in_ports:
            assert all(s is None for s in ip.streams)
            assert ip.s_owner is None
            assert ip.retrieval is None
        for row in sw.tiles:
            for tile in row:
                for slot_streams in tile.streams:
                    assert all(s is None for s in slot_streams)
                for lock in tile.locks:
                    assert all(h is None for h in lock._holders)
        for op in sw.out_ports:
            assert all(s is None for s in op.link_streams)
            assert all(h is None for h in op.link_lock._holders)
            assert all(
                s is None for row in op.col_streams for s in row
            )
            assert op.sdrain_stream is None
            assert not op.stash_staging


class TestBroadcastDuplication:
    def test_copy_shares_flit_objects(self):
        """The multi-drop row bus latches the same wire value twice: the
        stashed copy must reference the original's flit objects, not
        clones (Section III-A: no extra bandwidth, no extra storage for
        a second packet object)."""
        net = single_switch_net(stash=True, reliability=True)
        net.endpoints[0].post_message(1, 4, 0)
        sw = net.switches[0]
        stored = []
        for _ in range(60):  # catch the copy before the ACK deletes it
            net.sim.run(1)
            stored = [
                pkt
                for part in sw.stash_dir.partitions
                for pkt in part._entries.values()
            ]
            if stored:
                break
        assert len(stored) == 1
        delivered_msgs = list(net.messages.values())
        assert stored[0].msg_id == delivered_msgs[0].msg_id
        drain_and_check(net)

    def test_row_bus_one_winner_per_pass(self):
        """An input port launches at most speedup x cycles flits."""
        net = single_switch_net()
        net.endpoints[0].post_message(1, 400, 0)
        net.sim.run(100)
        ip = net.switches[0].in_ports[0]
        assert ip.flits_sent <= int(100 * net.config.switch.speedup) + 1


class TestSpeedupTokens:
    def test_internal_bandwidth_ratio(self):
        """With speedup 1.3, internal stages run 13 passes per 10
        cycles; the schedule is a stateless function of the absolute
        cycle number so skipped idle cycles cannot shift it."""
        net = single_switch_net()
        sw = net.switches[0]
        n = sw._speedup_x10k
        assert n == 13_000
        tokens = [
            (cycle + 1) * n // 10_000 - cycle * n // 10_000
            for cycle in range(10)
        ]
        assert sum(tokens) == 13

    def test_speedup_one_never_doubles(self):
        cfg_kw = dict(
            num_ports=6, rows=2, cols=2, num_vcs=6,
            input_buffer_flits=96, output_buffer_flits=96,
            max_packet_flits=4, speedup=1.0,
        )
        net = single_switch_net(switch=SwitchParams(**cfg_kw))
        net.add_uniform_traffic(rate=0.3, stop=400)
        net.sim.run(400)
        drain_and_check(net)


class TestEcnOccupancySource:
    def test_congestion_state_tracks_normal_partition_only(self):
        net = single_switch_net(stash=True)
        sw = net.switches[0]
        ip = sw.in_ports[0]
        assert not ip.congested
        # fill 60 % of the input DAMQ
        target = int(ip.damq.capacity * 0.6)
        for _ in range(target):
            ip.damq.space.admit(0, 1)
        assert ip.congested
        ip.damq.space.release(0, target)
        assert not ip.congested
