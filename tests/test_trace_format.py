"""Trace file format: round-trip, parse errors, replay of loaded traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.apps import build_app
from repro.trace.mpi import MpiProgram
from repro.trace.replay import run_trace
from repro.trace.trace_format import (
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)
from tests.conftest import single_switch_net


class TestRoundTrip:
    def test_simple_round_trip(self):
        prog = MpiProgram("t", 3)
        prog.add_send(0, 2, 8, tag=4)
        prog.add_send(1, 0, 2, tag=0)
        text = dumps_trace(prog)
        back = loads_trace(text)
        assert back.name == "t"
        assert back.num_ranks == 3
        assert back.ops == prog.ops

    @pytest.mark.parametrize("app", ["MiniFE", "BIGFFT"])
    def test_app_traces_round_trip(self, app):
        prog = build_app(app, 12, size_scale=2, iterations=1)
        back = loads_trace(dumps_trace(prog))
        assert back.ops == prog.ops
        assert back.name == prog.name

    def test_file_round_trip(self, tmp_path):
        prog = build_app("AMR", 8, size_scale=2, iterations=1)
        path = tmp_path / "amr.trace"
        dump_trace(prog, path)
        back = load_trace(path)
        assert back.ops == prog.ops

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5),
                      st.integers(1, 99), st.integers(0, 9)),
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_arbitrary_programs_round_trip(self, sends):
        prog = MpiProgram("fuzz", 6)
        for src, dst, size, tag in sends:
            prog.add_send(src, dst, size, tag)
        assert loads_trace(dumps_trace(prog)).ops == prog.ops


class TestParseErrors:
    def test_missing_ranks_header(self):
        with pytest.raises(ValueError, match="ranks"):
            loads_trace("name x\n")

    def test_op_before_header(self):
        with pytest.raises(ValueError, match="line"):
            loads_trace("r 0 send 1 4 0\nranks 2\n")

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_trace("ranks 2\nr 0 bcast 1 4 0\n")

    def test_malformed_numbers(self):
        with pytest.raises(ValueError):
            loads_trace("ranks 2\nr 0 send one 4 0\n")

    def test_unmatched_trace_rejected_by_default(self):
        text = "ranks 2\nr 0 send 1 4 0\n"
        with pytest.raises(ValueError, match="unmatched"):
            loads_trace(text)
        prog = loads_trace(text, validate=False)  # opt-out for tooling
        assert prog.total_ops == 1

    def test_comments_and_blank_lines_ignored(self):
        prog = loads_trace(
            "# hello\n\nranks 2\n# mid\nr 0 send 1 4 0\nr 1 recv 0 0\n"
        )
        assert prog.total_ops == 2


class TestReplayLoaded:
    def test_loaded_trace_replays(self, tmp_path):
        prog = build_app("MiniFE", 6, size_scale=2, iterations=1)
        path = tmp_path / "minife.trace"
        dump_trace(prog, path)
        net = single_switch_net()
        cycles = run_trace(net, load_trace(path))
        assert cycles > 0
