"""Stash partitions, directory, jobs (the paper's core storage)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stash import StashDirectory, StashJob, StashPartition
from repro.switch.flit import Packet


def _pkt(size=4, pid=1):
    return Packet(pid, 0, 1, size)


class TestStashPartition:
    def test_zero_capacity_port_disabled(self):
        p = StashPartition(port=4, capacity_flits=0)
        assert not p.enabled
        assert not p.can_admit(1)

    def test_capacity_page_aligned(self):
        p = StashPartition(0, 33)
        assert p.capacity == 32

    def test_store_delete_cycle(self):
        p = StashPartition(0, 64)
        pkt = _pkt(6)
        p.commit(pkt.size)
        loc = p.store(pkt)
        assert p.get(loc) is pkt
        assert p.committed_flits == 6  # page-rounded: 6 -> 6? 6 rounds to 6
        p.delete(loc)
        assert p.empty

    def test_commit_rounds_to_pages(self):
        p = StashPartition(0, 64)
        p.commit(5)
        assert p.committed_flits == 6  # 5 flits -> 3 pages

    def test_locations_unique_even_after_delete(self):
        p = StashPartition(0, 64)
        p.commit(2)
        loc1 = p.store(_pkt(2, 1))
        p.delete(loc1)
        p.commit(2)
        loc2 = p.store(_pkt(2, 2))
        assert loc2 != loc1

    def test_retrieve_frees_space(self):
        p = StashPartition(0, 16)
        pkt = _pkt(8)
        p.commit(8)
        loc = p.store(pkt)
        assert not p.can_admit(16)
        got = p.retrieve(loc)
        assert got is pkt
        assert p.can_admit(16)

    def test_overflow_rejected(self):
        p = StashPartition(0, 8)
        p.commit(8)
        with pytest.raises(RuntimeError):
            p.commit(2)

    def test_fifo_order(self):
        p = StashPartition(0, 64)
        pkts = [_pkt(4, pid) for pid in range(3)]
        for pkt in pkts:
            p.commit(4)
            p.push_fifo(pkt)
        assert p.fifo_depth == 3
        assert p.front_fifo() is pkts[0]
        assert [p.pop_fifo() for _ in range(3)] == pkts
        assert p.empty

    def test_peak_tracking(self):
        p = StashPartition(0, 64)
        p.commit(32)
        p._release(32)
        p.commit(8)
        assert p.peak_committed == 32

    def test_occupancy_fraction(self):
        p = StashPartition(0, 64)
        p.commit(16)
        assert p.occupancy_fraction() == pytest.approx(0.25)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 10)), max_size=60
        )
    )
    @settings(max_examples=50)
    def test_space_never_negative_or_over(self, ops):
        p = StashPartition(0, 48)
        live: list[int] = []
        for is_store, size in ops:
            if is_store and p.can_admit(size):
                p.commit(size)
                live.append(p.store(_pkt(size, len(live))))
            elif not is_store and live:
                p.delete(live.pop(0))
            assert 0 <= p.committed_flits <= p.capacity

    def test_store_without_commit_rejected(self):
        # regression: store()/push_fifo() used to accept packets with no
        # matching commit, letting stored data exceed the committed space
        p = StashPartition(0, 64)
        with pytest.raises(RuntimeError, match="without a matching commit"):
            p.store(_pkt(4))
        assert p.empty

    def test_push_fifo_without_commit_rejected(self):
        p = StashPartition(0, 64)
        with pytest.raises(RuntimeError, match="without a matching commit"):
            p.push_fifo(_pkt(4))
        assert p.fifo_depth == 0

    def test_store_beyond_committed_rejected(self):
        p = StashPartition(0, 64)
        p.commit(4)  # room for exactly one 4-flit packet
        p.store(_pkt(4, 1))
        with pytest.raises(RuntimeError, match="without a matching commit"):
            p.store(_pkt(4, 2))

    def test_delete_frees_stored_pages_for_new_commits(self):
        p = StashPartition(0, 64)
        p.commit(4)
        loc = p.store(_pkt(4, 1))
        p.delete(loc)
        p.commit(4)
        p.store(_pkt(4, 2))  # freed pages usable again after delete


class TestStashDirectory:
    def _directory(self):
        # 6 ports, 2 columns of 3: ports 0-2 column 0, ports 3-5 column 1;
        # port 5 (a "global") has no stash
        caps = [32, 32, 16, 32, 16, 0]
        parts = [StashPartition(i, c) for i, c in enumerate(caps)]
        return parts, StashDirectory(parts, cols=2, tile_outputs=3)

    def test_column_membership_excludes_disabled(self):
        _, d = self._directory()
        assert d.ports_in_column(0) == [0, 1, 2]
        assert d.ports_in_column(1) == [3, 4]  # port 5 omitted (paper: a priori)

    def test_column_free_tracks_commits(self):
        parts, d = self._directory()
        assert d.column_free_flits(0) == 80
        parts[1].commit(10)
        assert d.column_free_flits(0) == 70

    def test_utilization(self):
        parts, d = self._directory()
        assert d.utilization() == 0.0
        parts[0].commit(32)
        assert d.utilization() == pytest.approx(32 / 128)

    def test_stash_columns(self):
        parts = [StashPartition(i, 0) for i in range(6)]
        parts[4] = StashPartition(4, 16)
        d = StashDirectory(parts, cols=2, tile_outputs=3)
        assert d.stash_columns() == [1]


class TestStashJob:
    def test_copy_requires_origin(self):
        with pytest.raises(ValueError):
            StashJob("copy", _pkt())

    def test_divert_needs_no_origin(self):
        job = StashJob("divert", _pkt())
        assert job.origin_port == -1

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError):
            StashJob("archive", _pkt())
