"""Fuzz-style determinism smoke: the dynamic counterpart of simlint.

simlint statically forbids the usual reproducibility breakers (global
RNG draws, wall-clock reads, set-order iteration); this test guards the
same contract dynamically by rendering a tiny fig5 point twice
in-process — fresh ``Network`` both times — and asserting the printed
output is byte-identical.  A handful of seeds gives the "fuzz" flavour
without meaningful runtime cost.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout
from dataclasses import replace

import pytest

from repro.engine.config import SimParams
from repro.experiments.fig5 import format_fig5, run_fig5
from tests.conftest import micro_config


def _tiny_base(seed: int):
    return micro_config(
        sim=SimParams(seed=seed, warmup_cycles=200, measure_cycles=600,
                      drain_cycles=8000, sample_period=25)
    )


def _render_fig5_point(seed: int) -> str:
    """Run one (variant, load) fig5 point and capture exactly what the
    runner would print to stdout."""
    base = _tiny_base(seed)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        results = run_fig5(
            base, loads=(0.3,), variants=("baseline", "stash100"), seed=seed
        )
        print(format_fig5(results))
    return buffer.getvalue()


@pytest.mark.parametrize("seed", [3, 11])
def test_fig5_point_stdout_is_byte_identical(seed):
    first = _render_fig5_point(seed)
    second = _render_fig5_point(seed)
    assert first, "fig5 rendered no output"
    assert first == second


def test_distinct_seeds_exercise_distinct_trajectories():
    """Sanity check that the smoke test has teeth: different seeds must
    not collapse onto the same output (which would mask RNG misuse)."""
    assert _render_fig5_point(3) != _render_fig5_point(4)


def test_fig5_point_insensitive_to_unrelated_global_rng_state():
    """Perturbing the process-global `random` module between runs must
    not change results (nothing in the simulator may draw from it)."""
    import random

    first = _render_fig5_point(5)
    random.seed(999)
    random.random()
    second = _render_fig5_point(5)
    assert first == second


def test_fig5_point_runs_are_timed_independently():
    """Repeat under a different warmup split: different windows must
    change the output, proving the capture is not a cached artifact."""
    base_out = _render_fig5_point(3)
    alt = _tiny_base(3)
    alt = micro_config(sim=replace(alt.sim, measure_cycles=900))
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        print(format_fig5(run_fig5(alt, loads=(0.3,),
                                   variants=("baseline",), seed=3)))
    assert buffer.getvalue() != base_out
