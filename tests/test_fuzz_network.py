"""Property-based end-to-end fuzzing: arbitrary message matrices on the
micro dragonfly must always conserve and drain, for every protocol
combination."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.config import (
    EcnParams,
    LinkParams,
    OrderingParams,
    ReliabilityParams,
    StashParams,
)
from repro.network import Network
from tests.conftest import drain_and_check, micro_config


def _build(protocols: int) -> Network:
    """Map a 3-bit selector onto protocol combinations."""
    stash = bool(protocols & 1)
    ecn = bool(protocols & 2)
    link = bool(protocols & 4)
    cfg = micro_config(
        stash=StashParams(enabled=stash, frac_local=0.5),
        reliability=ReliabilityParams(enabled=stash),
        ecn=EcnParams(
            enabled=ecn,
            stash_on_congestion=stash and ecn,
            window_max_flits=256,
            window_min_flits=4,
            recovery_period=4,
        ),
        link=LinkParams(enabled=link, error_rate=0.02 if link else 0.0,
                        ack_interval=2),
    )
    return Network(cfg)


@given(
    protocols=st.integers(0, 7),
    messages=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 24)),
        min_size=1,
        max_size=25,
    ),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_message_matrix_conserves(protocols, messages):
    net = _build(protocols)
    for src, dst, size in messages:
        net.endpoints[src].post_message(dst, size, 0)
    drain_and_check(net, max_cycles=400_000)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_everything_on_with_faults(seed):
    """All protocols + endpoint corruption + reordering, random seeds."""
    from dataclasses import replace

    cfg = micro_config(
        stash=StashParams(enabled=True, frac_local=0.5),
        reliability=ReliabilityParams(enabled=True, error_rate=0.05),
        ordering=OrderingParams(enabled=True, buffer_flits=16),
        link=LinkParams(enabled=True, error_rate=0.02, ack_interval=2),
    )
    cfg = cfg.with_(sim=replace(cfg.sim, seed=seed))
    net = Network(cfg)
    net.add_uniform_traffic(rate=0.25, stop=400)
    net.sim.run(400)
    drain_and_check(net, max_cycles=500_000)
    for sw in net.switches:
        assert all(p.empty for p in sw.stash_dir.partitions)
    for ep in net.endpoints:
        assert ep.reorder is not None and ep.reorder.empty
