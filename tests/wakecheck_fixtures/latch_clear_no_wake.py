"""Fixture: missing wake after a latch clear.

``Port`` latches ``_blocked`` and sleeps on it (the quiescence-latch
idiom).  ``CreditManager`` clears the latch from its own step but never
wakes the port — the port stays asleep with runnable work.

``Port.step`` setting its *own* latch is fine (the kernel re-arms via
``next_active_cycle`` right after the owner's step) and must not flag.
"""

from __future__ import annotations


class Port:
    def __init__(self) -> None:
        self._blocked = False
        self.buffered = 0

    def step(self, cycle: int) -> None:
        if not self._blocked and self.buffered > 0:
            self.buffered -= 1
            self._blocked = True

    def next_active_cycle(self, cycle: int) -> int | None:
        if self._blocked or self.buffered == 0:
            return None
        return cycle + 1


class CreditManager:
    def __init__(self, port: Port) -> None:
        self.port = port

    def apply_credit(self, cycle: int) -> None:
        self.port._blocked = False  # expect: WAKE001

    def step(self, cycle: int) -> None:
        self.apply_credit(cycle)

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1
