"""Fixture module: cross-module poke into another component's
wake-relevant state, with no wake (and no owning method to issue one)."""

from __future__ import annotations

from comp import Comp


def poke(comp: Comp, item: int) -> None:
    comp.pending.append(item)  # expect: WAKE001
