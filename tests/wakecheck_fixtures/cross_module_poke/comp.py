"""Fixture module: a component whose pending queue decides its wake."""

from __future__ import annotations

from collections import deque


class Comp:
    def __init__(self) -> None:
        self.pending: deque = deque()

    def step(self, cycle: int) -> None:
        while self.pending:
            self.pending.popleft()

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1 if self.pending else None
