"""Fixture: unwoken channel write.

``Chan`` is a conduit — constructed into the attribute graphs of two
unrelated component roots — so a grow on its queue always needs a paired
wake.  ``Chan.send`` has none: the consumer can sleep through delivery.
"""

from __future__ import annotations

from collections import deque


class Chan:
    def __init__(self) -> None:
        self._queue: deque = deque()

    def send(self, item: int) -> None:
        self._queue.append(item)  # expect: WAKE001

    @property
    def next_deadline(self) -> int | None:
        return self._queue[0] if self._queue else None


class Producer:
    def __init__(self) -> None:
        self.out: Chan | None = None

    def step(self, cycle: int) -> None:
        if self.out is not None:
            self.out.send(cycle + 1)

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1


class Consumer:
    def __init__(self) -> None:
        self.inp: Chan | None = None

    def step(self, cycle: int) -> None:
        if self.inp is not None and self.inp._queue:
            self.inp._queue.popleft()

    def next_active_cycle(self, cycle: int) -> int | None:
        if self.inp is None:
            return None
        return self.inp.next_deadline


class Wiring:
    """Assembly object (not a component): owns both roots and threads
    one shared channel between them, making ``Chan`` a conduit."""

    def __init__(self) -> None:
        self.producer = Producer()
        self.consumer = Consumer()
        ch = Chan()
        self.producer.out = ch
        self.consumer.inp = ch
