"""Fixture: unwoken credit return.

``Upstream`` sleeps when it has no credits; ``Downstream`` returns a
credit by bumping the counter directly and never wakes it, so the new
sending opportunity is missed.
"""

from __future__ import annotations


class Upstream:
    def __init__(self) -> None:
        self.credits = 0
        self.backlog: list[int] = []

    def step(self, cycle: int) -> None:
        if self.credits > 0 and self.backlog:
            self.credits -= 1
            self.backlog.pop()

    def next_active_cycle(self, cycle: int) -> int | None:
        if self.credits > 0 and self.backlog:
            return cycle + 1
        return None


class Downstream:
    def __init__(self, up: Upstream) -> None:
        self.up = up

    def step(self, cycle: int) -> None:
        self.up.credits += 1  # expect: WAKE001

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1
