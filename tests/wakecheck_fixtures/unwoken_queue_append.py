"""Fixture: unwoken append through a local alias.

``Feeder`` grabs a reference to the sink's queue and appends through the
alias — the analyzer must track the alias back to ``Sink._queue`` and
still demand a wake.
"""

from __future__ import annotations

from collections import deque


class Sink:
    def __init__(self) -> None:
        self._queue: deque = deque()

    def step(self, cycle: int) -> None:
        if self._queue:
            self._queue.popleft()

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1 if self._queue else None


class Feeder:
    def __init__(self, sink: Sink) -> None:
        self.sink = sink

    def deliver(self, item: int) -> None:
        q = self.sink._queue
        q.append(item)  # expect: WAKE001

    def step(self, cycle: int) -> None:
        self.deliver(cycle)

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1
