"""Fixture: wakes scheduled syntactically behind the current cycle.

``Simulator.wake`` raises on a stale cycle at runtime; wakecheck flags
the pattern statically (WAKE002).
"""

from __future__ import annotations


class Retirer:
    def __init__(self, sim, peer_idx: int) -> None:
        self.sim = sim
        self.peer_idx = peer_idx

    def retire(self, cycle: int) -> None:
        self.sim.wake(self.peer_idx, cycle - 2)  # expect: WAKE002

    def requeue(self, cycle: int) -> None:
        self.sim.wake(self.peer_idx, -1)  # expect: WAKE002
