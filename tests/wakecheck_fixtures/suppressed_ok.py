"""Fixture: a justified suppression.

The write would be WAKE001, but the ``# wakecheck: ok(<reason>)``
annotation documents why the wake is guaranteed elsewhere — the file
must analyze clean with exactly one recorded suppression.
"""

from __future__ import annotations


class Gate:
    def __init__(self) -> None:
        self.armed = False

    def step(self, cycle: int) -> None:
        self.armed = False

    def next_active_cycle(self, cycle: int) -> int | None:
        return cycle + 1 if self.armed else None


class Arm:
    def __init__(self, gate: Gate) -> None:
        self.gate = gate

    def fire(self, cycle: int) -> None:
        self.gate.armed = True  # wakecheck: ok(every caller wakes the gate at this cycle)
