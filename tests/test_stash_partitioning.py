"""Stash/normal buffer partitioning must respect physical capacity.

Regression test: the two-packet floor on the normal partitions can
exceed the configured fraction of a small buffer; the stash partition
must be clamped so normal + stash never oversubscribes the port's
physical flit storage (the switch would otherwise simulate memory it
does not have).
"""

from repro.engine.config import StashParams, SwitchParams
from repro.network import Network
from repro.switch.stashing_switch import StashingSwitch
from tests.conftest import micro_config


def _tiny_buffer_net() -> Network:
    # 24 + 24 flits of physical buffering per port, 8-flit packets: the
    # normal partitions are floored at 2 * 8 = 16 flits each, leaving
    # only 16 flits for the stash — far less than the unclamped
    # fraction (7/8 of 48 = 42 flits at endpoint ports).
    cfg = micro_config(
        switch=SwitchParams(
            num_ports=4,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=24,
            output_buffer_flits=24,
            row_buffer_packets=4,
            col_buffer_packets=4,
            max_packet_flits=8,
            speedup=1.3,
            sideband_latency=2,
        ),
        stash=StashParams(enabled=True),
    )
    return Network(cfg)


def test_partitions_never_oversubscribe_port_buffers():
    net = _tiny_buffer_net()
    for sw in net.switches:
        assert isinstance(sw, StashingSwitch)
        physical = (
            sw.cfg.input_buffer_flits + sw.cfg.output_buffer_flits
        )
        for port in range(sw.cfg.num_ports):
            normal = (
                sw._input_normal_capacity(port)
                + sw._output_normal_capacity(port)
            )
            stash = sw._stash_capacity[port]
            assert normal + stash <= physical, (
                sw.switch_id, port, normal, stash, physical
            )


def test_small_buffer_stash_is_clamped_not_fractional():
    net = _tiny_buffer_net()
    sw = net.switches[0]
    endpoint_ports = [
        p for p, spec in enumerate(sw.port_specs)
        if spec.link_class == "endpoint"
    ]
    assert endpoint_ports, "micro topology should expose endpoint ports"
    for port in endpoint_ports:
        # unclamped: int(7/8 * 48) = 42; clamped: 48 - 16 - 16 = 16
        assert sw._stash_capacity[port] == 16


def test_large_buffer_stash_keeps_configured_fraction():
    # with roomy buffers the clamp must not bite: micro_config's default
    # 96 + 96 flits, 4-flit packets, endpoint fraction 7/8
    net = Network(micro_config(stash=StashParams(enabled=True)))
    sw = net.switches[0]
    for port, spec in enumerate(sw.port_specs):
        if spec.link_class != "endpoint":
            continue
        total = sw.cfg.input_buffer_flits + sw.cfg.output_buffer_flits
        assert sw._stash_capacity[port] == int(7 / 8 * total)
