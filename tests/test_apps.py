"""Synthetic DesignForward application kernels (Table II)."""

import pytest

from repro.trace.apps import (
    APP_REGISTRY,
    _grid_2d,
    _grid_3d,
    _neighbors_3d,
    build_app,
)


class TestGrids:
    def test_grid_2d_square(self):
        assert _grid_2d(16) == (4, 4)
        assert _grid_2d(12) == (3, 4)
        assert _grid_2d(7) == (1, 7)

    def test_grid_3d_cubic(self):
        assert sorted(_grid_3d(8)) == [2, 2, 2]
        assert sorted(_grid_3d(12)) == [2, 2, 3]

    def test_grid_volume_preserved(self):
        for n in (6, 42, 64, 100, 97):
            a, b = _grid_2d(n)
            assert a * b == n
            x, y, z = _grid_3d(n)
            assert x * y * z == n

    def test_neighbors_symmetric(self):
        dims = (2, 3, 2)
        n = 12
        for rank in range(n):
            for peer in _neighbors_3d(rank, dims):
                assert rank in _neighbors_3d(peer, dims)

    def test_neighbors_exclude_self(self):
        for rank in range(12):
            assert rank not in _neighbors_3d(rank, (2, 3, 2))

    def test_degenerate_axis_skipped(self):
        # a 1-wide axis has no neighbours along it
        assert sorted(_neighbors_3d(0, (1, 1, 4))) == [1, 3]


class TestApps:
    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    @pytest.mark.parametrize("ranks", [6, 17, 42])
    def test_builds_and_validates(self, name, ranks):
        prog = build_app(name, ranks, size_scale=2, iterations=1)
        assert prog.num_ranks == ranks
        assert prog.total_ops > 0
        prog.validate()  # raises on unmatched send/recv

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            build_app("LINPACK", 8)

    def test_bandwidth_apps_are_heavier(self):
        """The Fig. 6 contrast: BIGFFT/FillBoundary must move more flits
        per rank than the light apps at equal scale."""
        ranks, scale = 42, 4
        volume = {
            name: build_app(name, ranks, scale, 1).total_send_flits
            for name in APP_REGISTRY
        }
        heavy = min(volume["BIGFFT"], volume["FillBoundary"])
        light = max(volume["MultiGrid"], volume["MiniFE"])
        assert heavy > light

    def test_iterations_scale_volume(self):
        one = build_app("MiniFE", 12, 4, iterations=1).total_send_flits
        three = build_app("MiniFE", 12, 4, iterations=3).total_send_flits
        assert three == 3 * one

    def test_registry_descriptions_match_table2(self):
        assert "FFT" in APP_REGISTRY["BIGFFT"].description
        assert "BoxLib" in APP_REGISTRY["FillBoundary"].description
        assert APP_REGISTRY["AMG"].load_class == "light"
        assert len(APP_REGISTRY) == 6  # the six rows of Table II

    def test_deterministic(self):
        a = build_app("AMR", 24, 4, 1)
        b = build_app("AMR", 24, 4, 1)
        assert a.ops == b.ops
