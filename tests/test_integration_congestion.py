"""ECN + congestion stashing, full datapath (paper Section IV-B)."""

import pytest

from repro.engine.config import EcnParams, StashParams
from repro.network import Network
from repro.traffic.generators import BernoulliSource
from repro.traffic.patterns import hotspot, uniform_random
from tests.conftest import drain_and_check, micro_config, single_switch_net


def congestion_net(stash_on: bool, **overrides):
    cfg = micro_config(
        stash=StashParams(enabled=stash_on, frac_local=0.5),
        ecn=EcnParams(
            enabled=True,
            stash_on_congestion=stash_on,
            window_max_flits=256,
            window_min_flits=4,
            recovery_period=4,
        ),
        **overrides,
    )
    return Network(cfg)


class TestEcnMechanics:
    def test_hotspot_triggers_marking_and_cuts(self):
        net = congestion_net(stash_on=False)
        n = net.topology.num_nodes
        # everyone floods node 0
        net.add_source(
            BernoulliSource(rate=1.0, msg_flits=4, pattern=hotspot([0]),
                            stop=1500),
            range(1, n),
        )
        net.sim.run(1500)
        marked = sum(
            ip.packets_marked for sw in net.switches for ip in sw.in_ports
        )
        cuts = sum(ep.ecn.window_cuts for ep in net.endpoints)
        assert marked > 0
        assert cuts > 0
        drain_and_check(net, max_cycles=100_000)

    def test_no_marking_under_light_load(self):
        net = congestion_net(stash_on=False)
        net.add_uniform_traffic(rate=0.1, stop=1000)
        net.sim.run(1000)
        marked = sum(
            ip.packets_marked for sw in net.switches for ip in sw.in_ports
        )
        assert marked == 0

    def test_windows_recover_after_congestion(self):
        net = congestion_net(stash_on=False)
        n = net.topology.num_nodes
        net.add_source(
            BernoulliSource(rate=1.0, msg_flits=4, pattern=hotspot([0]),
                            stop=800),
            range(1, n),
        )
        net.sim.run(800)
        net.drain(100_000)
        net.sim.run(2000)  # idle time: recovery timers run
        for ep in net.endpoints:
            assert ep.ecn.throttled_destinations == 0


class TestCongestionStashing:
    def test_divert_and_retrieve_conserves(self):
        net = congestion_net(stash_on=True)
        n = net.topology.num_nodes
        net.add_source(
            BernoulliSource(rate=1.0, msg_flits=4, pattern=hotspot([0]),
                            stop=1200),
            range(1, n),
        )
        net.add_uniform_traffic(rate=0.2, stop=1200, nodes=[0])
        net.sim.run(1200)
        drain_and_check(net, max_cycles=150_000)
        for sw in net.switches:
            for part in sw.stash_dir.partitions:
                assert part.empty

    def test_diverted_packets_counted(self):
        net = single_switch_net(stash=True, ecn=True,
                                stash_on_congestion=True)
        # oversubscribe node 0 hard from all five other nodes
        for src in range(1, 6):
            for _ in range(6):
                net.endpoints[src].post_message(0, 16, 0)
        net.sim.run(2500)
        drain_and_check(net, max_cycles=100_000)
        diverted = sum(
            ip.packets_diverted
            for sw in net.switches
            for ip in sw.in_ports
        )
        retrieved = sum(
            p.retrieved_total
            for sw in net.switches
            for p in sw.stash_dir.partitions
        )
        assert diverted > 0
        assert retrieved == diverted

    def test_divert_only_for_endpoint_bound_packets(self):
        """Condition 2 of Section IV-B: only packets whose output at this
        switch is an end port are stashed."""
        net = congestion_net(stash_on=True)
        n = net.topology.num_nodes
        net.add_source(
            BernoulliSource(rate=1.0, msg_flits=4, pattern=hotspot([0]),
                            stop=1000),
            range(1, n),
        )
        net.sim.run(1000)
        net.drain(150_000)
        for sw in net.switches:
            for part in sw.stash_dir.partitions:
                # FIFO entries only ever existed on end ports' switches;
                # after drain everything must be gone anyway
                assert part.fifo_depth == 0

    def test_stashed_not_counted_in_ecn_occupancy(self):
        """Section IV-B: stashed packets are excluded from the port's
        congestion calculation — occupancy_fraction reads the normal
        DAMQ only, so committing stash space must not change it."""
        net = single_switch_net(stash=True, ecn=True,
                                stash_on_congestion=True)
        sw = net.switches[0]
        ip = sw.in_ports[1]
        before = ip.damq.occupancy_fraction()
        sw.stash_dir.partitions[1].commit(8)
        assert ip.damq.occupancy_fraction() == before


class TestHoLRelief:
    @pytest.mark.slow
    def test_stashing_reduces_victim_tail(self):
        """The headline of Fig. 7: with stashing, victim packets sharing
        a congested switch see a shorter latency tail."""
        results = {}
        for stash_on in (False, True):
            net = congestion_net(stash_on=stash_on)
            n = net.topology.num_nodes
            hot = n - 1
            aggressors = [n - 2, n - 3]
            victims = [v for v in range(n) if v not in (*aggressors, hot)]
            net.add_source(
                BernoulliSource(rate=1.0, msg_flits=4,
                                pattern=hotspot([hot]), start=500, stop=2500),
                aggressors,
            )
            net.add_uniform_traffic(rate=0.3, nodes=victims)
            net.track_group("victim", victims)
            net.sim.run(400)
            net.open_measurement()
            net.sim.run(3000)
            net.close_measurement()
            results[stash_on] = net.group_latency["victim"].percentile(99)
        assert results[True] <= results[False] * 1.1, results
