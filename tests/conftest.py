"""Shared fixtures: micro-scale configurations for fast integration tests.

``micro_config`` is a 6-node, 6-switch dragonfly (p=1, a=2, h=1) with
short links and small buffers — single-digit milliseconds per thousand
cycles.  ``single_switch_net`` wires N endpoints to one switch, the
fastest way to exercise the full datapath.
"""

from __future__ import annotations

import pytest

from repro.engine.config import (
    DragonflyParams,
    EcnParams,
    NetworkConfig,
    ReliabilityParams,
    SimParams,
    StashParams,
    SwitchParams,
)
from repro.network import Network
from repro.topology.single_switch import SingleSwitchTopology


def micro_config(**overrides) -> NetworkConfig:
    """A 6-node dragonfly that still exercises locals and globals."""
    base = dict(
        switch=SwitchParams(
            num_ports=4,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=96,
            output_buffer_flits=96,
            row_buffer_packets=4,
            col_buffer_packets=4,
            max_packet_flits=4,
            speedup=1.3,
            sideband_latency=2,
        ),
        dragonfly=DragonflyParams(
            p=1,
            a=2,
            h=1,
            latency_endpoint=1,
            latency_local=2,
            latency_global=8,
        ),
        stash=StashParams(frac_local=0.5),
        sim=SimParams(
            seed=7,
            warmup_cycles=300,
            measure_cycles=1500,
            drain_cycles=30000,
            sample_period=25,
        ),
    )
    base.update(overrides)
    return NetworkConfig(**base)


def single_switch_config(num_nodes: int = 6, **overrides) -> NetworkConfig:
    base = dict(
        switch=SwitchParams(
            num_ports=6,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=96,
            output_buffer_flits=96,
            max_packet_flits=4,
            sideband_latency=2,
        ),
        # the dragonfly section is unused with an explicit topology, but
        # must still fit the switch for NetworkConfig validation
        dragonfly=DragonflyParams(
            p=1, a=2, h=1, latency_endpoint=1, latency_local=2,
            latency_global=4,
        ),
        stash=StashParams(frac_local=0.5),
        sim=SimParams(
            seed=11, warmup_cycles=200, measure_cycles=1000, drain_cycles=20000
        ),
    )
    base.update(overrides)
    return NetworkConfig(**base)


def single_switch_net(
    num_nodes: int = 6,
    stash: bool = False,
    reliability: bool = False,
    error_rate: float = 0.0,
    ecn: bool = False,
    stash_on_congestion: bool = False,
    **overrides,
) -> Network:
    cfg = single_switch_config(num_nodes, **overrides)
    if stash:
        cfg = cfg.with_(
            stash=StashParams(enabled=True, frac_local=0.5),
            reliability=ReliabilityParams(
                enabled=reliability, error_rate=error_rate
            ),
        )
    if ecn:
        cfg = cfg.with_(
            ecn=EcnParams(
                enabled=True,
                stash_on_congestion=stash_on_congestion,
                window_max_flits=256,
                window_min_flits=4,
                recovery_period=4,
            )
        )
    topo = SingleSwitchTopology(num_nodes, cfg.switch.num_ports, latency=2)
    return Network(cfg, topology=topo)


@pytest.fixture
def micro_net() -> Network:
    return Network(micro_config())


def drain_and_check(net: Network, max_cycles: int = 60000) -> None:
    """Run the network empty and assert full message conservation."""
    assert net.drain(max_cycles), "network failed to drain"
    posted = sum(ep.messages_posted for ep in net.endpoints)
    delivered = sum(1 for m in net.messages.values() if m.delivered)
    assert delivered == posted, f"{delivered}/{posted} messages delivered"
