"""Statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine.stats import Histogram, LatencyStats, RateMeter, TimeSeries


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.percentile(50))

    def test_basic_moments(self):
        s = LatencyStats()
        for v in (1, 2, 3, 4):
            s.record(v)
        assert s.mean == pytest.approx(2.5)
        assert s.min == 1
        assert s.max == 4

    def test_percentiles_nearest_rank(self):
        s = LatencyStats()
        for v in range(1, 101):
            s.record(v)
        assert s.percentile(50) == 50
        assert s.percentile(90) == 90
        assert s.percentile(100) == 100
        assert s.percentile(0) == 1

    def test_percentile_bounds_checked(self):
        s = LatencyStats()
        s.record(1)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_disabled_drops_samples(self):
        s = LatencyStats()
        s.enabled = False
        s.record(5)
        assert s.count == 0

    def test_inverse_cdf_monotone_decreasing(self):
        s = LatencyStats()
        for v in (1, 1, 2, 5, 10, 10, 40):
            s.record(v)
        xs, fracs = s.inverse_cdf(num_points=50)
        assert fracs[0] <= 1.0
        assert np.all(np.diff(fracs) <= 1e-12)
        assert fracs[-1] == 0.0  # nothing exceeds the max

    def test_inverse_cdf_fraction_semantics(self):
        s = LatencyStats()
        for v in (1, 2, 3, 4):
            s.record(v)
        xs, fracs = s.inverse_cdf(num_points=4)
        # at x = 1 exactly, 3 of 4 samples are strictly greater
        assert fracs[0] == pytest.approx(0.75)

    def test_merged(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(1)
        b.record(3)
        merged = a.merged_with(b)
        assert merged.count == 2
        assert merged.mean == 2

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_percentile_is_a_sample(self, values):
        s = LatencyStats()
        for v in values:
            s.record(v)
        for pct in (0, 25, 50, 90, 99, 100):
            assert s.percentile(pct) in values

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_monotone(self, values, p1, p2):
        s = LatencyStats()
        for v in values:
            s.record(v)
        lo, hi = sorted((p1, p2))
        assert s.percentile(lo) <= s.percentile(hi)


class TestRateMeter:
    def test_counts_only_in_window(self):
        m = RateMeter()
        m.record(5)  # before window: dropped
        m.open_window(100)
        m.record(3)
        m.record(2)
        m.close_window(110)
        m.record(7)  # after window: dropped
        assert m.count == 5
        assert m.rate() == pytest.approx(0.5)

    def test_rate_nan_without_window(self):
        assert math.isnan(RateMeter().rate())

    def test_zero_span_empty_window_is_zero(self):
        # regression: a degenerate window used to divide by zero (inf/NaN)
        m = RateMeter()
        m.open_window(50)
        m.close_window(50)
        assert m.rate() == 0.0

    def test_zero_span_with_events_is_an_error(self):
        m = RateMeter()
        m.open_window(50)
        m.record(3)
        m.close_window(50)
        with pytest.raises(ValueError, match="zero-span"):
            m.rate()


class TestTimeSeries:
    def test_binning(self):
        ts = TimeSeries(period=10)
        ts.record(0, 1.0)
        ts.record(5, 3.0)
        ts.record(15, 10.0)
        t, v = ts.series()
        assert list(t) == [5.0, 15.0]
        assert list(v) == [2.0, 10.0]

    def test_hold_last_fills_gaps(self):
        ts = TimeSeries(period=10, hold_last=True)
        ts.record(5, 4.0)
        ts.record(35, 8.0)
        t, v = ts.series()
        assert list(v) == [4.0, 4.0, 4.0, 8.0]

    def test_no_hold_skips_gaps(self):
        ts = TimeSeries(period=10, hold_last=False)
        ts.record(5, 4.0)
        ts.record(35, 8.0)
        _, v = ts.series()
        assert list(v) == [4.0, 8.0]

    def test_empty(self):
        t, v = TimeSeries(period=10).series()
        assert t.size == 0 and v.size == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            TimeSeries(period=0)


class TestHistogram:
    def test_binning_and_clamping(self):
        h = Histogram(4, 0.0, 4.0)
        for v in (0.5, 1.5, 2.5, 3.5, -1.0, 99.0):
            h.record(v)
        assert h.total == 6
        assert h.counts[0] == 2  # 0.5 and clamped -1.0
        assert h.counts[3] == 2  # 3.5 and clamped 99.0

    def test_normalized_sums_to_one(self):
        h = Histogram(10, 0, 1)
        for v in np.linspace(0, 0.99, 37):
            h.record(v)
        assert h.normalized().sum() == pytest.approx(1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(0, 0, 1)
        with pytest.raises(ValueError):
            Histogram(5, 2, 1)

    def test_nan_samples_dropped_and_counted(self):
        # regression: record(nan) used to crash on int(nan) mid-run; NaN
        # now lands in a dedicated tally instead of any bin
        h = Histogram(4, 0.0, 4.0)
        h.record(math.nan)
        h.record(1.5)
        h.record(float("nan"))
        assert h.total == 1
        assert h.nan_samples == 2
        assert h.counts[1] == 1

    def test_infinities_still_clamp_to_edge_bins(self):
        h = Histogram(4, 0.0, 4.0)
        h.record(math.inf)
        h.record(-math.inf)
        assert h.nan_samples == 0
        assert h.counts[0] == 1 and h.counts[3] == 1
