# SIM009 fixture: foreign writes to wake-relevant state through a
# parameter.  Owner-side writes (through self) stay silent.
from collections import deque


class Port:
    def __init__(self) -> None:
        self._queue: deque = deque()
        self.credits = 0
        self._blocked = False

    def enqueue(self, item) -> None:
        self._queue.append(item)  # owner's own method: fine

    def next_active_cycle(self, cycle):
        return cycle + 1 if self._queue else None


def return_credit(port: Port) -> None:
    port.credits += 1  # expect: SIM009


def unblock(port: Port) -> None:
    port._blocked = False  # expect: SIM009


def stuff(port: Port, item) -> None:
    port._queue.append(item)  # expect: SIM009


class Router:
    def __init__(self) -> None:
        self.staging = []

    def forward(self, port: Port, item) -> None:
        port._queue.append(item)  # expect: SIM009

    def keep_local(self, item) -> None:
        self.staging.append(item)  # self-rooted: fine
