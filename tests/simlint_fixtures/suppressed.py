# Suppression fixture: every violation below carries a directive, so
# this file must lint clean.
# simlint: disable-file=SIM005
import time
import random


def stamp() -> float:
    return time.time()  # simlint: disable=SIM002


def multi(items=[]):  # simlint: disable=SIM006,SIM001
    return random.random()  # simlint: disable=all


def defaulted(base=None):
    base = base or 3  # covered by the file-wide SIM005 directive
    return base
