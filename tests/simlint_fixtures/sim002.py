# SIM002 fixture: wall-clock reads outside the harness whitelist.
import time
from datetime import datetime
from time import perf_counter  # expect: SIM002


def stamp() -> float:
    return time.time()  # expect: SIM002


def tick() -> float:
    return time.perf_counter()  # expect: SIM002


def when() -> object:
    return datetime.now()  # expect: SIM002


def duration(cycles: int, hz: float) -> float:
    # arithmetic on simulated time is fine
    return cycles / hz
