# SIM006 fixture: mutable default argument values.


def listy(items=[]):  # expect: SIM006
    return items


def dicty(table={}):  # expect: SIM006
    return table


def setty(seen=set()):  # expect: SIM006
    return seen


def built(buf=list()):  # expect: SIM006
    return buf


def safe(items=None, count=0, name="x", key=()):
    return items, count, name, key
