# SIM002 whitelist fixture: a module named "parallel" may time runs
# with time.perf_counter, but nothing else.
import time


def timed() -> float:
    return time.perf_counter()  # clean: whitelisted (stem "parallel")


def stamped() -> float:
    return time.time()  # expect: SIM002
