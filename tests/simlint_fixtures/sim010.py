# SIM010 fixture: next_active_cycle must be a pure read — no RNG draws,
# no state mutation.  Local scratch variables stay silent.


class LazyCache:
    def __init__(self, rng) -> None:
        self.rng = rng
        self.pending = []
        self._cached = None

    def step(self, cycle: int) -> None:
        self.pending.clear()

    def next_active_cycle(self, cycle):
        self._cached = cycle  # expect: SIM010
        if self.rng.random() < 0.5:  # expect: SIM010
            return cycle + 1
        self.pending.pop()  # expect: SIM010
        return None


class Jittered:
    def __init__(self, rng) -> None:
        self.rng = rng

    def next_active_cycle(self, cycle):
        return cycle + self.rng.randrange(1, 4)  # expect: SIM010


class Pure:
    def __init__(self) -> None:
        self.backlog = []

    def next_active_cycle(self, cycle):
        nxt = cycle + 1  # local scratch: fine
        return nxt if self.backlog else None
