# SIM001 fixture: module-level random usage (shared global RNG).
# Lines carrying a violation are marked with "# expect: <RULE>"; the
# test derives the expected (rule, line) pairs from these markers.
import random
from random import choice  # expect: SIM001
from random import Random  # clean: the class itself is fine


def draw() -> float:
    return random.random()  # expect: SIM001


def shuffle_in_place(items: list) -> None:
    random.shuffle(items)  # expect: SIM001


def annotated(rng: random.Random) -> int:
    # attribute *reference* without a call is not a draw
    return rng.randrange(4)
