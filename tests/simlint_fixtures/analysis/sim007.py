# SIM007 fixture: float equality in analysis code (lives under a
# directory named "analysis", which puts it in SIM007 scope).


def at_half(x):
    return x == 0.5  # expect: SIM007


def not_zero(x):
    return x != 0.0  # expect: SIM007


def negated(x):
    return x == -1.5  # expect: SIM007


def int_ok(x):
    return x == 1  # clean: integer comparison is exact


def ordering_ok(x):
    return x < 0.5  # clean: inequality, not equality
