# SIM003 fixture: unordered iteration in a hot path (lives under a
# directory named "switch", which puts it in SIM003 scope).


def literal(items):
    for x in {3, 1, 2}:  # expect: SIM003
        items.append(x)


def constructed(items):
    for x in set(items):  # expect: SIM003
        print(x)


def inferred(items):
    pending = set(items)
    for x in pending:  # expect: SIM003
        print(x)


def combined(a, b):
    return [x for x in set(a) | set(b)]  # expect: SIM003


def suffixed(self):
    for p in self.end_port_set:  # expect: SIM003
        print(p)


def ordered(items):
    for x in sorted(set(items)):  # clean: explicit order
        print(x)


def plain(items):
    for x in items:  # clean: not set-typed
        print(x)
