# SIM001/SIM004 exemption fixture: a module named "rng" is the one
# sanctioned home for RNG construction and global-random access.
import random


def derive(seed: int) -> random.Random:
    return random.Random(seed)  # clean: rng home


def tempt() -> float:
    return random.random()  # clean here (and only here)
