# SIM004 fixture: ad-hoc RNG construction outside rng.py.
import random


def make_generator(seed: int) -> random.Random:
    return random.Random(seed * 7919 + 1)  # expect: SIM004


def annotate_only(rng: random.Random) -> random.Random:
    # annotations referencing the class are fine
    return rng
