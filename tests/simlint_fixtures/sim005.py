# SIM005 fixture: falsy-`or` defaulting of None-default parameters.


def pick(rng=None):
    rng = rng or 7  # expect: SIM005
    return rng


def assign_other(base=None):
    cfg = base or {"seed": 1}  # expect: SIM005
    return cfg


def returned(limit=None):
    return limit or 100  # expect: SIM005


def passed_on(rate=None):
    return pick(rate or 3)  # expect: SIM005


def condition(flag=None):
    if flag or True:  # clean: boolean context, not a default
        return 1
    return 0


def non_param(x):
    y = None
    y = y or x  # clean: y is a local, not a parameter
    return y
