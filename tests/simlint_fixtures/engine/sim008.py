# expect: SIM008 -- __all__ without a module docstring
__all__ = ["Meter", "exported"]


def exported():  # expect: SIM008
    return 1


def _helper():  # private: exempt
    return 2


def undotted():  # not exported: exempt
    return 3


class Meter:  # expect: SIM008
    def read(self):  # expect: SIM008
        return 1

    def documented(self):
        """Has a docstring: clean."""
        return 2

    def _internal(self):  # private method: exempt
        return 3

    def __len__(self):  # dunder: exempt
        return 0
