"""Round-robin arbiters and VC stream locks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.switch.arbiters import RoundRobinArbiter, VcStreamLock


class TestRoundRobin:
    def test_rotates_priority(self):
        arb = RoundRobinArbiter(4)
        winners = [arb.pick([0, 1, 2, 3]) for _ in range(8)]
        assert winners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_fairness_over_window(self):
        arb = RoundRobinArbiter(3)
        counts = {0: 0, 1: 0, 2: 0}
        for _ in range(300):
            counts[arb.pick([0, 1, 2])] += 1
        assert all(c == 100 for c in counts.values())

    def test_skips_ineligible(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick([2]) == 2
        assert arb.pick([0, 1]) == 0  # pointer moved past 2 -> wraps to 3, 0

    def test_single_candidate_still_rotates_pointer(self):
        arb = RoundRobinArbiter(3)
        arb.pick([1])
        assert arb.pick([0, 2]) == 2  # pointer at 2 now

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).pick([])

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(
        st.integers(2, 8),
        st.lists(st.lists(st.integers(0, 7), min_size=1, max_size=8), max_size=50),
    )
    @settings(max_examples=50)
    def test_winner_always_eligible(self, n, rounds):
        arb = RoundRobinArbiter(n)
        for eligible in rounds:
            eligible = [e % n for e in eligible]
            assert arb.pick(eligible) in eligible

    @given(st.integers(2, 6), st.integers(1, 200))
    @settings(max_examples=30)
    def test_no_starvation(self, n, iterations):
        """With all requesters always eligible, nobody waits more than
        n-1 grants."""
        arb = RoundRobinArbiter(n)
        last_win = {i: -1 for i in range(n)}
        for t in range(iterations):
            w = arb.pick(list(range(n)))
            last_win[w] = t
        if iterations >= n:
            assert all(t >= iterations - n for t in last_win.values())


class TestVcStreamLock:
    def test_acquire_release(self):
        lock = VcStreamLock(2)
        lock.acquire(0, "a")
        assert not lock.available_to(0, "b")
        assert lock.available_to(0, "a")
        assert lock.available_to(1, "b")  # other VC untouched
        lock.release(0, "a")
        assert lock.available_to(0, "b")

    def test_double_acquire_conflict(self):
        lock = VcStreamLock(1)
        lock.acquire(0, "a")
        with pytest.raises(RuntimeError):
            lock.acquire(0, "b")

    def test_release_by_non_holder_rejected(self):
        lock = VcStreamLock(1)
        lock.acquire(0, "a")
        with pytest.raises(RuntimeError):
            lock.release(0, "b")

    def test_on_flit_single_flit_packet(self):
        lock = VcStreamLock(1)
        lock.on_flit(0, "a", head=True, tail=True)
        assert lock.holder(0) is None

    def test_on_flit_stream(self):
        lock = VcStreamLock(1)
        lock.on_flit(0, "a", head=True, tail=False)
        assert lock.holder(0) == "a"
        lock.on_flit(0, "a", head=False, tail=True)
        assert lock.holder(0) is None
