"""Multi-hop integration on the micro dragonfly (6 switches, 6 nodes)
and the tiny preset (21 switches, 42 nodes)."""

import pytest

from repro.engine.config import StashParams
from repro.network import Network
from tests.conftest import drain_and_check, micro_config


class TestMicroDragonfly:
    def test_all_pairs_delivery(self):
        net = Network(micro_config())
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    net.endpoints[src].post_message(dst, 8, 0)
        drain_and_check(net)

    def test_global_hop_latency_visible(self):
        """Inter-group packets must pay the global channel latency."""
        cfg = micro_config()
        net = Network(cfg)
        net.open_measurement()
        # node 0 (group 0) -> node 5 (group 2): crosses a global link
        net.endpoints[0].post_message(5, 4, 0)
        drain_and_check(net)
        assert net.latency.mean >= 2 * cfg.dragonfly.latency_global * 0 + \
            cfg.dragonfly.latency_global  # at least one global traversal

    def test_conservation_under_load(self):
        net = Network(micro_config())
        net.add_uniform_traffic(rate=0.4, stop=1500)
        net.sim.run(1500)
        drain_and_check(net)

    def test_routing_modes_all_deliver(self):
        for mode in ("min", "val", "par"):
            net = Network(micro_config(), routing_mode=mode)
            net.add_uniform_traffic(rate=0.3, stop=800)
            net.sim.run(800)
            drain_and_check(net)

    def test_determinism_same_seed(self):
        def run():
            net = Network(micro_config())
            net.add_uniform_traffic(rate=0.4, stop=1000)
            net.sim.run(1000)
            net.drain(40000)
            return sorted(m.complete_cycle for m in net.messages.values())

        assert run() == run()

    def test_different_seeds_differ(self):
        from dataclasses import replace

        def run(seed):
            cfg = micro_config()
            cfg = cfg.with_(sim=replace(cfg.sim, seed=seed))
            net = Network(cfg)
            net.add_uniform_traffic(rate=0.4, stop=1000)
            net.sim.run(1000)
            net.drain(40000)
            return sorted(m.complete_cycle for m in net.messages.values())

        assert run(1) != run(2)

    def test_stashing_network_conserves(self):
        cfg = micro_config(stash=StashParams(enabled=True, frac_local=0.5))
        net = Network(cfg)
        net.add_uniform_traffic(rate=0.4, stop=1500)
        net.sim.run(1500)
        drain_and_check(net)


class TestMeasurement:
    def test_windows_bound_stats(self):
        net = Network(micro_config())
        net.add_uniform_traffic(rate=0.3)
        net.sim.run(300)
        net.open_measurement()
        net.sim.run(1000)
        net.close_measurement()
        res = net.result()
        assert res.offered_load == pytest.approx(0.3, rel=0.35)
        assert res.accepted_load == pytest.approx(0.3, rel=0.35)
        assert res.packets_measured > 0
        assert res.avg_latency > 0

    def test_run_standard_end_to_end(self):
        net = Network(micro_config())
        net.add_uniform_traffic(rate=0.25)
        res = net.run_standard()
        assert res.accepted_load == pytest.approx(res.offered_load, rel=0.2)

    def test_group_tracking(self):
        net = Network(micro_config())
        net.track_group("left", {0, 1, 2})
        net.add_uniform_traffic(rate=0.3)
        net.sim.run(200)
        net.open_measurement()
        net.sim.run(1200)
        net.close_measurement()
        left = net.group_latency["left"]
        assert 0 < left.count <= net.latency.count


class TestWiringInvariants:
    def test_mirror_capacity_matches_downstream(self):
        net = Network(micro_config(stash=StashParams(enabled=True,
                                                     frac_local=0.5)))
        topo = net.topology
        for s, sw in enumerate(net.switches):
            for spec in topo.switch_ports(s):
                if spec.link_class in ("local", "global"):
                    _, peer, peer_port = spec.peer
                    mirror = sw.out_ports[spec.port].mirror
                    down = net.switches[peer].in_ports[peer_port].damq
                    assert mirror is not None
                    assert mirror.space.capacity == down.capacity

    def test_endpoint_ports_have_no_mirror(self):
        net = Network(micro_config())
        for s, sw in enumerate(net.switches):
            for spec in net.topology.switch_ports(s):
                if spec.link_class == "endpoint":
                    assert sw.out_ports[spec.port].mirror is None

    def test_retention_scales_with_link_latency(self):
        net = Network(micro_config())
        cfg = micro_config()
        for s, sw in enumerate(net.switches):
            for spec in net.topology.switch_ports(s):
                if spec.link_class == "global":
                    assert sw.out_ports[spec.port].retention == \
                        2 * cfg.dragonfly.latency_global + 4

    def test_router_vc_requirement_enforced(self):
        from repro.engine.config import SwitchParams

        cfg = micro_config(
            switch=SwitchParams(
                num_ports=4, rows=2, cols=2, num_vcs=2,
                input_buffer_flits=96, output_buffer_flits=96,
                max_packet_flits=4,
            )
        )
        with pytest.raises(ValueError, match="VCs"):
            Network(cfg)
