"""Analytic models: Table I, Little's law, metric helpers."""

import math

import pytest

from repro.analysis.littles_law import (
    stash_limited_injection_rate,
    stash_per_endpoint_flits,
)
from repro.analysis.metrics import normalized_runtimes, saturation_load
from repro.analysis.table1 import (
    LinkClassRow,
    buffer_underutilization,
    dragonfly_link_table,
    paper_table1,
)
from repro.engine.config import paper_preset, tiny_preset


class TestTable1:
    def test_paper_total_is_72_percent(self):
        """The headline number of the introduction."""
        total = buffer_underutilization(paper_table1())
        assert total == pytest.approx(0.7225, abs=1e-4)

    def test_rows_match_published_table(self):
        rows = paper_table1()
        assert [r.link_type for r in rows] == [
            "Endpoint", "Intra-group", "Inter-group",
        ]
        assert [r.pct_ports for r in rows] == [25.0, 50.0, 25.0]
        assert [r.underutilized for r in rows] == [0.99, 0.95, 0.0]

    def test_percentages_must_sum_to_100(self):
        rows = [LinkClassRow("x", "1m", 60.0, 0.5)]
        with pytest.raises(ValueError):
            buffer_underutilization(rows)

    def test_simulated_table_for_paper_preset(self):
        cfg = paper_preset()
        rows = dragonfly_link_table(cfg.dragonfly, cfg.switch)
        # inter-group links use all their buffering in the paper preset
        assert rows[2].underutilized == pytest.approx(0.0, abs=0.02)
        # endpoints are heavily underutilized
        assert rows[0].underutilized > 0.9
        total = buffer_underutilization(rows)
        assert 0.5 < total < 0.9

    def test_port_fractions_follow_radix(self):
        cfg = tiny_preset()
        rows = dragonfly_link_table(cfg.dragonfly, cfg.switch)
        assert sum(r.pct_ports for r in rows) == pytest.approx(100.0)


class TestLittlesLaw:
    def test_paper_numbers(self):
        """Section VI-A: ~12 KB/endpoint over a 1.6 us RTT -> 75 %.
        In flits: 1200 flits over 1600 cycles."""
        assert stash_limited_injection_rate(1200, 1600) == pytest.approx(0.75)

    def test_capped_at_link_rate(self):
        assert stash_limited_injection_rate(10_000, 100) == 1.0

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            stash_limited_injection_rate(100, 0)

    def test_per_endpoint_capacity_paper_scale(self):
        cfg = paper_preset()
        from dataclasses import replace

        cfg = cfg.with_(stash=replace(cfg.stash, enabled=True,
                                      capacity_scale=0.25))
        per_ep = stash_per_endpoint_flits(cfg)
        # paper: ~12 KB = 1200 flits per endpoint at 25 % capacity
        assert per_ep == pytest.approx(1187.5, rel=0.01)


class TestMetrics:
    def test_normalized_runtimes(self):
        data = {"app": {"baseline": 100.0, "stash": 103.0}}
        norm = normalized_runtimes(data)
        assert norm["app"]["stash"] == pytest.approx(1.03)
        assert norm["app"]["baseline"] == 1.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_runtimes({"app": {"stash": 1.0}})

    def test_saturation_load(self):
        points = [(0.2, 0.2), (0.5, 0.49), (0.8, 0.62)]
        assert saturation_load(points) == 0.5

    def test_saturation_nan_when_never_efficient(self):
        assert math.isnan(saturation_load([(0.5, 0.1)]))
