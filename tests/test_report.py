"""Network instrumentation reports."""

import pytest

from repro.analysis.report import format_report, network_report
from repro.engine.config import (
    LinkParams,
    ReliabilityParams,
    StashParams,
)
from repro.network import Network
from tests.conftest import drain_and_check, micro_config, single_switch_net


def test_baseline_report_counts_flits():
    net = single_switch_net()
    net.add_uniform_traffic(rate=0.3, stop=400)
    net.sim.run(400)
    drain_and_check(net)
    rep = network_report(net)
    ep = rep["endpoints"]
    assert ep["flits_injected"] > 0
    assert ep["flits_injected"] == rep["switches"]["flits_received"]
    assert rep["conservation"]["in_flight_flits"] == 0
    assert rep["conservation"]["messages_delivered"] == \
        rep["conservation"]["messages_total"]
    assert 0 < ep["injection_rate"] < 1


def test_stash_section_populated():
    net = single_switch_net(stash=True, reliability=True)
    net.add_uniform_traffic(rate=0.3, stop=400)
    net.sim.run(400)
    drain_and_check(net)
    rep = network_report(net)
    assert rep["stash"]["capacity_flits"] > 0
    assert rep["stash"]["stored_total"] > 0
    assert rep["stash"]["stored_total"] == rep["stash"]["deleted_total"]
    assert rep["stash"]["committed_flits"] == 0  # fully drained
    assert rep["stash"]["sideband_messages"] >= 2 * rep["stash"]["stored_total"]


def test_link_section_populated():
    cfg = micro_config(
        link=LinkParams(enabled=True, error_rate=0.05, ack_interval=2)
    )
    net = Network(cfg)
    net.add_uniform_traffic(rate=0.25, stop=600)
    net.sim.run(600)
    drain_and_check(net, max_cycles=300_000)
    rep = network_report(net)
    assert rep["link"]["replayed"] > 0
    assert rep["link"]["nacks"] > 0
    assert rep["link"]["accepted"] > rep["link"]["discarded"]


def test_format_report_renders_sections():
    net = single_switch_net(stash=True, reliability=True)
    net.add_uniform_traffic(rate=0.3, stop=300)
    net.sim.run(300)
    drain_and_check(net)
    text = format_report(network_report(net))
    assert "[endpoints]" in text
    assert "[stash]" in text
    assert "stored_total" in text


def test_empty_sections_omitted():
    net = single_switch_net()
    text = format_report(network_report(net))
    assert "[link]" not in text
    assert "[stash]" not in text


def test_combined_protocols_stress():
    """Everything at once: stashing reliability + endpoint corruption +
    lossy links + ECN.  All recovery machinery must compose."""
    from repro.engine.config import EcnParams

    cfg = micro_config(
        stash=StashParams(enabled=True, frac_local=0.5),
        reliability=ReliabilityParams(enabled=True, error_rate=0.03),
        link=LinkParams(enabled=True, error_rate=0.03, ack_interval=2),
        ecn=EcnParams(enabled=True, window_max_flits=256,
                      window_min_flits=4, recovery_period=4),
    )
    net = Network(cfg)
    net.add_uniform_traffic(rate=0.25, stop=800)
    net.sim.run(800)
    drain_and_check(net, max_cycles=400_000)
    rep = network_report(net)
    assert rep["link"]["replayed"] > 0
    assert rep["stash"]["retransmits_issued"] > 0
    assert rep["endpoints"]["packets_corrupted"] > 0


def test_fmt_float_renders_nan_as_na():
    # regression: never-measured meters report NaN, which used to leak
    # into tables as a bare "nan"
    import math

    from repro.analysis.report import fmt_float

    assert fmt_float(math.nan) == "n/a"
    assert fmt_float(1.5) == "1.5000"
    assert fmt_float(0.25, spec=".2f") == "0.25"


def test_format_report_shows_na_for_unmeasured_rates():
    import math

    report = {
        "cycle": 100,
        "endpoints": {"flits_injected": 10, "injection_rate": math.nan},
        "switches": {},
        "stash": {},
        "ecn": {},
        "link": {},
        "conservation": {},
    }
    text = format_report(report)
    assert "n/a" in text
    assert "nan" not in text
