"""Parallel sweep executor: determinism, retry, and accounting fuzz.

The point functions live at module level so the process pool can pickle
them by reference.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import SimParams
from repro.engine.parallel import (
    RunOutcome,
    RunSpec,
    SweepError,
    Timed,
    derive_run_seed,
    run_specs,
)
from repro.engine.rng import DeterministicRng
from repro.experiments.fig5 import fig5_specs, format_fig5, run_fig5
from repro.switch.damq import VcSpaceAccounting
from tests.conftest import micro_config


# -- module-level point functions (picklable by the pool) ----------------

def _draws(n: int, seed: int) -> tuple[float, ...]:
    rng = DeterministicRng(seed).stream("draws")
    return tuple(rng.random() for _ in range(n))


def _timed_square(x: int, seed: int) -> Timed:
    return Timed(x * x, cycles=1000)


def _fail_until_marker(marker: str, seed: int = 0) -> str:
    """Raise on the first call, succeed once ``marker`` exists."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ValueError("transient failure")
    return "ok"


def _die_until_marker(marker: str, seed: int = 0) -> str:
    """Kill the worker outright on the first call (simulates a crash)."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return "ok"


def _always_fails(seed: int = 0) -> None:
    raise RuntimeError("permanent failure")


def _no_seed_point(x: int) -> int:
    return x + 1


def _draw_specs(seed: int) -> list[RunSpec]:
    return [
        RunSpec(
            key=n,
            fn=_draws,
            args=(n,),
            seed=derive_run_seed(seed, f"draws:{n}"),
        )
        for n in range(1, 7)
    ]


# -- seed derivation ------------------------------------------------------

class TestDeriveRunSeed:
    def test_stable(self):
        assert derive_run_seed(7, "fig5:baseline:0.5") == \
            derive_run_seed(7, "fig5:baseline:0.5")

    def test_distinct_labels(self):
        labels = [f"fig5:baseline:{x!r}" for x in (0.1, 0.3, 0.5, 0.7)]
        seeds = {derive_run_seed(7, lab) for lab in labels}
        assert len(seeds) == len(labels)

    def test_distinct_base_seeds(self):
        assert derive_run_seed(1, "x") != derive_run_seed(2, "x")


# -- executor basics ------------------------------------------------------

class TestRunSpecs:
    def test_serial_order_and_values(self):
        outcomes = run_specs(_draw_specs(3), jobs=1)
        assert [o.key for o in outcomes] == [1, 2, 3, 4, 5, 6]
        for o in outcomes:
            assert o.value == _draws(o.key, o.seed)
            assert o.attempts == 1
            assert o.wall_seconds >= 0.0

    def test_pool_matches_serial(self):
        serial = run_specs(_draw_specs(3), jobs=1)
        pooled = run_specs(_draw_specs(3), jobs=4)
        assert [o.key for o in pooled] == [o.key for o in serial]
        assert [o.value for o in pooled] == [o.value for o in serial]
        assert [o.seed for o in pooled] == [o.seed for o in serial]

    def test_timed_unwrapped_and_cycles_reported(self):
        [o] = run_specs([RunSpec(key="sq", fn=_timed_square, args=(3,),
                                 seed=1)])
        assert o.value == 9
        assert o.cycles == 1000
        assert o.cycles_per_second > 0.0

    def test_cycles_per_second_unknown_is_zero(self):
        o = RunOutcome(key=0, value=None, seed=None, wall_seconds=1.0,
                       cycles=None, attempts=1)
        assert o.cycles_per_second == 0.0

    def test_seed_kwarg_omitted_when_spec_has_none(self):
        [o] = run_specs([RunSpec(key=0, fn=_no_seed_point, args=(4,))])
        assert o.value == 5
        assert o.seed is None

    def test_progress_callback_counts(self):
        calls: list[tuple[int, int]] = []
        run_specs(
            _draw_specs(3),
            jobs=1,
            progress=lambda done, total, outcome: calls.append((done, total)),
        )
        assert calls == [(d, 6) for d in range(1, 7)]

    def test_pool_progress_reaches_total(self):
        calls: list[int] = []
        run_specs(
            _draw_specs(3),
            jobs=2,
            progress=lambda done, total, outcome: calls.append(done),
        )
        assert sorted(calls) == list(range(1, 7))


# -- retry behavior -------------------------------------------------------

class TestRetry:
    def test_transient_exception_retried(self, tmp_path):
        marker = str(tmp_path / "transient")
        spec = RunSpec(key=0, fn=_fail_until_marker, args=(marker,), seed=1)
        [o] = run_specs([spec, _draw_specs(1)[0]], jobs=2)[:1]
        assert o.value == "ok"
        assert o.attempts == 2

    def test_worker_crash_retried(self, tmp_path):
        marker = str(tmp_path / "crash")
        spec = RunSpec(key=0, fn=_die_until_marker, args=(marker,), seed=1)
        [o] = run_specs([spec, _draw_specs(1)[0]], jobs=2)[:1]
        assert o.value == "ok"
        assert o.attempts == 2

    def test_permanent_failure_raises_sweep_error(self):
        spec = RunSpec(key="bad", fn=_always_fails, seed=1)
        with pytest.raises(SweepError, match="'bad'"):
            run_specs([spec, _draw_specs(1)[0]], jobs=2, max_retries=1)


# -- end-to-end determinism (ISSUE: jobs=1 vs jobs=4 identical) -----------

def _tiny_base():
    return micro_config(
        sim=SimParams(
            seed=3,
            warmup_cycles=100,
            measure_cycles=400,
            drain_cycles=5000,
            sample_period=25,
        )
    )


def test_fig5_jobs_invariant():
    """A scaled-down fig5 sweep is byte-identical at jobs=1 and jobs=4."""
    base = _tiny_base()
    kwargs = dict(
        loads=(0.3,), variants=("baseline", "stash100"), seed=9
    )
    serial = run_fig5(base, jobs=1, **kwargs)
    pooled = run_fig5(base, jobs=4, **kwargs)
    assert serial == pooled
    assert format_fig5(serial) == format_fig5(pooled)


def test_fig5_spec_seeds_ignore_sweep_shape():
    """A point's seed depends on its label, not its position in the sweep."""
    base = _tiny_base()
    wide = {s.key: s.seed for s in fig5_specs(base, loads=(0.2, 0.5, 0.8))}
    narrow = {s.key: s.seed for s in fig5_specs(base, loads=(0.5,))}
    assert narrow[("baseline", 0.5)] == wide[("baseline", 0.5)]


# -- VcSpaceAccounting fuzz ----------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    reserve=st.integers(min_value=0, max_value=4),
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # vc
            st.integers(min_value=1, max_value=6),   # flits
            st.booleans(),                           # admit vs release
        ),
        max_size=80,
    ),
)
def test_vc_space_accounting_invariants(reserve, ops):
    """Randomized admit/release never exceeds capacity or goes negative."""
    num_vcs, capacity = 4, 24
    acc = VcSpaceAccounting(num_vcs=num_vcs, capacity=capacity,
                            reserve=reserve)
    for vc, flits, is_admit in ops:
        if is_admit:
            if acc.can_admit(vc, flits):
                acc.admit(vc, flits)
        else:
            take = min(flits, acc.committed[vc])
            if take:
                acc.release(vc, take)
        assert 0 <= acc.total_committed <= capacity
        assert all(c >= 0 for c in acc.committed)
        assert 0 <= acc._shared_used <= acc.shared_capacity
        # shared usage is exactly the overflow past the private reserves
        assert acc._shared_used == sum(
            max(0, c - r) for c, r in zip(acc.committed, acc.reserves)
        )
