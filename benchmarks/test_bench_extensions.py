"""Extension experiments beyond the paper's figures:

* occupancy census — Table I's idle-buffer claim measured under traffic;
* fat-tree reliability — the Section IV-A claim that the design carries
  to other asymmetric topologies.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fattree_exp import run_fattree_reliability
from repro.experiments.occupancy import run_occupancy_census


@pytest.mark.benchmark(group="extensions")
def test_occupancy_census_confirms_table1_dynamically(benchmark, quick_base):
    rows = run_once(benchmark, run_occupancy_census, quick_base, 0.6)
    by_class = {r.link_class: r for r in rows}
    # the structural claim behind Table I: endpoint ports leave far more
    # of their symmetric buffers idle than transit ports, even at peak
    assert by_class["endpoint"].idle_fraction > 0.7
    assert by_class["endpoint"].idle_fraction > by_class["local"].idle_fraction
    # and nothing ever overflows its buffer
    for r in rows:
        assert r.peak_flits <= r.capacity_flits
    benchmark.extra_info["idle_at_peak"] = {
        r.link_class: round(r.idle_fraction, 3) for r in rows
    }


@pytest.mark.benchmark(group="extensions")
def test_fattree_reliability_tracks_baseline(benchmark, quick_base):
    results = run_once(
        benchmark, run_fattree_reliability, quick_base, (0.3, 0.6),
        ("baseline", "stash100", "stash25"),
    )
    base = results["baseline"]
    full = results["stash100"]
    quarter = results["stash25"]
    # full-capacity stashing is performance neutral on the fat-tree too
    for (o1, a1, _), (o2, a2, _) in zip(base, full):
        assert a2 >= a1 * 0.95
    # the capacity restriction is what bites, same as the dragonfly
    assert quarter[-1][1] <= full[-1][1] + 0.01
    benchmark.extra_info["accepted"] = {
        v: [round(a, 3) for _, a, _ in series]
        for v, series in results.items()
    }
