"""Figure 5 — reliability stashing under uniform-random traffic:
(a) latency vs offered load, (b) offered vs accepted throughput.

Paper shape: stash 100 %/50 % track the baseline; 25 % saturates early
(at roughly the Little's-law bound, ~60 % of the baseline's saturation).
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.metrics import saturation_load
from repro.experiments.fig5 import run_fig5

LOADS = (0.2, 0.5, 0.8)


@pytest.mark.benchmark(group="fig5")
def test_fig5_latency_and_throughput(benchmark, quick_base, jobs):
    results = run_once(
        benchmark, run_fig5, quick_base, LOADS,
        ("baseline", "stash100", "stash50", "stash25"),
        jobs=jobs,
    )

    def series(variant):
        return [(p.offered, p.accepted) for p in results[variant]]

    def accepted_at(variant, idx):
        return results[variant][idx].accepted

    # (b) below saturation everyone delivers the offered load
    for variant in results:
        offered, accepted = series(variant)[0]
        assert accepted == pytest.approx(offered, rel=0.1), variant

    # full- and half-capacity stashing track the baseline (paper:
    # "nearly identical performance"; we allow 15 % at the extreme point)
    base_hi = accepted_at("baseline", 2)
    assert accepted_at("stash100", 2) >= 0.85 * base_hi
    assert accepted_at("stash50", 2) >= 0.85 * base_hi
    # mid-load: indistinguishable
    assert accepted_at("stash100", 1) == pytest.approx(
        accepted_at("baseline", 1), rel=0.06
    )

    # 25 % capacity saturates early (paper: 78 % vs 90 %)
    assert accepted_at("stash25", 2) < 0.75 * base_hi

    # (a) latency ordering at high load: restricted capacity queues at
    # the source and latency blows up first
    assert results["stash25"][2].avg_latency > results["baseline"][2].avg_latency

    for variant in results:
        benchmark.extra_info[variant] = {
            "accepted": [round(p.accepted, 3) for p in results[variant]],
            "avg_latency": [round(p.avg_latency, 1) for p in results[variant]],
        }
    benchmark.extra_info["saturation"] = {
        v: saturation_load(series(v)) for v in results
    }
