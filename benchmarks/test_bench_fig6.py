"""Figure 6 — MPI application-trace execution time normalized to the
baseline network.

Paper shape: light traces (AMR, MiniFE, MultiGrid, AMG) are ~1.0 at
every capacity; bandwidth-bound traces (BIGFFT, FillBoundary) degrade
only at 25 % capacity (at most ~2 % at 50/100 %); stashing occasionally
beats baseline through self-pacing.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.metrics import normalized_runtimes
from repro.experiments.fig6 import run_fig6

LIGHT_APPS = ("AMR", "MiniFE", "MultiGrid", "AMG")
HEAVY_APPS = ("BIGFFT", "FillBoundary")


@pytest.mark.benchmark(group="fig6")
def test_fig6_light_apps_unaffected(benchmark, quick_base, jobs):
    runtimes = run_once(
        benchmark, run_fig6, quick_base, LIGHT_APPS,
        ("baseline", "stash100", "stash25"),
        jobs=jobs,
    )
    norm = normalized_runtimes(runtimes)
    for app in LIGHT_APPS:
        # paper: "nearly identical performance to the baseline,
        # including the network with only 25% of available capacity"
        assert norm[app]["stash100"] == pytest.approx(1.0, abs=0.1), norm
        assert norm[app]["stash25"] == pytest.approx(1.0, abs=0.15), norm
    benchmark.extra_info["normalized"] = {
        a: {v: round(x, 3) for v, x in d.items()} for a, d in norm.items()
    }


@pytest.mark.benchmark(group="fig6")
def test_fig6_bandwidth_apps_degrade_only_when_restricted(
    benchmark, quick_base, jobs
):
    runtimes = run_once(
        benchmark, run_fig6, quick_base, HEAVY_APPS,
        ("baseline", "stash100", "stash25"), 6, 1,
        jobs=jobs,
    )
    norm = normalized_runtimes(runtimes)
    for app in HEAVY_APPS:
        # full capacity costs at most a few percent (paper: <= 2 %)
        assert norm[app]["stash100"] <= 1.12, norm
        # restricted capacity hurts the bandwidth-bound traces more than
        # full capacity does
        assert norm[app]["stash25"] >= norm[app]["stash100"] - 0.02, norm
    benchmark.extra_info["normalized"] = {
        a: {v: round(x, 3) for v, x in d.items()} for a, d in norm.items()
    }
