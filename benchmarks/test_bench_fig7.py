"""Figure 7 — network transient response to the onset of congestion:
(a) victim average latency over time, (b) victim latency ICDF.

Paper shape: the ECN baseline's victim suffers during the transient
(long ICDF tail, max latencies far above the no-aggressor reference);
stashing absorbs the transient, keeping the tail close to the reference.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_transient_response(benchmark, full_base):
    results = run_once(
        benchmark, run_fig7, full_base,
        ("baseline", "stash100", "stash50"), True,
    )

    base = results["baseline"]
    stash = results["stash100"]
    ref = results["reference"]

    # the aggressor hurts the baseline's tail relative to the reference
    assert base.p99_latency > 1.1 * ref.p99_latency
    # stashing absorbs the transient: tail far closer to the reference
    assert stash.p99_latency < base.p99_latency
    assert stash.max_latency < base.max_latency
    # paper: "At full capacity, the maximum latency is only about 3x the
    # best case"; allow up to ~6x at this scale
    assert stash.max_latency < 6 * ref.max_latency

    # 7a: the baseline's worst time-bin is worse than stashing's
    assert np.max(base.avg_latency) > np.max(stash.avg_latency)

    for name, res in results.items():
        benchmark.extra_info[name] = {
            "mean": round(res.mean_latency, 1),
            "p99": round(res.p99_latency, 1),
            "max": round(res.max_latency, 1),
        }
