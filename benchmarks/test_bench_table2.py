"""Table II — application trace inventory (synthetic DesignForward
analogues), validated by building every trace at benchmark scale."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tables import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_trace_inventory(benchmark):
    rows = run_once(benchmark, run_table2, 42, 4)

    names = {r["name"] for r in rows}
    assert names == {
        "BIGFFT", "AMG", "MultiGrid", "FillBoundary", "AMR", "MiniFE",
    }
    # bandwidth-bound traces move more data than the light ones (the
    # property Fig. 6's contrast rests on)
    by_name = {r["name"]: r for r in rows}
    heavy = min(by_name["BIGFFT"]["send_flits"],
                by_name["FillBoundary"]["send_flits"])
    light = max(by_name["MultiGrid"]["send_flits"],
                by_name["MiniFE"]["send_flits"])
    assert heavy > light

    for r in rows:
        benchmark.extra_info[r["name"]] = {
            "ops": r["ops"], "flits": r["send_flits"],
        }
