"""Figure 9 — victim 90th-percentile latency vs aggressor burst size.

Paper shape: victim accepted throughput holds at ~40 % everywhere; the
stashing networks outperform the baseline across all burst sizes; the
baseline's tail worsens as burstiness grows (until ECN's steady state
catches very long bursts).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig9 import run_fig9

BURSTS = (4, 16, 64)


@pytest.mark.benchmark(group="fig9")
def test_fig9_burst_sweep(benchmark, quick_base, jobs):
    results = run_once(
        benchmark, run_fig9, quick_base, BURSTS,
        ("baseline", "stash100"), 0.4,
        jobs=jobs,
    )

    base = results["baseline"]
    stash = results["stash100"]

    # stashing outperforms (or matches) the baseline wherever the bursts
    # are large enough to create real transients (>= 16 packets/message
    # at this scale; below that the stash network's smaller normal
    # buffers dominate — a documented scale artifact, see EXPERIMENTS.md)
    for (b1, p90_base, _), (b2, p90_stash, _) in zip(base, stash):
        assert b1 == b2
        if b1 >= 16:
            assert p90_stash <= p90_base * 1.05, (b1, p90_base, p90_stash)

    # burstiness hurts the baseline's tail
    assert base[-1][1] > base[0][1]

    for variant, series in results.items():
        benchmark.extra_info[variant] = {
            "bursts": [b for b, _, _ in series],
            "p90": [round(p, 1) for _, p, _ in series],
            "victim_accepted": [round(a, 3) for _, _, a in series],
        }
