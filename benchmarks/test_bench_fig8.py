"""Figure 8 — stash-buffer usage at a hotspot switch during a
congestion event.

Paper shape: at aggressor onset the offered load shoots up and stash
utilization follows; utilization stays high through the ECN transient
and drains to near zero once ECN converges and the aggressor stops.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig8 import run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_buffer_usage_timeline(benchmark, full_base):
    res = run_once(
        benchmark, run_fig8, full_base, "stash100", 0.4, 0.1, 0.25,
    )

    t = res.time
    util = res.stash_utilization
    load = res.aggressor_load
    assert t.size > 10

    total = full_base.sim.warmup_cycles + full_base.sim.measure_cycles
    onset = full_base.sim.warmup_cycles + int(
        0.1 * (total - full_base.sim.warmup_cycles)
    )
    pre = util[t < onset]
    tail = util[t >= 0.95 * total]

    # before the aggressor: stash essentially idle
    assert pre.max(initial=0.0) < 0.15
    # during the event + backlog drain: the stash absorbs congestion
    assert res.peak_utilization > 0.2
    # once the aggressor's backlog clears: drained back toward idle
    assert tail.size == 0 or tail.min() < 0.5 * res.peak_utilization

    # the aggressor's offered load rises at onset and is throttled later
    assert load[(t >= onset) & (t < onset + 1000)].max() > 2 * max(
        load[t < onset].max(initial=0.01), 0.01
    )

    benchmark.extra_info["peak_utilization"] = round(res.peak_utilization, 3)
    benchmark.extra_info["peak_aggressor_load"] = round(float(load.max()), 2)
