"""Simulator micro-benchmarks: cycles/second of the switch datapath.

Not a paper artifact — these track the harness's own performance so
regressions in the hot loop are visible, and they quantify the cost of
the stashing datapath relative to the baseline switch.
"""

import pytest

from repro.engine.config import ReliabilityParams, StashParams
from repro.network import Network
from repro.topology.single_switch import SingleSwitchTopology

from tests.conftest import single_switch_config

CYCLES = 2000


def _run_switch(stash: bool) -> int:
    cfg = single_switch_config()
    if stash:
        cfg = cfg.with_(
            stash=StashParams(enabled=True, frac_local=0.5),
            reliability=ReliabilityParams(enabled=True),
        )
    topo = SingleSwitchTopology(6, cfg.switch.num_ports, latency=2)
    net = Network(cfg, topology=topo)
    net.add_uniform_traffic(rate=0.5)
    net.sim.run(CYCLES)
    return sum(ep.flits_ejected for ep in net.endpoints)


@pytest.mark.benchmark(group="core")
def test_baseline_switch_throughput(benchmark):
    ejected = benchmark(_run_switch, False)
    assert ejected > 0
    benchmark.extra_info["cycles"] = CYCLES
    benchmark.extra_info["flits_ejected"] = ejected


@pytest.mark.benchmark(group="core")
def test_stashing_switch_throughput(benchmark):
    ejected = benchmark(_run_switch, True)
    assert ejected > 0
    benchmark.extra_info["cycles"] = CYCLES
    benchmark.extra_info["flits_ejected"] = ejected
