"""Ablations: internal speedup (AB1), stash placement (AB2), and the
Little's-law saturation cross-check (A1, paper Section VI-A)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    run_littles_law_check,
    run_placement_ablation,
    run_speedup_ablation,
)


@pytest.mark.benchmark(group="ablation")
def test_ab1_internal_speedup(benchmark, quick_base):
    rows = run_once(
        benchmark, run_speedup_ablation, quick_base, (1.0, 1.3), 0.6,
    )
    by_speedup = {s: (acc, lat) for s, acc, lat in rows}
    # the 1.3x overclock must not be *worse* than 1.0x; the paper adds
    # it to cover the stashing paths' extra internal bandwidth demand
    assert by_speedup[1.3][0] >= by_speedup[1.0][0] * 0.97
    benchmark.extra_info["accepted"] = {
        str(s): round(acc, 3) for s, (acc, _) in by_speedup.items()
    }


@pytest.mark.benchmark(group="ablation")
def test_ab2_stash_placement(benchmark, quick_base):
    res = run_once(
        benchmark, run_placement_ablation, quick_base, 0.6, 0.5,
    )
    # JSQ must not lose to random placement on delivered throughput
    assert res["jsq"]["accepted"] >= res["random"]["accepted"] * 0.95
    benchmark.extra_info["jsq"] = res["jsq"]
    benchmark.extra_info["random"] = res["random"]


@pytest.mark.benchmark(group="ablation")
def test_a1_littles_law_saturation(benchmark, quick_base):
    res = run_once(
        benchmark, run_littles_law_check, quick_base, 0.25, (0.2, 0.7),
    )
    # the paper's check: predicted 75 % vs simulated ~78 % — Little's law
    # "closely resembling the simulation result".  Same here: the bound
    # must track the measured early saturation within ~40 %, and the
    # restriction must actually bind (saturation well below baseline).
    predicted = res["predicted_saturation"]
    simulated = res["simulated_saturation"]
    assert simulated < 0.6
    assert 0.7 <= simulated / max(predicted, 1e-9) <= 1.4
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in res.items()}
    )
