"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures on the
``tiny`` preset (42-node dragonfly) with shortened measurement windows,
records the measured series in ``extra_info`` (visible with
``pytest-benchmark``'s ``--benchmark-verbose`` or in the JSON export),
and asserts the paper's qualitative *shape* — who wins and roughly where
the crossovers fall.  Absolute cycle counts are simulator-scale specific;
EXPERIMENTS.md records the paper-vs-measured comparison.

Run:  pytest benchmarks/ --benchmark-only
Add ``--jobs N`` to fan each sweep's independent points out over N
worker processes (results are bit-identical for any N; see
repro.engine.parallel).
"""

from __future__ import annotations

import pytest

from repro.engine.config import NetworkConfig
from repro.experiments.common import preset_by_name, quicken


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes for experiment sweep points (default: 1)",
    )


@pytest.fixture(scope="session")
def jobs(request: pytest.FixtureRequest) -> int:
    """Sweep-executor worker count, from the --jobs command-line flag."""
    return max(1, int(request.config.getoption("--jobs")))


@pytest.fixture(scope="session")
def quick_base() -> NetworkConfig:
    """Tiny preset with halved windows: the benchmark workhorse."""
    return quicken(preset_by_name("tiny"), 0.5)


@pytest.fixture(scope="session")
def full_base() -> NetworkConfig:
    """Tiny preset at full windows, for the experiments that need the
    complete transient (fig7/fig8)."""
    return preset_by_name("tiny")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
