"""Table I — link asymmetry and port-buffer underutilization."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tables import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_underutilization(benchmark, quick_base):
    result = run_once(benchmark, run_table1, quick_base)

    # the paper's headline: ~72 % of all port buffering is idle
    assert result["paper_total"] == pytest.approx(0.7225, abs=1e-4)
    # and the published per-class rows
    rows = result["paper_rows"]
    assert [r.underutilized for r in rows] == [0.99, 0.95, 0.0]

    # the simulated configuration shows the same structure: the shorter
    # the link class, the more of the symmetric port buffer is idle.
    # (The tiny preset deliberately oversizes buffers relative to its
    # compressed global RTT, so its inter-group row is >0; the paper
    # preset reproduces the published 0 %.)
    sim = result["sim_rows"]
    assert sim[0].underutilized > sim[1].underutilized > sim[2].underutilized

    from repro.analysis.table1 import dragonfly_link_table
    from repro.engine.config import paper_preset

    paper_cfg = paper_preset()
    paper_sim = dragonfly_link_table(paper_cfg.dragonfly, paper_cfg.switch)
    assert paper_sim[2].underutilized == pytest.approx(0.0, abs=0.05)
    assert paper_sim[0].underutilized > 0.9

    benchmark.extra_info["paper_total"] = result["paper_total"]
    benchmark.extra_info["sim_total"] = result["sim_total"]
