"""Flits, packets, and messages.

The simulator models the network at flit granularity (one flit = one
channel-clock transfer, 10 bytes in the paper's configuration).  A
:class:`Packet` owns its flits; flit objects are immutable and shared
between a packet and its stash copy, because the multi-drop row bus
duplicates a flit by latching the *same* wire value into two buffers
(paper Section III-A).

Routing decisions are recomputed per hop and read only at head-flit time;
body and tail flits follow arbiter locks, so mutable per-hop routing state
lives on the packet without racing the tail in upstream switches.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Flit", "Message", "Packet", "PacketKind"]


class PacketKind(IntEnum):
    """Wire-level packet type: payload DATA or single-flit ACK."""

    DATA = 0
    ACK = 1


class Flit:
    """One flit of one packet.  Immutable; identity is (packet, index)."""

    __slots__ = ("pkt", "idx", "head", "tail")

    def __init__(self, pkt: "Packet", idx: int) -> None:
        self.pkt = pkt
        self.idx = idx
        self.head = idx == 0
        self.tail = idx == pkt.size - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marks = ("H" if self.head else "") + ("T" if self.tail else "")
        return f"Flit(p{self.pkt.pid}[{self.idx}]{marks})"


class Packet:
    """A network packet plus its per-hop routing and protocol state."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "kind",
        "msg_id",
        "seq",
        "birth_cycle",
        "inject_cycle",
        "eject_cycle",
        "flits",
        # --- routing state (written at head-flit route compute only) ---
        "vc",
        "out_port",
        "next_vc",
        "route_ptr",
        "nonminimal",
        "mid_group",
        "route_committed",
        # --- protocol state ---
        "ecn",
        "ack_positive",
        "ack_ecn",
        "ack_for",
        # --- stashing state ---
        "is_stash_copy",
        "stash_origin_port",
        "stash_port",
        "final_vc",
        "intended_out_port",
        "retransmissions",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        size: int,
        kind: PacketKind = PacketKind.DATA,
        birth_cycle: int = 0,
        msg_id: int = -1,
        seq: int = 0,
    ) -> None:
        if size < 1:
            raise ValueError("packet must contain at least one flit")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size = size
        self.kind = kind
        self.msg_id = msg_id
        self.seq = seq
        self.birth_cycle = birth_cycle
        self.inject_cycle = -1
        self.eject_cycle = -1
        self.flits = [Flit(self, i) for i in range(size)]

        self.vc = 0
        self.out_port = -1
        self.next_vc = 0
        self.route_ptr = 0
        self.nonminimal = False
        self.mid_group = -1
        self.route_committed = False

        self.ecn = False
        self.ack_positive = True
        self.ack_ecn = False
        self.ack_for = -1

        self.is_stash_copy = False
        self.stash_origin_port = -1
        self.stash_port = -1
        self.final_vc = -1
        self.intended_out_port = -1
        self.retransmissions = 0

    @property
    def head_flit(self) -> Flit:
        """The packet's first flit (carries routing state)."""
        return self.flits[0]

    @property
    def tail_flit(self) -> Flit:
        """The packet's last flit (its arrival completes delivery)."""
        return self.flits[-1]

    @property
    def latency(self) -> int:
        """Network latency: injection of head to ejection of tail."""
        if self.inject_cycle < 0 or self.eject_cycle < 0:
            raise ValueError(f"packet {self.pid} not yet delivered")
        return self.eject_cycle - self.inject_cycle

    def stash_clone(self, pid: int) -> "Packet":
        """A retransmission clone carrying the same payload identity.

        Used when a stashed copy must be re-sent after a negative ACK:
        the clone gets fresh routing/protocol state but keeps src/dst/
        size/message coordinates so the destination sees the same data.
        """
        clone = Packet(
            pid,
            self.src,
            self.dst,
            self.size,
            self.kind,
            birth_cycle=self.birth_cycle,
            msg_id=self.msg_id,
            seq=self.seq,
        )
        clone.retransmissions = self.retransmissions + 1
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.kind == PacketKind.ACK else "DATA"
        return f"Packet({kind} p{self.pid} {self.src}->{self.dst} x{self.size})"


class Message:
    """An application-level message, segmented into packets by the NIC.

    Endpoints transmit messages through InfiniBand-style queue pairs
    (paper Section V): one send queue per destination, per-packet
    round-robin across active queues.
    """

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "size_flits",
        "create_cycle",
        "complete_cycle",
        "packets_total",
        "packets_delivered",
        "tag",
        "on_complete",
    )

    def __init__(
        self,
        msg_id: int,
        src: int,
        dst: int,
        size_flits: int,
        create_cycle: int,
        tag: int = 0,
    ) -> None:
        if size_flits < 1:
            raise ValueError("message must contain at least one flit")
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.size_flits = size_flits
        self.create_cycle = create_cycle
        self.complete_cycle = -1
        self.packets_total = 0  # set by the NIC at segmentation time
        self.packets_delivered = 0
        self.tag = tag
        self.on_complete = None  # callback(msg, cycle), used by trace replay

    @property
    def delivered(self) -> bool:
        """True once every segmented packet has been delivered."""
        return self.packets_total > 0 and self.packets_delivered >= self.packets_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(m{self.msg_id} {self.src}->{self.dst} "
            f"{self.size_flits}f {self.packets_delivered}/{self.packets_total})"
        )
