"""Crossbar allocators.

The paper's tile crossbars use a *separable output-first* allocator (Becker
& Dally) with equal priority for all VCs, including the stashing S and R
VCs (Section V).  Separable output-first means: each crossbar output
round-robins over the (input, VC) pairs requesting it; then each input
round-robins over the outputs that granted it; surviving grants win.
"""

from __future__ import annotations

from repro.switch.arbiters import RoundRobinArbiter

__all__ = ["SeparableOutputFirstAllocator"]


class SeparableOutputFirstAllocator:
    """Matches (input, vc) requests to crossbar outputs, one winner per
    input and per output per invocation."""

    def __init__(self, num_inputs: int, num_vcs: int, num_outputs: int) -> None:
        self.num_inputs = num_inputs
        self.num_vcs = num_vcs
        self.num_outputs = num_outputs
        # stage 1: one arbiter per output over (input, vc) request slots
        self._out_arbiters = [
            RoundRobinArbiter(num_inputs * num_vcs) for _ in range(num_outputs)
        ]
        # stage 2: one arbiter per input over outputs that granted it
        self._in_arbiters = [RoundRobinArbiter(num_outputs) for _ in range(num_inputs)]

    def allocate(
        self, requests: list[tuple[int, int, int]]
    ) -> list[tuple[int, int, int]]:
        """``requests`` is a list of (input, vc, output) triples; returns
        the accepted subset (at most one per input, one per output)."""
        if not requests:
            return []
        num_vcs = self.num_vcs
        if len(requests) == 1:
            # lone request: both stages grant it unopposed; advance the
            # two arbiters exactly as their pick() calls would have
            inp, vc, out = requests[0]
            out_arb = self._out_arbiters[out]
            out_arb._next = (inp * num_vcs + vc + 1) % out_arb.n
            in_arb = self._in_arbiters[inp]
            in_arb._next = (out + 1) % in_arb.n
            return requests
        if len(requests) == 2:
            r1, r2 = requests
            if r1[0] != r2[0] and r1[2] != r2[2]:
                # two requests with distinct inputs and outputs never
                # conflict: each stage grants both, same as pick() would
                for inp, vc, out in requests:
                    out_arb = self._out_arbiters[out]
                    out_arb._next = (inp * num_vcs + vc + 1) % out_arb.n
                    in_arb = self._in_arbiters[inp]
                    in_arb._next = (out + 1) % in_arb.n
                return requests

        # Stage 1: each output grants one (input, vc) — the requester at
        # the smallest cyclic distance from the arbiter's rotating
        # pointer (the inlined equivalent of RoundRobinArbiter.pick;
        # distances are distinct so first-minimum tie-breaking matches).
        out_arbiters = self._out_arbiters
        in_arbiters = self._in_arbiters
        stage1: dict[int, tuple[int, int, int]] = {}  # out -> (dist, inp, vc)
        for inp, vc, out in requests:
            arb = out_arbiters[out]
            d = (inp * num_vcs + vc - arb._next) % arb.n
            cur = stage1.get(out)
            if cur is None or d < cur[0]:
                stage1[out] = (d, inp, vc)

        # Stage 2: each input accepts one grant, same rotating-pick rule.
        stage2: dict[int, tuple[int, int, int]] = {}  # inp -> (dist, vc, out)
        for out, (_d, inp, vc) in stage1.items():
            arb = out_arbiters[out]
            arb._next = (inp * num_vcs + vc + 1) % arb.n
            in_arb = in_arbiters[inp]
            d = (out - in_arb._next) % in_arb.n
            cur = stage2.get(inp)
            if cur is None or d < cur[0]:
                stage2[inp] = (d, vc, out)

        accepted: list[tuple[int, int, int]] = []
        for inp, (_d, vc, out) in stage2.items():
            in_arb = in_arbiters[inp]
            in_arb._next = (out + 1) % in_arb.n
            accepted.append((inp, vc, out))
        return accepted
