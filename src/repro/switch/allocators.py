"""Crossbar allocators.

The paper's tile crossbars use a *separable output-first* allocator (Becker
& Dally) with equal priority for all VCs, including the stashing S and R
VCs (Section V).  Separable output-first means: each crossbar output
round-robins over the (input, VC) pairs requesting it; then each input
round-robins over the outputs that granted it; surviving grants win.
"""

from __future__ import annotations

from repro.switch.arbiters import RoundRobinArbiter

__all__ = ["SeparableOutputFirstAllocator"]


class SeparableOutputFirstAllocator:
    """Matches (input, vc) requests to crossbar outputs, one winner per
    input and per output per invocation."""

    def __init__(self, num_inputs: int, num_vcs: int, num_outputs: int) -> None:
        self.num_inputs = num_inputs
        self.num_vcs = num_vcs
        self.num_outputs = num_outputs
        # stage 1: one arbiter per output over (input, vc) request slots
        self._out_arbiters = [
            RoundRobinArbiter(num_inputs * num_vcs) for _ in range(num_outputs)
        ]
        # stage 2: one arbiter per input over outputs that granted it
        self._in_arbiters = [RoundRobinArbiter(num_outputs) for _ in range(num_inputs)]

    def allocate(
        self, requests: list[tuple[int, int, int]]
    ) -> list[tuple[int, int, int]]:
        """``requests`` is a list of (input, vc, output) triples; returns
        the accepted subset (at most one per input, one per output)."""
        if not requests:
            return []
        num_vcs = self.num_vcs

        by_output: dict[int, list[tuple[int, int]]] = {}
        for inp, vc, out in requests:
            by_output.setdefault(out, []).append((inp, vc))

        # Stage 1: each output grants one (input, vc).
        grants_by_input: dict[int, list[tuple[int, int]]] = {}
        for out, cands in by_output.items():
            slots = [inp * num_vcs + vc for inp, vc in cands]
            winner_slot = self._out_arbiters[out].pick(slots)
            winner_inp, winner_vc = divmod(winner_slot, num_vcs)
            grants_by_input.setdefault(winner_inp, []).append((out, winner_vc))

        # Stage 2: each input accepts one grant.
        accepted: list[tuple[int, int, int]] = []
        for inp, grants in grants_by_input.items():
            outs = [out for out, _vc in grants]
            winner_out = self._in_arbiters[inp].pick(outs)
            winner_vc = next(vc for out, vc in grants if out == winner_out)
            accepted.append((inp, winner_vc, winner_out))
        return accepted
