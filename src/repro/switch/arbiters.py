"""Round-robin arbiters and per-VC packet stream locks.

Arbitration discipline (matching BookSim's tiled-switch model):

* flits of *different* VCs may interleave cycle-by-cycle on any shared
  resource (row bus, tile output, output mux, link);
* flits of the *same* VC on a shared resource must not interleave between
  packets, so resources fed by multiple sources per VC hold a
  :class:`VcStreamLock` from head to tail.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = ["RoundRobinArbiter", "VcStreamLock"]


class RoundRobinArbiter:
    """Rotating-priority pick among integer requester indices in [0, n)."""

    __slots__ = ("n", "_next")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("arbiter needs at least one requester slot")
        self.n = n
        self._next = 0

    def pick(self, eligible: Sequence[int]) -> int:
        """Return the winner among ``eligible`` (non-empty) and rotate."""
        if len(eligible) == 1:
            winner = eligible[0]
        elif not eligible:
            raise ValueError("pick() with no eligible requesters")
        else:
            base = self._next
            n = self.n
            winner = eligible[0]
            best = (winner - base) % n
            for i in eligible[1:]:
                d = (i - base) % n
                if d < best:
                    best = d
                    winner = i
        self._next = (winner + 1) % self.n
        return winner


class VcStreamLock:
    """Per-VC source lock: while a packet streams from one source into a
    shared per-VC queue, no other source may interleave on that VC.

    ``holder(vc)`` is None when the VC is free; ``acquire`` is called when
    a head flit wins, ``release`` when the tail flit passes.
    """

    __slots__ = ("_holders",)

    def __init__(self, num_vcs: int) -> None:
        self._holders: list[Hashable | None] = [None] * num_vcs

    def holder(self, vc: int) -> Hashable | None:
        """The source currently streaming on ``vc``, or None."""
        return self._holders[vc]

    def available_to(self, vc: int, source: Hashable) -> bool:
        """True if ``source`` may send on ``vc`` (free or held by it)."""
        holder = self._holders[vc]
        return holder is None or holder == source

    def acquire(self, vc: int, source: Hashable) -> None:
        """Lock ``vc`` to ``source`` (its packet's head flit won)."""
        holder = self._holders[vc]
        if holder is not None and holder != source:
            raise RuntimeError(f"VC {vc} already locked by {holder!r}")
        self._holders[vc] = source

    def release(self, vc: int, source: Hashable) -> None:
        """Free ``vc`` (the holder's tail flit passed)."""
        if self._holders[vc] != source:
            raise RuntimeError(
                f"VC {vc} released by {source!r} but held by "
                f"{self._holders[vc]!r}"
            )
        self._holders[vc] = None

    def on_flit(self, vc: int, source: Hashable, head: bool, tail: bool) -> None:
        """Acquire on head, release on tail (single-flit packets do both)."""
        if head:
            self.acquire(vc, source)
        if tail:
            self.release(vc, source)
