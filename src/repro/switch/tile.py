"""One tile of the tiled switch: row buffers + I x O crossbar (Figure 2).

Each tile at (row r, column c) receives flits from the I switch inputs of
row r over their multi-drop row buses, buffers them per (input slot, VC),
and arbitrates them through its crossbar onto the O column channels of
column c using a separable output-first allocator with equal priority
across all VCs, including the stashing S and R VCs (paper Section V).

Per-VC packet streams lock a tile output from head to tail (flits of one
VC must not interleave between packets on a column channel), while
different VCs interleave freely cycle by cycle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.stash import StashJob
from repro.switch.allocators import SeparableOutputFirstAllocator
from repro.switch.arbiters import VcStreamLock
from repro.switch.flit import Flit

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.tiled_switch import TiledSwitch

__all__ = ["Tile"]


class Tile:
    """One crossbar tile of the R x C array: per-slot row buffers, a
    separable output-first allocator, and credited column channels down
    to the output ports (paper Section II)."""

    __slots__ = (
        "sw",
        "row",
        "col",
        "num_slots",
        "num_outputs",
        "num_vcs",
        "queues",
        "jobs",
        "streams",
        "locks",
        "col_credits",
        "allocator",
        "flits_switched",
        "flit_count",
    )

    def __init__(self, sw: "TiledSwitch", row: int, col: int) -> None:
        cfg = sw.cfg
        self.sw = sw
        self.row = row
        self.col = col
        self.num_slots = cfg.tile_inputs
        self.num_outputs = cfg.tile_outputs
        self.num_vcs = sw.total_vcs
        # row buffers: per (input slot, vc); capacity is enforced by the
        # feeding input port's credit counters
        self.queues: list[list[deque[Flit]]] = [
            [deque() for _ in range(self.num_vcs)] for _ in range(self.num_slots)
        ]
        # S-path transit metadata parallel to the S queues (one per slot)
        self.jobs: list[deque[StashJob]] = [deque() for _ in range(self.num_slots)]
        # active packet stream per (slot, vc): target tile output
        self.streams: list[list[int | None]] = [
            [None] * self.num_vcs for _ in range(self.num_slots)
        ]
        self.locks = [VcStreamLock(self.num_vcs) for _ in range(self.num_outputs)]
        # credits into the column buffers of this tile's row at each of
        # the column's output ports, per VC
        self.col_credits = [
            [cfg.col_buffer_flits] * self.num_vcs for _ in range(self.num_outputs)
        ]
        self.allocator = SeparableOutputFirstAllocator(
            self.num_slots, self.num_vcs, self.num_outputs
        )
        self.flits_switched = 0
        self.flit_count = 0

    # ------------------------------------------------------------------

    def receive(self, slot: int, vc: int, flit: Flit, job: StashJob | None) -> None:
        """Latch a flit off the row bus into the (slot, vc) row buffer."""
        self.queues[slot][vc].append(flit)
        self.flit_count += 1
        if vc == self.sw.S_VC:
            assert job is not None
            self.jobs[slot].append(job)

    def occupancy(self) -> int:
        """Flits buffered in this tile's row buffers."""
        return self.flit_count

    # ------------------------------------------------------------------

    def crossbar_pass(self) -> None:
        """One internal cycle of crossbar allocation: at most one flit per
        tile input and per tile output advances onto a column channel."""
        if not self.flit_count:
            return
        sw = self.sw
        S_VC, R_VC = sw.S_VC, sw.R_VC
        requests: list[tuple[int, int, int]] = []
        head_targets: dict[tuple[int, int], int] = {}

        for slot in range(self.num_slots):
            slot_queues = self.queues[slot]
            slot_streams = self.streams[slot]
            for vc in range(self.num_vcs):
                q = slot_queues[vc]
                if not q:
                    continue
                target = slot_streams[vc]
                if target is not None:
                    if self.col_credits[target][vc] >= 1:
                        requests.append((slot, vc, target))
                    continue
                flit = q[0]
                if not flit.head:
                    raise AssertionError(
                        f"non-head flit {flit!r} at stream start in tile "
                        f"({self.row},{self.col}) slot {slot} vc {vc}"
                    )
                pkt = flit.pkt
                if vc == S_VC:
                    out = self._pick_stash_output(slot, pkt.size)
                elif vc == R_VC:
                    out = pkt.intended_out_port % self.num_outputs
                    if not self._head_ok(out, vc, slot, pkt.size):
                        out = None
                else:
                    out = pkt.out_port % self.num_outputs
                    if not self._head_ok(out, vc, slot, pkt.size):
                        out = None
                if out is not None:
                    requests.append((slot, vc, out))
                    head_targets[(slot, vc)] = out

        if not requests:
            return
        for slot, vc, out in self.allocator.allocate(requests):
            self._advance(slot, vc, out, is_head=(slot, vc) in head_targets)

    def _head_ok(self, out: int, vc: int, slot: int, size: int) -> bool:
        return (
            self.col_credits[out][vc] >= 1
            and self.locks[out].available_to(vc, slot)
        )

    def _pick_stash_output(self, slot: int, size: int) -> int | None:
        """Join-shortest-queue within the column: the output port whose
        stash partition has the most free space, among ports whose S
        column buffer can take the whole packet (Section III-A)."""
        sw = self.sw
        directory = sw.stash_dir
        assert directory is not None
        S_VC = sw.S_VC
        random_pick = sw.stash_placement == "random"
        eligible: list[int] = []
        best: int | None = None
        best_free = -1
        for port in directory.ports_in_column(self.col):
            out = port % self.num_outputs
            if self.col_credits[out][S_VC] < 1:
                continue
            if not self.locks[out].available_to(S_VC, slot):
                continue
            partition = sw.out_ports[port].partition
            if not partition.can_admit(size):
                continue
            if random_pick:
                eligible.append(out)
            else:
                free = partition.free_flits()
                if free > best_free:
                    best, best_free = out, free
        if random_pick:
            return sw.rng.choice(eligible) if eligible else None
        return best

    def _advance(self, slot: int, vc: int, out: int, is_head: bool) -> None:
        sw = self.sw
        flit = self.queues[slot][vc].popleft()
        self.flit_count -= 1
        pkt = flit.pkt
        job: StashJob | None = None
        if vc == sw.S_VC:
            job = self.jobs[slot].popleft()
        if is_head:
            self.locks[out].acquire(vc, slot)
            self.streams[slot][vc] = out
            if vc == sw.S_VC:
                # reserve partition space now so the S column buffer can
                # always drain into the partition (feed-forward S path)
                port = self.col * self.num_outputs + out
                sw.out_ports[port].partition.commit(pkt.size)
        self.col_credits[out][vc] -= 1
        if flit.tail:
            self.locks[out].release(vc, slot)
            self.streams[slot][vc] = None
        # column channel: point-to-point into this row's column buffer at
        # the output port
        port = self.col * self.num_outputs + out
        sw.out_ports[port].receive_column(self.row, vc, flit, job)
        # row-buffer space freed: return credit to the feeding input port
        sw.in_ports[self.row * self.num_slots + slot].row_credits[self.col][vc] += 1
        self.flits_switched += 1
