"""One tile of the tiled switch: row buffers + I x O crossbar (Figure 2).

Each tile at (row r, column c) receives flits from the I switch inputs of
row r over their multi-drop row buses, buffers them per (input slot, VC),
and arbitrates them through its crossbar onto the O column channels of
column c using a separable output-first allocator with equal priority
across all VCs, including the stashing S and R VCs (paper Section V).

Per-VC packet streams lock a tile output from head to tail (flits of one
VC must not interleave between packets on a column channel), while
different VCs interleave freely cycle by cycle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.stash import StashJob
from repro.switch.allocators import SeparableOutputFirstAllocator
from repro.switch.arbiters import VcStreamLock
from repro.switch.flit import Flit

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.tiled_switch import TiledSwitch

__all__ = ["Tile"]


class Tile:
    """One crossbar tile of the R x C array: per-slot row buffers, a
    separable output-first allocator, and credited column channels down
    to the output ports (paper Section II)."""

    __slots__ = (
        "sw",
        "row",
        "col",
        "num_slots",
        "num_outputs",
        "num_vcs",
        "queues",
        "jobs",
        "streams",
        "locks",
        "col_credits",
        "allocator",
        "flits_switched",
        "flit_count",
        "occ",
        "blocked",
    )

    def __init__(self, sw: "TiledSwitch", row: int, col: int) -> None:
        cfg = sw.cfg
        self.sw = sw
        self.row = row
        self.col = col
        self.num_slots = cfg.tile_inputs
        self.num_outputs = cfg.tile_outputs
        self.num_vcs = sw.total_vcs
        # row buffers: per (input slot, vc); capacity is enforced by the
        # feeding input port's credit counters
        self.queues: list[list[deque[Flit]]] = [
            [deque() for _ in range(self.num_vcs)] for _ in range(self.num_slots)
        ]
        # per-slot VC occupancy bitmask (bit vc set iff queues[slot][vc]
        # non-empty); the crossbar request scan iterates set bits only
        self.occ = [0] * self.num_slots
        # S-path transit metadata parallel to the S queues (one per slot)
        self.jobs: list[deque[StashJob]] = [deque() for _ in range(self.num_slots)]
        # active packet stream per (slot, vc): target tile output
        self.streams: list[list[int | None]] = [
            [None] * self.num_vcs for _ in range(self.num_slots)
        ]
        self.locks = [VcStreamLock(self.num_vcs) for _ in range(self.num_outputs)]
        # credits into the column buffers of this tile's row at each of
        # the column's output ports, per VC
        self.col_credits = [
            [cfg.col_buffer_flits] * self.num_vcs for _ in range(self.num_outputs)
        ]
        self.allocator = SeparableOutputFirstAllocator(
            self.num_slots, self.num_vcs, self.num_outputs
        )
        self.flits_switched = 0
        self.flit_count = 0
        # quiescence latch (docs/PERFORMANCE.md): True after a crossbar
        # scan proved no buffered flit can advance; cleared by new
        # flits and column-credit returns, so a skipped pass is a
        # provable no-op
        self.blocked = False

    # ------------------------------------------------------------------

    def receive(self, slot: int, vc: int, flit: Flit, job: StashJob | None) -> None:
        """Latch a flit off the row bus into the (slot, vc) row buffer."""
        self.queues[slot][vc].append(flit)
        self.occ[slot] |= 1 << vc
        self.flit_count += 1
        self.blocked = False
        if vc == self.sw.S_VC:
            assert job is not None
            self.jobs[slot].append(job)

    def occupancy(self) -> int:
        """Flits buffered in this tile's row buffers."""
        return self.flit_count

    # ------------------------------------------------------------------

    def crossbar_pass(self) -> None:
        """One internal cycle of crossbar allocation: at most one flit per
        tile input and per tile output advances onto a column channel."""
        if not self.flit_count:
            return
        sw = self.sw
        S_VC, R_VC = sw.S_VC, sw.R_VC
        requests: list[tuple[int, int, int]] = []
        head_targets: dict[tuple[int, int], int] = {}
        s_deferred = False

        occ = self.occ
        all_queues = self.queues
        all_streams = self.streams
        col_credits = self.col_credits
        locks = self.locks
        num_outputs = self.num_outputs
        for slot in range(self.num_slots):
            mask = occ[slot]
            if not mask:
                continue
            slot_queues = all_queues[slot]
            slot_streams = all_streams[slot]
            while mask:  # occupied VCs in ascending order
                vc = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                target = slot_streams[vc]
                if target is not None:
                    if col_credits[target][vc] >= 1:
                        requests.append((slot, vc, target))
                    continue
                flit = slot_queues[vc][0]
                if not flit.head:
                    raise AssertionError(
                        f"non-head flit {flit!r} at stream start in tile "
                        f"({self.row},{self.col}) slot {slot} vc {vc}"
                    )
                pkt = flit.pkt
                if vc == S_VC:
                    out = self._pick_stash_output(slot, pkt.size)
                    if out is None:
                        # stash picks depend on partition free space,
                        # which has no unblock hook here: never latch
                        # blocked while an S head is waiting
                        s_deferred = True
                else:
                    if vc == R_VC:
                        out = pkt.intended_out_port % num_outputs
                    else:
                        out = pkt.out_port % num_outputs
                    # inline _head_ok
                    if col_credits[out][vc] < 1 or not locks[
                        out
                    ].available_to(vc, slot):
                        out = None
                if out is not None:
                    requests.append((slot, vc, out))
                    head_targets[(slot, vc)] = out

        if not requests:
            if not s_deferred:
                self.blocked = True
            return
        # winners advance: pop the row buffer, manage the stream locks,
        # and latch directly into the output port's column buffer (the
        # former _advance/receive_column pair, inlined for the hot loop)
        out_ports = sw.out_ports
        in_ports = sw.in_ports
        jobs = self.jobs
        row = self.row
        col = self.col
        in_base = row * self.num_slots
        col_base = col * num_outputs
        n_adv = 0
        allocator = self.allocator
        if len(requests) == 1:
            # lone request: both allocator stages grant it unopposed;
            # advance the two arbiters exactly as allocate() would have
            inp_r, vc_r, out_r = requests[0]
            arb = allocator._out_arbiters[out_r]
            arb._next = (inp_r * self.num_vcs + vc_r + 1) % arb.n
            arb = allocator._in_arbiters[inp_r]
            arb._next = (out_r + 1) % arb.n
            accepted = requests
        else:
            accepted = allocator.allocate(requests)
        for slot, vc, out in accepted:
            q = all_queues[slot][vc]
            flit = q.popleft()
            if not q:
                occ[slot] &= ~(1 << vc)
            job = jobs[slot].popleft() if vc == S_VC else None
            op = out_ports[col_base + out]
            if (slot, vc) in head_targets:
                locks[out].acquire(vc, slot)
                all_streams[slot][vc] = out
                if vc == S_VC:
                    # reserve partition space now so the S column buffer
                    # can always drain into the partition (feed-forward
                    # S path)
                    op.partition.commit(flit.pkt.size)
            col_credits[out][vc] -= 1
            if flit.tail:
                locks[out].release(vc, slot)
                all_streams[slot][vc] = None
            op.col_buffers[row][vc].append(flit)
            op.col_occ[row] |= 1 << vc
            op._mux_blocked = False
            if vc == S_VC:
                op.col_jobs[row].append(job)
                op.col_flits_s += 1
            else:
                op.col_flits += 1
            # row-buffer space freed: credit the feeding input port
            in_ports[in_base + slot].row_credits[col][vc] += 1
            n_adv += 1
        self.flit_count -= n_adv
        self.flits_switched += n_adv

    def _pick_stash_output(self, slot: int, size: int) -> int | None:
        """Join-shortest-queue within the column: the output port whose
        stash partition has the most free space, among ports whose S
        column buffer can take the whole packet (Section III-A)."""
        sw = self.sw
        directory = sw.stash_dir
        assert directory is not None
        S_VC = sw.S_VC
        random_pick = sw.stash_placement == "random"
        eligible: list[int] = []
        best: int | None = None
        best_free = -1
        for port in directory.ports_in_column(self.col):
            out = port % self.num_outputs
            if self.col_credits[out][S_VC] < 1:
                continue
            if not self.locks[out].available_to(S_VC, slot):
                continue
            partition = sw.out_ports[port].partition
            if not partition.can_admit(size):
                continue
            if random_pick:
                eligible.append(out)
            else:
                free = partition.free_flits()
                if free > best_free:
                    best, best_free = out, free
        if random_pick:
            return sw.rng.choice(eligible) if eligible else None
        return best

