"""Switch input and output ports.

InputPort: the per-port DAMQ, route computation at head-of-VC, row-bus
arbitration (including the multi-drop duplication used by reliability
stashing, the congestion-stash diversion, and R-VC retrieval from the
port's stash partition), and credit return to the upstream sender.

OutputPort: the per-(row, VC) column buffers, the R-to-1 output
multiplexer (which re-files R-VC flits into their original output VC and
terminates S-VC flits in the stash partition), the output DAMQ with
link-level-retransmission retention, and link egress with credit-based
flow control toward the downstream input buffer.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.stash import StashJob, StashPartition
from repro.engine.channel import Channel, CreditChannel
from repro.obs.events import EventTrace
from repro.switch.arbiters import RoundRobinArbiter, VcStreamLock
from repro.switch.damq import Damq, DamqMirror
from repro.switch.flit import Flit, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocol.link import LinkReceiver, LinkSender
    from repro.switch.tiled_switch import TiledSwitch

__all__ = ["InputPort", "OutputPort"]

#: plan tags used by the row-bus stage (retrieval has its own path)
_NORMAL, _DUP, _DIVERT = 0, 1, 2


class InputPort:
    """One switch input port: link ingress, the normal DAMQ partition,
    ECN marking / stash diversion decisions at the route stage, and the
    row bus feeding this port's tile row (paper Sections II-III)."""

    __slots__ = (
        "sw",
        "idx",
        "row",
        "slot",
        "is_end_port",
        "damq",
        "flit_in",
        "credit_out",
        "link_rx",
        "row_credits",
        "head_route",
        "streams",
        "s_owner",
        "rb_arbiter",
        "_plans",
        "partition",
        "retrieval_queue",
        "retrieval",
        "obs",
        "flits_received",
        "flits_sent",
        "packets_marked",
        "packets_diverted",
        "copies_dispatched",
        "stall_no_stash",
    )

    def __init__(
        self,
        sw: "TiledSwitch",
        idx: int,
        normal_capacity: int,
        reserves: "int | list[int]" = 0,
    ) -> None:
        cfg = sw.cfg
        self.sw = sw
        self.idx = idx
        self.row = idx // cfg.tile_inputs
        self.slot = idx % cfg.tile_inputs
        self.is_end_port = idx in sw.end_port_set
        self.damq = Damq(sw.total_vcs, normal_capacity, reserve=reserves)
        self.flit_in: Channel | None = None
        self.credit_out: CreditChannel | None = None
        # link-level retransmission receiver (switch-to-switch links
        # only, when LinkParams.enabled); see repro.protocol.link
        self.link_rx: LinkReceiver | None = None
        self.row_credits = [
            [cfg.row_buffer_flits] * sw.total_vcs for _ in range(cfg.cols)
        ]
        # route decision for the packet currently at the front of each VC
        self.head_route: list[tuple[int, int] | None] = [None] * sw.total_vcs
        # active stream per VC: (plan, normal_col, stash_col, job)
        self.streams: list[tuple[int, int, int, StashJob | None] | None] = [
            None
        ] * sw.total_vcs
        # the storage VC is one wormhole stream per input: at most one
        # packet (copy, diversion, or retrieval re-copy) may occupy the
        # S path from this slot at a time (owner: vc index, or -2 for
        # the retrieval path)
        self.s_owner: int | None = None
        # one arbitration slot per VC plus one for the retrieval path
        self.rb_arbiter = RoundRobinArbiter(sw.total_vcs + 1)
        # scratch plan-per-VC buffer reused across rowbus passes (only
        # entries written in the current pass are ever read back)
        self._plans: list = [None] * sw.total_vcs
        # the port's stash partition (shared object with the output side)
        self.partition: StashPartition | None = None
        # retransmission clones waiting to re-enter the network
        self.retrieval_queue: deque = deque()
        # in-progress retrieval: [packet, next_flit_index, col, dup_col]
        self.retrieval: list | None = None
        # event trace when obs tracing is enabled, else None (zero cost)
        self.obs: EventTrace | None = None
        self.flits_received = 0
        self.flits_sent = 0
        self.packets_marked = 0
        self.packets_diverted = 0
        self.copies_dispatched = 0
        self.stall_no_stash = 0

    # ------------------------------------------------------------------

    @property
    def congested(self) -> bool:
        """ECN congestion state (paper Section IV-B): occupancy of the
        normal input buffer above the configured threshold."""
        return (
            self.damq.occupancy_fraction() > self.sw.ecn_threshold
        )

    def ingress(self, cycle: int) -> None:
        """Drain the link: file arriving flits into the DAMQ."""
        ch = self.flit_in
        if ch is None:
            return
        if self.link_rx is not None:
            self._ingress_link_protocol(cycle)
            return
        q = ch._queue
        if not q or q[0][0] > cycle:
            return
        damq = self.damq
        space = damq.space
        committed = space.committed
        reserves = space.reserves
        queues = damq.queues
        mask = damq.occ_mask
        n = 0
        while q and q[0][0] <= cycle:
            vc, flit = q.popleft()[1]
            if flit.head:
                flit.pkt.vc = vc
            # inline space.admit(vc, 1), keeping its overflow guard (a
            # violation here means a credit-accounting bug upstream)
            occ = committed[vc]
            if occ >= reserves[vc]:
                if space._shared_used >= space.shared_capacity:
                    raise RuntimeError(
                        f"admit({vc}, 1) without space: occ={occ}, "
                        f"shared={space._shared_used}/"
                        f"{space.shared_capacity}"
                    )
                space._shared_used += 1
            committed[vc] = occ + 1
            total = space._total + 1
            space._total = total
            if total > space.peak_committed:
                space.peak_committed = total
            queues[vc].append(flit)
            mask |= 1 << vc
            n += 1
        damq.occ_mask = mask
        damq.flit_count += n
        self.sw.inflight += n
        self.flits_received += n

    def _ingress_link_protocol(self, cycle: int) -> None:
        """Go-back-N receive path: only clean, in-sequence flits enter
        the buffer; control messages ride the credit wire (vc -1)."""
        assert self.flit_in is not None and self.credit_out is not None
        for seq, vc, flit, corrupted in self.flit_in.recv_ready(cycle):
            accept, control = self.link_rx.receive(seq, corrupted, flit.tail)
            for msg in control:
                self.credit_out.send((-1, msg), cycle)
            if not accept:
                continue
            if flit.head:
                flit.pkt.vc = vc
            self.damq.admit_flit(vc)
            self.damq.push(vc, flit)
            self.sw.inflight += 1
            self.flits_received += 1

    # ------------------------------------------------------------------
    # row-bus stage
    # ------------------------------------------------------------------

    def rowbus_pass(self, cycle: int) -> None:
        """One row-bus arbitration: at most one flit (from a VC stream or
        the retrieval path) advances onto this input's row bus.

        Callers gate on work being present (buffered flits or retrieval
        state) — see TiledSwitch.step; an ungated call is still safe,
        merely a slower no-op."""
        sw = self.sw
        total_vcs = sw.total_vcs
        eligible: list[int] = []
        plans = self._plans

        congested = False
        if sw.congestion_stash_on:
            congested = self.congested

        queues = self.damq.queues
        streams = self.streams
        row_credits = self.row_credits
        S_VC = sw.S_VC
        mask = self.damq.occ_mask
        while mask:  # occupied VCs in ascending order
            vc = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            stream = streams[vc]
            if stream is not None:
                # inline _plan_credits_ok for the continuing stream
                kind, col, stash_col, _job = stream
                if kind == _NORMAL:
                    ok = row_credits[col][vc] >= 1
                elif kind == _DUP:
                    ok = (
                        row_credits[col][vc] >= 1
                        and row_credits[stash_col][S_VC] >= 1
                    )
                else:  # _DIVERT
                    ok = row_credits[stash_col][S_VC] >= 1
                if ok:
                    eligible.append(vc)
                    plans[vc] = stream
                continue
            plan = self._plan_head(vc, queues[vc][0], congested)
            if plan is not None:
                eligible.append(vc)
                plans[vc] = plan

        if (
            self.retrieval is not None
            or self.retrieval_queue
            or (self.partition is not None and self.partition._fifo)
        ):
            if self._plan_retrieval() is not None:
                eligible.append(total_vcs)

        if not eligible:
            return
        # rotating-priority pick over the eligible slots, inlined
        arb = self.rb_arbiter
        if len(eligible) == 1:
            winner = eligible[0]
        else:
            pivot = arb._next
            n_arb = arb.n
            winner = eligible[0]
            best = (winner - pivot) % n_arb
            for cand in eligible[1:]:
                d = (cand - pivot) % n_arb
                if d < best:
                    best = d
                    winner = cand
        arb._next = (winner + 1) % arb.n
        if winner == total_vcs:
            self._advance_retrieval(cycle)
        else:
            self._advance_vc(winner, plans[winner], cycle)

    def _plan_credits_ok(
        self, vc: int, plan: tuple[int, int, int, StashJob | None]
    ) -> bool:
        """Flit-granular flow control: every flit (head or body) needs a
        free slot in each row buffer the plan writes this cycle."""
        kind, col, stash_col, _job = plan
        S_VC = self.sw.S_VC
        if kind == _NORMAL:
            return self.row_credits[col][vc] >= 1
        if kind == _DUP:
            return (
                self.row_credits[col][vc] >= 1
                and self.row_credits[stash_col][S_VC] >= 1
            )
        return self.row_credits[stash_col][S_VC] >= 1  # _DIVERT

    def _plan_head(
        self, vc: int, flit: Flit, congested: bool
    ) -> tuple[int, int, int, StashJob | None] | None:
        """Decide what the head packet of this VC queue would do if it won
        the row bus; None means it stalls this cycle."""
        if not flit.head:
            raise AssertionError(f"stream-less non-head flit {flit!r}")
        sw = self.sw
        pkt = flit.pkt
        if self.head_route[vc] is None:
            out_port, next_vc = sw.router.route(sw, self.idx, pkt)
            pkt.out_port = out_port
            pkt.next_vc = next_vc
            self.head_route[vc] = (out_port, next_vc)
        out_port, _ = self.head_route[vc]
        col = out_port // sw.t_outputs
        size = pkt.size

        needs_copy = (
            sw.reliability_on
            and self.is_end_port
            and pkt.kind == PacketKind.DATA
            and not pkt.is_stash_copy
        )
        normal_ok = self.row_credits[col][vc] >= 1

        if needs_copy:
            # paper Section IV-A: forward progress requires BOTH the
            # normal path and a stash path; otherwise the input stalls.
            stash_col = self._jsq_column(size) if self.s_owner is None else None
            if normal_ok and stash_col is not None:
                job = StashJob("copy", pkt, origin_port=self.idx)
                return (_DUP, col, stash_col, job)
            self.stall_no_stash += 1
            return None

        if normal_ok:
            return (_NORMAL, col, -1, None)

        # paper Section IV-B: stash-on-congestion requires (1) head of a
        # congested input, (2) destination is an end port of this switch,
        # (3) the normal VC is blocked, (4) the storage VC can advance.
        if (
            congested
            and pkt.kind == PacketKind.DATA
            and out_port in sw.end_port_set
            and self.s_owner is None
        ):
            stash_col = self._jsq_column(size)
            if stash_col is not None:
                pkt.intended_out_port = out_port
                pkt.final_vc = vc
                job = StashJob("divert", pkt)
                return (_DIVERT, -1, stash_col, job)
        return None

    def _jsq_column(self, size: int) -> int | None:
        """Storage-VC column choice: among columns with stash-capable
        ports, a free S row-buffer slot, and partition room for the
        whole packet, pick the one with the most free stash space
        (join-shortest-queue, Section III-A) or uniformly at random
        (ablation baseline)."""
        sw = self.sw
        directory = sw.stash_dir
        if directory is None:
            return None
        S_VC = sw.S_VC
        if sw.stash_placement == "random":
            eligible = [
                col
                for col in directory.stash_columns()
                if self.row_credits[col][S_VC] >= 1
                and directory.column_free_flits(col) >= size
            ]
            return sw.rng.choice(eligible) if eligible else None
        best: int | None = None
        best_free = -1
        for col in directory.stash_columns():
            if self.row_credits[col][S_VC] < 1:
                continue
            free = directory.column_free_flits(col)
            if free >= size and free > best_free:
                best, best_free = col, free
        return best

    def _advance_vc(
        self, vc: int, plan: tuple[int, int, int, StashJob | None], cycle: int
    ) -> None:
        sw = self.sw
        kind, col, stash_col, job = plan
        damq = self.damq
        q = damq.queues[vc]
        flit = q.popleft()
        if not q:
            damq.occ_mask &= ~(1 << vc)
        damq.flit_count -= 1
        space = damq.space
        occ = space.committed[vc]
        if occ > space.reserves[vc]:
            space._shared_used -= 1
        space.committed[vc] = occ - 1
        space._total -= 1
        pkt = flit.pkt
        credit_out = self.credit_out
        if credit_out is not None:  # inline _return_credit
            credit_out.send((vc, 1), cycle)
        self.flits_sent += 1

        if flit.head:
            self.head_route[vc] = None
            self.streams[vc] = plan
            # ECN marking: congested inputs mark every data packet they
            # forward toward a destination (Section IV-B)
            if (
                sw.ecn_on
                and pkt.kind == PacketKind.DATA
                and self.congested
            ):
                pkt.ecn = True
                self.packets_marked += 1
                if self.obs is not None:
                    self.obs.emit(cycle, "ecn.mark", sw.switch_id, self.idx,
                                  vc, pkt.pid, pkt.size)
            if kind == _DUP:
                self.s_owner = vc
                assert job is not None
                sw.on_copy_dispatched(self.idx, pkt)
                self.copies_dispatched += 1
            elif kind == _DIVERT:
                self.s_owner = vc
                self.packets_diverted += 1
        # flit-granular credit consumption on every row buffer written
        if kind in (_NORMAL, _DUP):
            self.row_credits[col][vc] -= 1
        if kind in (_DUP, _DIVERT):
            self.row_credits[stash_col][sw.S_VC] -= 1
        if flit.tail:
            self.streams[vc] = None
            if kind in (_DUP, _DIVERT) and self.s_owner == vc:
                self.s_owner = None

        row_tiles = sw.tiles[self.row]
        if kind == _NORMAL:
            # inline tile.receive (vc is never the S VC on this path)
            tile = row_tiles[col]
            tile.queues[self.slot][vc].append(flit)
            tile.occ[self.slot] |= 1 << vc
            tile.flit_count += 1
            tile.blocked = False
        elif kind == _DUP:
            # multi-drop broadcast: the same wire value is latched by the
            # normal VC buffer and the storage VC buffer simultaneously,
            # consuming one row-bus slot (Section III-A)
            row_tiles[col].receive(self.slot, vc, flit, None)
            row_tiles[stash_col].receive(self.slot, sw.S_VC, flit, job)
            sw.inflight += 1  # the duplicate is a second buffered instance
        else:  # _DIVERT
            row_tiles[stash_col].receive(self.slot, sw.S_VC, flit, job)

    def _return_credit(self, vc: int, cycle: int) -> None:
        if self.credit_out is not None:
            self.credit_out.send_credit(vc, 1, cycle)

    # ------------------------------------------------------------------
    # retrieval (R VC) from this port's stash partition
    # ------------------------------------------------------------------

    def _plan_retrieval(self) -> bool | None:
        sw = self.sw
        R_VC = sw.R_VC
        if self.retrieval is not None:
            pkt, _idx, col, dup_col = self.retrieval
            if self.row_credits[col][R_VC] < 1:
                return None
            if dup_col >= 0 and self.row_credits[dup_col][sw.S_VC] < 1:
                return None
            return True
        # retransmission clones first, then the congestion FIFO
        if self.retrieval_queue:
            pkt = self.retrieval_queue[0]
            # a retransmission wants a fresh stash copy, which needs the
            # (single-stream) S path of this input to be free
            if (
                sw.reliability_on
                and pkt.kind == PacketKind.DATA
                and self.s_owner is not None
            ):
                return None
        elif self.partition is not None and self.partition._fifo:
            pkt = self.partition.front_fifo()
        else:
            return None
        col = pkt.intended_out_port // sw.t_outputs
        if self.row_credits[col][R_VC] < 1:
            return None
        return True

    def _advance_retrieval(self, cycle: int) -> None:
        sw = self.sw
        R_VC = sw.R_VC
        if self.retrieval is None:
            if self.retrieval_queue:
                pkt = self.retrieval_queue.popleft()
                dup_needed = sw.reliability_on and pkt.kind == PacketKind.DATA
            else:
                assert self.partition is not None
                pkt = self.partition.pop_fifo()
                dup_needed = False
                if self.obs is not None:
                    self.obs.emit(cycle, "stash.retrieve", sw.switch_id,
                                  self.idx, -1, pkt.pid, pkt.size)
            col = pkt.intended_out_port // sw.t_outputs
            dup_col = -1
            if dup_needed and self.s_owner is None:
                # a retransmitted packet is a fresh injection and gets a
                # fresh stash copy so it remains covered end-to-end
                jsq = self._jsq_column(pkt.size)
                if jsq is not None:
                    dup_col = jsq
                    self.s_owner = -2  # retrieval path owns the S stream
            self.retrieval = [pkt, 0, col, dup_col]
            sw.inflight += pkt.size
            if dup_col >= 0:
                sw.inflight += pkt.size

        pkt, idx, col, dup_col = self.retrieval
        flit = pkt.flits[idx]
        row_tiles = sw.tiles[self.row]
        self.row_credits[col][R_VC] -= 1
        row_tiles[col].receive(self.slot, R_VC, flit, None)
        if dup_col >= 0:
            self.row_credits[dup_col][sw.S_VC] -= 1
            job = StashJob("copy", pkt, origin_port=pkt.stash_origin_port)
            row_tiles[dup_col].receive(self.slot, sw.S_VC, flit, job)
            if flit.head:
                sw.on_copy_dispatched(pkt.stash_origin_port, pkt)
        self.retrieval[1] = idx + 1
        if flit.tail:
            if dup_col >= 0 and self.s_owner == -2:
                self.s_owner = None
            self.retrieval = None


class OutputPort:
    """One switch output port: column buffers from every tile row, the
    output mux, the normal output DAMQ with link-level retention, stash
    store/drain plumbing, and link egress (paper Sections II-III)."""

    __slots__ = (
        "sw",
        "idx",
        "is_end_port",
        "col_buffers",
        "col_jobs",
        "col_streams",
        "mux_lock",
        "mux_arbiter",
        "sdrain_arbiter",
        "sdrain_stream",
        "out_damq",
        "mirror",
        "flit_out",
        "credit_in",
        "retention",
        "pending_release",
        "link_streams",
        "link_lock",
        "link_arbiter",
        "link_tx",
        "partition",
        "stash_staging",
        "obs",
        "flits_sent",
        "credit_stalls",
        "col_flits",
        "col_flits_s",
        "col_occ",
        "_non_s_mask",
        "_col",
        "_o_local",
        "_rows",
        "_mux_blocked",
        "_egress_blocked",
    )

    def __init__(
        self,
        sw: "TiledSwitch",
        idx: int,
        normal_capacity: int,
        reserves: "int | list[int]" = 0,
    ) -> None:
        cfg = sw.cfg
        self.sw = sw
        self.idx = idx
        self.is_end_port = idx in sw.end_port_set
        rows = cfg.rows
        self.col_flits = 0  # non-S flits buffered in the column buffers
        self.col_flits_s = 0  # S flits awaiting the partition write port
        self.col_buffers: list[list[deque[Flit]]] = [
            [deque() for _ in range(sw.total_vcs)] for _ in range(rows)
        ]
        # per-row VC occupancy bitmasks over col_buffers (bit vc set iff
        # col_buffers[row][vc] non-empty); the mux scans set bits only
        self.col_occ = [0] * rows
        self._non_s_mask = ~(1 << sw.S_VC)
        # static geometry, cached for the mux/drain hot paths
        self._col = idx // cfg.tile_outputs
        self._o_local = idx % cfg.tile_outputs
        self._rows = rows
        self.col_jobs: list[deque[StashJob]] = [deque() for _ in range(rows)]
        # active stream per (row, vc): destination VC in the output buffer
        self.col_streams: list[list[int | None]] = [
            [None] * sw.total_vcs for _ in range(rows)
        ]
        self.mux_lock = VcStreamLock(sw.total_vcs)
        self.mux_arbiter = RoundRobinArbiter(rows * sw.total_vcs)
        self.sdrain_arbiter = RoundRobinArbiter(rows)
        # the partition write port serves one packet stream at a time
        self.sdrain_stream: int | None = None
        self.out_damq = Damq(sw.total_vcs, normal_capacity, reserve=reserves)
        self.mirror: DamqMirror | None = None
        self.flit_out: Channel | None = None
        self.credit_in: CreditChannel | None = None
        # link-level retransmission: output-buffer space is held for one
        # link round trip after transmission (Section II)
        self.retention = 4
        self.pending_release: deque[tuple[int, int]] = deque()
        self.link_streams: list[int | None] = [None] * sw.total_vcs
        # several output VC queues can map onto the same downstream VC
        # (the deadlock ladder is many-to-one), so the downstream VC is a
        # shared per-VC resource that must be locked from head to tail
        self.link_lock = VcStreamLock(sw.total_vcs)
        self.link_arbiter = RoundRobinArbiter(sw.total_vcs)
        # link-level retransmission sender (see repro.protocol.link);
        # when set, output space is released by cumulative ACKs instead
        # of the fixed retention timer
        self.link_tx: LinkSender | None = None
        self.partition: StashPartition | None = None
        # S flits accumulated until the tail completes the stored packet
        self.stash_staging: list[tuple[Flit, StashJob]] = []
        # event trace when obs tracing is enabled, else None (zero cost)
        self.obs: EventTrace | None = None
        self.flits_sent = 0
        self.credit_stalls = 0
        # quiescence latches (docs/PERFORMANCE.md): True after a scan
        # proved no flit can advance; cleared by every event that could
        # unblock the stage, so a skipped pass is a provable no-op
        self._mux_blocked = False
        self._egress_blocked = False

    # ------------------------------------------------------------------

    def receive_column(
        self, row: int, vc: int, flit: Flit, job: StashJob | None
    ) -> None:
        """Latch a flit off this port's column channel from tile ``row``."""
        self.col_buffers[row][vc].append(flit)
        self.col_occ[row] |= 1 << vc
        self._mux_blocked = False
        if vc == self.sw.S_VC:
            assert job is not None
            self.col_jobs[row].append(job)
            self.col_flits_s += 1
        else:
            self.col_flits += 1

    def apply_credits(self, cycle: int) -> None:
        """Drain the credit channel into the downstream mirror (and the
        link-protocol sender, which rides the same wire)."""
        ch = self.credit_in
        mirror = self.mirror
        if ch is None or mirror is None:
            return
        q = ch._queue
        if not q or q[0][0] > cycle:
            return
        release = mirror.space.release
        while q and q[0][0] <= cycle:
            vc, n = q.popleft()[1]
            if vc == -1:
                self._apply_link_control(n)
            else:
                release(vc, n)
        # downstream space (or a link ACK/NACK) arrived: egress may
        # proceed, and an ACK freeing output space may unblock the mux
        self._egress_blocked = False
        self._mux_blocked = False

    def _apply_link_control(self, msg: tuple) -> None:
        """ACK/NACK from the downstream link receiver."""
        assert self.link_tx is not None
        kind, seq = msg
        if kind == "ack":
            for damq_vc, flits in self.link_tx.on_ack(seq):
                self.out_damq.space.release(damq_vc, flits)
        else:
            self.link_tx.on_nack(seq)

    def release_retained(self, cycle: int) -> None:
        """Free output-buffer space whose implicit-ack retention expired."""
        pending = self.pending_release
        space = self.out_damq.space
        committed = space.committed
        reserves = space.reserves
        while pending and pending[0][0] <= cycle:
            _, vc = pending.popleft()
            occ = committed[vc]
            if occ > reserves[vc]:
                space._shared_used -= 1
            committed[vc] = occ - 1
            space._total -= 1
        self._mux_blocked = False  # output-buffer space freed

    # ------------------------------------------------------------------
    # output multiplexer: R column buffers -> output buffer (1 flit/pass)
    # ------------------------------------------------------------------

    def mux_pass(self) -> None:
        """One output-mux arbitration: move at most one flit from the
        column buffers into the output DAMQ (R flits re-file to their
        original VC; S flits drain via :meth:`stash_drain_pass`)."""
        if not self.col_flits:
            return
        sw = self.sw
        total_vcs = sw.total_vcs
        R_VC = sw.R_VC
        eligible: list[int] = []
        dests: dict[int, int] = {}

        non_s = self._non_s_mask
        col_occ = self.col_occ
        col_buffers = self.col_buffers
        col_streams = self.col_streams
        # single-flit admission check, inlined from VcSpaceAccounting:
        # a VC can take one more flit iff its private reserve has room
        # or the shared pool does
        space = self.out_damq.space
        committed = space.committed
        reserves = space.reserves
        shared_free = space._shared_used < space.shared_capacity
        mux_holders = self.mux_lock._holders
        for row in range(self._rows):
            # S flits drain into the partition instead, so mask them out
            mask = col_occ[row] & non_s
            if not mask:
                continue
            buffers = col_buffers[row]
            streams = col_streams[row]
            base = row * total_vcs
            while mask:  # occupied VCs in ascending order
                vc = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                dest = streams[vc]
                if dest is not None:
                    if shared_free or committed[dest] < reserves[dest]:
                        key = base + vc
                        eligible.append(key)
                        dests[key] = dest
                    continue
                flit = buffers[vc][0]
                assert flit.head, "stream-less non-head flit at output mux"
                pkt = flit.pkt
                # retrieved packets return to their original output VC
                dest = pkt.final_vc if vc == R_VC else vc
                holder = mux_holders[dest]
                if holder is not None and holder != (row, vc):
                    continue
                if not (shared_free or committed[dest] < reserves[dest]):
                    continue
                key = base + vc
                eligible.append(key)
                dests[key] = dest

        if not eligible:
            # nothing can advance until a new flit, output space, or a
            # holder release arrives; all three clear the latch
            self._mux_blocked = True
            return
        # rotating-priority pick over (row, vc) keys, inlined
        arb = self.mux_arbiter
        if len(eligible) == 1:
            key = eligible[0]
        else:
            pivot = arb._next
            n_arb = arb.n
            key = eligible[0]
            best = (key - pivot) % n_arb
            for k in eligible[1:]:
                d = (k - pivot) % n_arb
                if d < best:
                    best = d
                    key = k
        arb._next = (key + 1) % arb.n
        row, vc = divmod(key, total_vcs)
        dest = dests[key]
        q = col_buffers[row][vc]
        flit = q.popleft()
        if not q:
            col_occ[row] &= ~(1 << vc)
        self.col_flits -= 1
        if flit.head:
            self.mux_lock.acquire(dest, (row, vc))
            col_streams[row][vc] = dest
        if flit.tail:
            self.mux_lock.release(dest, (row, vc))
            col_streams[row][vc] = None
        out_damq = self.out_damq
        # inline admit(dest, 1) + push: eligibility was checked above and
        # nothing has admitted in between (one winner per pass)
        occ = committed[dest]
        committed[dest] = occ + 1
        if occ >= reserves[dest]:
            space._shared_used += 1
        total = space._total + 1
        space._total = total
        if total > space.peak_committed:
            space.peak_committed = total
        out_damq.queues[dest].append(flit)
        out_damq.flit_count += 1
        out_damq.occ_mask |= 1 << dest
        self._egress_blocked = False  # new flit for the link
        # column-buffer space freed: credit the tile
        tile = sw.tiles[row][self._col]
        tile.col_credits[self._o_local][vc] += 1
        tile.blocked = False

    # ------------------------------------------------------------------
    # S-VC drain: column buffers -> stash partition (1 flit/pass)
    # ------------------------------------------------------------------

    def stash_drain_pass(self, cycle: int) -> None:
        """One partition-write-port arbitration: move at most one S-VC
        flit from the column buffers into the stash partition."""
        if not self.col_flits_s:
            return
        sw = self.sw
        S_VC = sw.S_VC
        # the partition write port locks to one packet stream (one row)
        # from head to tail so stored packets never interleave
        if self.sdrain_stream is not None:
            row = self.sdrain_stream
            if not self.col_buffers[row][S_VC]:
                return
        else:
            rows = [r for r in range(self._rows) if self.col_buffers[r][S_VC]]
            if not rows:
                return
            row = self.sdrain_arbiter.pick(rows)
            self.sdrain_stream = row
        q = self.col_buffers[row][S_VC]
        flit = q.popleft()
        if not q:
            self.col_occ[row] &= ~(1 << S_VC)
        self.col_flits_s -= 1
        job = self.col_jobs[row].popleft()
        tile = sw.tiles[row][self._col]
        tile.col_credits[self._o_local][S_VC] += 1
        tile.blocked = False  # S column-buffer credit returned
        sw.inflight -= 1
        self.stash_staging.append((flit, job))
        if flit.tail:
            self.sdrain_stream = None
            self._complete_store(cycle)

    def _complete_store(self, cycle: int) -> None:
        """The tail flit of a stashed packet reached the partition."""
        sw = self.sw
        assert self.partition is not None
        job = self.stash_staging[-1][1]
        if len(self.stash_staging) != job.packet.size:
            raise AssertionError(
                f"interleaved stash store at port {self.idx}: staged "
                f"{len(self.stash_staging)} flits for a {job.packet.size}-flit packet"
            )
        self.stash_staging.clear()
        if job.purpose == "copy":
            location = self.partition.store(job.packet)
            sw.send_location(self.idx, job, location, cycle)
        else:
            self.partition.push_fifo(job.packet)
        if self.obs is not None:
            self.obs.emit(cycle, "stash.store", sw.switch_id, self.idx, -1,
                          job.packet.pid, job.packet.size)

    # ------------------------------------------------------------------
    # link egress (channel clock: one flit per cycle)
    # ------------------------------------------------------------------

    def egress(self, cycle: int) -> None:
        """Transmit at most one flit onto the link, credit permitting."""
        if self.flit_out is None:
            return
        if self.link_tx is not None:
            # go-back-N replay takes the link cycle ahead of new flits
            wire = self.link_tx.pop_replay()
            if wire is not None:
                self.flit_out.send(wire, cycle)
                self.flits_sent += 1
                return
        damq = self.out_damq
        if not damq.flit_count:
            return
        sw = self.sw
        eligible: list[int] = []
        link_vcs: dict[int, int] = {}
        queues = damq.queues
        link_streams = self.link_streams
        mirror = self.mirror
        # single-flit downstream-credit check, inlined from the mirror's
        # VcSpaceAccounting (see mux_pass); the scan admits nothing, so
        # the shared-pool headroom is loop-invariant
        if mirror is None:
            m_space = None
            m_committed = m_reserves = None
            m_shared_free = True
        else:
            m_space = mirror.space
            m_committed = m_space.committed
            m_reserves = m_space.reserves
            m_shared_free = m_space._shared_used < m_space.shared_capacity
        link_holders = self.link_lock._holders
        is_end_port = self.is_end_port
        mask = damq.occ_mask
        while mask:  # occupied VCs in ascending order
            vc = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            stream = link_streams[vc]
            if stream is not None:
                if (
                    m_committed is None
                    or m_shared_free
                    or m_committed[stream] < m_reserves[stream]
                ):
                    eligible.append(vc)
                    link_vcs[vc] = stream
                continue
            flit = queues[vc][0]
            assert flit.head, "stream-less non-head flit at link egress"
            pkt = flit.pkt
            # ejection links carry the current VC; network links carry the
            # VC assigned by this switch's route computation
            link_vc = vc if is_end_port else pkt.next_vc
            holder = link_holders[link_vc]
            if holder is not None and holder != vc:
                continue
            if m_committed is not None and not (
                m_shared_free or m_committed[link_vc] < m_reserves[link_vc]
            ):
                continue
            eligible.append(vc)
            link_vcs[vc] = link_vc
        if not eligible:
            # flits are queued but none may advance: out of downstream
            # credit (or the shared link VC is stream-locked); latch
            # until a credit, link ACK/NACK, or new flit arrives.  The
            # stall counter counts *scanned* stall passes only.
            self._egress_blocked = True
            self.credit_stalls += 1
            if self.obs is not None:
                self.obs.emit(cycle, "credit.stall", sw.switch_id, self.idx,
                              -1, -1, damq.flit_count)
            return
        # rotating-priority pick over the eligible VCs, inlined
        arb = self.link_arbiter
        if len(eligible) == 1:
            vc = eligible[0]
        else:
            pivot = arb._next
            n_arb = arb.n
            vc = eligible[0]
            best = (vc - pivot) % n_arb
            for cand in eligible[1:]:
                d = (cand - pivot) % n_arb
                if d < best:
                    best = d
                    vc = cand
        arb._next = (vc + 1) % arb.n
        link_vc = link_vcs[vc]
        # inline damq.pop_no_release (space stays committed until the
        # link-level acknowledgment round trip completes)
        q = queues[vc]
        flit = q.popleft()
        if not q:
            damq.occ_mask &= ~(1 << vc)
        damq.flit_count -= 1
        pkt = flit.pkt
        if m_space is not None:
            # inline mirror.debit_flit(link_vc): eligibility checked above
            occ = m_committed[link_vc]
            m_committed[link_vc] = occ + 1
            if occ >= m_reserves[link_vc]:
                m_space._shared_used += 1
            total = m_space._total + 1
            m_space._total = total
            if total > m_space.peak_committed:
                m_space.peak_committed = total
        if flit.head:
            self.link_lock.acquire(link_vc, vc)
            link_streams[vc] = link_vc
            if (
                is_end_port
                and pkt.kind == PacketKind.ACK
                and sw.trackers is not None
            ):
                sw.observe_ack_egress(self.idx, pkt, cycle)
        if flit.tail:
            self.link_lock.release(link_vc, vc)
            link_streams[vc] = None
        ch = self.flit_out
        if self.link_tx is not None:
            # retained until the cumulative link-level ACK
            ch.send(self.link_tx.stage_new(vc, link_vc, flit), cycle)
        else:
            # implicit-ack model: space frees one link round trip later
            self.pending_release.append((cycle + self.retention, vc))
            # inline ch.send((link_vc, flit), cycle)
            deliver = cycle + ch.latency
            chq = ch._queue
            if chq and deliver < chq[-1][0]:
                raise ValueError(
                    f"out-of-order send on {ch.name or 'channel'}: cycle "
                    f"{cycle} is below the queue tail's "
                    f"{chq[-1][0] - ch.latency}"
                )
            chq.append((deliver, (link_vc, flit)))
            ws = ch._wake_sim
            if ws is not None and ws._status[ch._wake_idx] > deliver:
                ws.wake(ch._wake_idx, deliver)
        sw.inflight -= 1
        self.flits_sent += 1

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        """Flits buffered on the output side: DAMQ + column buffers."""
        return self.out_damq.total_flits + self.col_flits + self.col_flits_s
