"""Tiled-switch microarchitecture: datatypes, buffers, arbitration, tiles.

Implements the paper's baseline tiled switch (Section II, Figures 1-2) and
the stashing switch (Section III, Figure 3) at flit granularity.
"""

from repro.switch.flit import Flit, Message, Packet, PacketKind
from repro.switch.damq import Damq, DamqMirror
from repro.switch.arbiters import RoundRobinArbiter, VcStreamLock
from repro.switch.allocators import SeparableOutputFirstAllocator
from repro.switch.tiled_switch import TiledSwitch
from repro.switch.stashing_switch import StashingSwitch

__all__ = [
    "Damq",
    "DamqMirror",
    "Flit",
    "Message",
    "Packet",
    "PacketKind",
    "RoundRobinArbiter",
    "SeparableOutputFirstAllocator",
    "StashingSwitch",
    "TiledSwitch",
    "VcStreamLock",
]
