"""The baseline tiled switch (paper Section II).

One switch = P input ports, P output ports, and an R x C array of tiles.
Stage order within a cycle is downstream-first so every flit advances at
most one pipeline stage per internal cycle:

1. link egress (channel clock: one flit per output per cycle);
2. ``speedup`` internal passes (bandwidth-token accumulator models the
   paper's 1.3x core overclock): output mux, S-VC drain, tile crossbars,
   row buses;
3. link ingress and credit application.

The stashing extension (Section III) is hosted here behind ``stash_dir``
/ ``trackers`` hooks that are inert on the baseline;
:class:`repro.switch.stashing_switch.StashingSwitch` activates them.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.engine.config import EcnParams, SwitchParams
from repro.obs.events import EventTrace
from repro.routing.routing import Router
from repro.switch.flit import Packet
from repro.switch.port import InputPort, OutputPort
from repro.switch.tile import Tile
from repro.topology.topology import PortSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reliability import EndToEndTracker
    from repro.core.sideband import SidebandNetwork
    from repro.core.stash import StashDirectory

__all__ = ["TiledSwitch"]


class TiledSwitch:
    """Baseline tiled switch; also the shared datapath for stashing."""

    __slots__ = (
        "switch_id",
        "cfg",
        "router",
        "port_specs",
        "alloc_pid",
        "rng",
        "stash_placement",
        "num_data_vcs",
        "S_VC",
        "R_VC",
        "total_vcs",
        "t_outputs",
        "end_port_set",
        "ecn_on",
        "ecn_threshold",
        "congestion_stash_on",
        "reliability_on",
        "stash_dir",
        "sideband",
        "trackers",
        "obs",
        "inflight",
        "_speedup_x10k",
        "in_ports",
        "out_ports",
        "tiles",
        "_active_in",
        "_active_out",
        "_flat_tiles",
    )

    def __init__(
        self,
        switch_id: int,
        cfg: SwitchParams,
        router: Router,
        port_specs: list[PortSpec],
        rng: random.Random,
        alloc_pid: Callable[[], int] | None = None,
        ecn: EcnParams | None = None,
    ) -> None:
        if len(port_specs) != cfg.num_ports:
            raise ValueError(
                f"switch {switch_id}: {len(port_specs)} port specs for "
                f"{cfg.num_ports} ports"
            )
        if rng is None:
            # required keyword: every switch must be handed a stream
            # derived from the experiment seed (DeterministicRng.stream),
            # never a self-invented one — see docs/LINTING.md SIM004
            raise TypeError(
                f"switch {switch_id}: rng is required; pass a stream "
                "derived from the experiment seed"
            )
        self.switch_id = switch_id
        self.cfg = cfg
        self.router = router
        self.port_specs = port_specs
        if alloc_pid is None:
            alloc_pid = _default_pid_counter()
        self.alloc_pid = alloc_pid
        self.rng = rng
        self.stash_placement = "jsq"

        # VC plan: data VCs [0, V), storage VC V, retrieval VC V+1
        self.num_data_vcs = cfg.num_vcs
        self.S_VC = cfg.num_vcs
        self.R_VC = cfg.num_vcs + 1
        self.total_vcs = cfg.num_vcs + 2
        self.t_outputs = cfg.tile_outputs

        self.end_port_set = {
            s.port for s in port_specs if s.link_class == "endpoint"
        }
        if ecn is None:
            ecn = EcnParams()
        self.ecn_on = ecn.enabled
        self.ecn_threshold = ecn.congestion_threshold
        self.congestion_stash_on = ecn.stash_on_congestion
        self.reliability_on = False

        # stashing hooks: inert on the baseline
        self.stash_dir: StashDirectory | None = None
        self.sideband: SidebandNetwork | None = None
        self.trackers: dict[int, EndToEndTracker] | None = None

        # event trace when obs tracing is enabled, else None (zero cost);
        # assigned by the network builder together with the port copies
        self.obs: EventTrace | None = None

        self.inflight = 0
        # bandwidth-token schedule for the internal speedup, derived from
        # the absolute cycle number (stateless, so both cycle kernels and
        # skipped idle cycles agree): passes(c) = floor((c+1)*s) - floor(c*s),
        # computed in fixed-point to keep the schedule platform-exact
        self._speedup_x10k = round(cfg.speedup * 10_000)

        self.in_ports = [
            InputPort(
                self, i, self._input_normal_capacity(i), self._input_reserves(i)
            )
            for i in range(cfg.num_ports)
        ]
        self.out_ports = [
            OutputPort(
                self, i, self._output_normal_capacity(i),
                self._output_reserves(i),
            )
            for i in range(cfg.num_ports)
        ]
        self.tiles = [
            [Tile(self, r, c) for c in range(cfg.cols)] for r in range(cfg.rows)
        ]
        self._active_in = [
            self.in_ports[s.port] for s in port_specs if s.link_class != "unused"
        ]
        self._active_out = [
            self.out_ports[s.port] for s in port_specs if s.link_class != "unused"
        ]
        self._flat_tiles = [t for row in self.tiles for t in row]

    # -- buffer partitioning (overridden by the stashing switch) --------

    def _input_normal_capacity(self, port: int) -> int:
        return self.cfg.input_buffer_flits

    def _output_normal_capacity(self, port: int) -> int:
        return self.cfg.output_buffer_flits

    # -- per-VC private reserves (deadlock avoidance; see damq.py) -------

    def _input_reserves(self, port: int) -> list[int]:
        """Private space for the VCs that need an escape guarantee.

        VC 0 is the bottom of the ladder: nothing below it ever waits on
        it, so once the reserved VCs drain (by induction from the
        always-sinking ejection ports) the shared pool frees and VC 0
        proceeds — it needs no reserve of its own, which keeps the
        shared pool (and thus queueing depth before HoL blocking) large.

        Endpoint ports carry only the two injection VCs: data on 0, ACKs
        on 1.  The ACK VC gets a one-flit reserve (ACKs are single-flit)
        so a stash-stalled data queue can never starve the ACKs whose
        return frees the remote stash.  Transit ports reserve two flits
        for each ladder VC above 0 — with flit-granular credits a single
        guaranteed slot is enough for escape progress (packets trickle
        through it); the second is slack.  The S and R VCs never arrive
        over a link."""
        reserves = [0] * self.total_vcs
        cls = self.port_specs[port].link_class
        if cls == "endpoint":
            reserves[1] = 1  # single-flit ACKs
        elif cls in ("local", "global"):
            for vc in range(1, self.num_data_vcs):
                reserves[vc] = 2
        capacity = self._input_normal_capacity(port)
        if cls != "unused" and sum(reserves) > capacity:
            raise ValueError(
                f"switch {self.switch_id} port {port} ({cls}): normal input "
                f"partition of {capacity} flits cannot hold the per-VC "
                f"deadlock reserves {sum(reserves)}; enlarge the buffer or "
                f"shrink the stash fraction"
            )
        return reserves

    def _output_reserves(self, port: int) -> list[int]:
        """Transit output buffers reserve for the same escape VCs as
        inputs; ejection output buffers drain unconditionally (endpoints
        always sink) and need none."""
        reserves = [0] * self.total_vcs
        cls = self.port_specs[port].link_class
        if cls in ("local", "global"):
            for vc in range(1, self.num_data_vcs):
                reserves[vc] = 2
        capacity = self._output_normal_capacity(port)
        if cls != "unused" and sum(reserves) > capacity:
            raise ValueError(
                f"switch {self.switch_id} port {port} ({cls}): normal output "
                f"partition of {capacity} flits cannot hold the per-VC "
                f"deadlock reserves {sum(reserves)}"
            )
        return reserves

    # -- cycle loop ------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance the switch one cycle: egress, ``speedup`` internal
        passes (mux, stash drain, crossbars, row buses), ingress, credit
        application, and side-band processing — downstream-first so every
        flit moves at most one stage per cycle.

        Every stage call is gated on an O(1) emptiness check that proves
        the call would be a no-op; skipping it is therefore invisible to
        results (the basis of the event kernel's byte-identity)."""
        inflight = self.inflight
        if inflight or self._egress_pending():
            for op in self._active_out:
                if (op.out_damq.flit_count and not op._egress_blocked) or (
                    op.link_tx is not None and op.link_tx.replay
                ):
                    op.egress(cycle)
        if inflight or self._retrieval_pending():
            n = self._speedup_x10k
            passes = (cycle + 1) * n // 10_000 - cycle * n // 10_000
            stashing = self.stash_dir is not None
            for _ in range(passes):
                for op in self._active_out:
                    if op.col_flits and not op._mux_blocked:
                        op.mux_pass()
                    if stashing and op.col_flits_s:
                        op.stash_drain_pass(cycle)
                for tile in self._flat_tiles:
                    if tile.flit_count and not tile.blocked:
                        tile.crossbar_pass()
                for ip in self._active_in:
                    if ip.damq.flit_count or (
                        ip.retrieval is not None
                        or ip.retrieval_queue
                        or (ip.partition is not None and ip.partition._fifo)
                    ):
                        ip.rowbus_pass(cycle)
        for ip in self._active_in:
            ch = ip.flit_in
            if ch is not None:
                q = ch._queue
                if q and q[0][0] <= cycle:
                    ip.ingress(cycle)
        for op in self._active_out:
            ch = op.credit_in
            if ch is not None:
                q = ch._queue
                if q and q[0][0] <= cycle:
                    op.apply_credits(cycle)
            pending = op.pending_release
            if pending and pending[0][0] <= cycle:
                op.release_retained(cycle)
        if self.sideband is not None:
            self._process_sideband(cycle)

    def _egress_pending(self) -> bool:
        """Link-protocol replay that must transmit despite zero inflight
        (replayed flits live in the sender window, not the buffers)."""
        for op in self._active_out:
            tx = op.link_tx
            if tx is not None and tx.replay:
                return True
        return False

    def _retrieval_pending(self) -> bool:
        """Retrieval work that can start from zero inflight: queued
        retransmission clones or congestion-stashed packets (in-progress
        retrievals hold inflight flits already)."""
        for ip in self._active_in:
            if ip.retrieval_queue:
                return True
            partition = ip.partition
            if partition is not None and partition._fifo:
                return True
        return False

    def next_active_cycle(self, cycle: int) -> int | None:
        """Wake-list contract (docs/PERFORMANCE.md): the next cycle our
        ``step`` could do anything.  Buffered flits, pending retrieval
        work, and link replay demand every cycle; otherwise the earliest
        input-channel / credit-channel delivery, retention expiry, side
        band delivery, or paced retransmission bounds the sleep.  A
        bound channel ``send`` wakes us independently, so only deadlines
        already in flight matter here."""
        if self.inflight:
            return cycle + 1
        wake = None
        for ip in self._active_in:
            if ip.retrieval_queue or ip.retrieval is not None:
                return cycle + 1
            partition = ip.partition
            if partition is not None and partition._fifo:
                return cycle + 1
            ch = ip.flit_in
            if ch is not None:
                q = ch._queue
                if q and (wake is None or q[0][0] < wake):
                    wake = q[0][0]
        for op in self._active_out:
            tx = op.link_tx
            if tx is not None and tx.replay:
                return cycle + 1
            ch = op.credit_in
            if ch is not None:
                q = ch._queue
                if q and (wake is None or q[0][0] < wake):
                    wake = q[0][0]
            pending = op.pending_release
            if pending and (wake is None or pending[0][0] < wake):
                wake = pending[0][0]
        sideband = self.sideband
        if sideband is not None:
            due = sideband.next_deadline
            if due is not None and (wake is None or due < wake):
                wake = due
        if wake is not None and wake <= cycle:
            return cycle + 1
        return wake

    def _idle(self) -> bool:
        """Fast path: nothing buffered, arriving, or pending anywhere."""
        if self.inflight:
            return False
        for ip in self._active_in:
            ch = ip.flit_in
            if ch is not None and not ch.empty:
                return False
            if ip.retrieval_queue or ip.retrieval is not None:
                return False
            if ip.partition is not None and ip.partition._fifo:
                return False
        for op in self._active_out:
            if op.pending_release:
                return False
            ch = op.credit_in
            if ch is not None and not ch.empty:
                return False
            tx = op.link_tx
            if tx is not None and (tx.replay or tx.retained_flits):
                return False  # unacked link window: NACKs may still come
        if self.sideband is not None and self.sideband.in_flight:
            return False
        if getattr(self, "_paced_retransmits", None):
            return False  # a throttled retransmission is still scheduled
        return True

    # -- routing context ---------------------------------------------------

    def output_congestion(self, port: int) -> int:
        """Queue-depth proxy for adaptive routing: flits committed in the
        output buffer plus flits in flight toward the downstream input."""
        op = self.out_ports[port]
        depth = op.out_damq.total_committed
        if op.mirror is not None:
            depth += op.mirror.in_flight
        return depth

    # -- stashing hooks (no-ops on the baseline) ---------------------------

    def on_copy_dispatched(self, origin_port: int, packet: Packet) -> None:
        """Stashing hook: a reliability copy entered the S path."""
        raise RuntimeError("baseline switch cannot dispatch stash copies")

    def send_location(self, stash_port: int, job, location: int, cycle: int) -> None:
        """Stashing hook: report a completed store over the side band."""
        raise RuntimeError("baseline switch has no side-band network")

    def observe_ack_egress(self, port: int, packet: Packet, cycle: int) -> None:
        """Stashing hook: an end-to-end ACK egresses toward its source."""
        raise RuntimeError("baseline switch has no trackers")

    def _process_sideband(self, cycle: int) -> None:
        raise RuntimeError("baseline switch has no side-band network")

    # -- introspection ------------------------------------------------------

    def total_buffered_flits(self) -> int:
        """Flits buffered anywhere in the switch (inputs, tiles, outputs)."""
        total = 0
        for ip in self._active_in:
            total += ip.damq.total_flits
        for op in self._active_out:
            total += op.occupancy()
        for tile in self._flat_tiles:
            total += tile.occupancy()
        return total

    @property
    def quiescent(self) -> bool:
        """True when nothing is buffered, arriving, or pending here."""
        return self._idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.switch_id}, inflight={self.inflight})"


def _default_pid_counter() -> Callable[[], int]:
    state = {"next": 1_000_000_000}

    def alloc() -> int:
        state["next"] += 1
        return state["next"]

    return alloc
