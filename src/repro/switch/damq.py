"""Dynamically Allocated Multi-Queue (DAMQ) buffers and credit mirrors.

The paper's ports share one physical memory among six network VCs using a
DAMQ (Tamir & Frazier), and the stashing switch carves a stash partition
out of the same memory (Section III-B/C).  This module implements the
*normal* partition: per-VC FIFOs drawing on a shared flit pool, with a
per-VC private reserve that guarantees every VC can always land one full
packet (forward progress / deadlock safety).

Flow-control discipline
-----------------------
Credits are **flit-granular**, as in BookSim: a flit (head or body) may
advance into a downstream buffer whenever at least one slot is available
to its VC (tracked upstream through a :class:`DamqMirror`); credits
return one per flit as flits *leave* the downstream buffer.  Wormhole
packets therefore trickle through minimal free space, and the per-VC
private reserves needed for deadlock freedom are one or two flits rather
than whole packets, keeping the shared pool — and thus the queueing depth
available before head-of-line blocking — large.
"""

from __future__ import annotations

from collections import deque

from repro.switch.flit import Flit

__all__ = ["Damq", "DamqMirror", "VcSpaceAccounting"]


class VcSpaceAccounting:
    """Shared-pool space accounting with per-VC private reserves.

    ``capacity`` flits total; VC ``v`` owns ``reserves[v]`` private
    flits; the remainder is shared.  A VC's occupancy consumes its
    private reserve first, then shared space.

    The per-VC reserves are not an optimization — they are the deadlock
    guarantee.  With a fully shared pool, packets of one VC can consume
    all buffering and starve the higher (escape) VCs whose progress
    would eventually free them, closing a cycle; a private reserve of
    one maximum packet per *usable* VC restores the strictly-increasing
    VC ladder argument (each VC's packets can always land downstream
    once the current occupant of the private slot advances, by induction
    from the always-sinking ejection ports).  Real DAMQ designs reserve
    per-VC minimums for exactly this reason.
    """

    __slots__ = (
        "num_vcs",
        "capacity",
        "reserves",
        "committed",
        "_shared_used",
        "shared_capacity",
        "_total",
        "peak_committed",
    )

    def __init__(
        self, num_vcs: int, capacity: int, reserve: "int | list[int]"
    ) -> None:
        if num_vcs < 1:
            raise ValueError("need at least one VC")
        if isinstance(reserve, int):
            reserves = [reserve] * num_vcs
        else:
            reserves = list(reserve)
            if len(reserves) != num_vcs:
                raise ValueError("one reserve entry required per VC")
        if any(r < 0 for r in reserves):
            raise ValueError("reserves must be non-negative")
        if capacity < sum(reserves):
            raise ValueError(
                f"capacity {capacity} cannot cover VC reserves {reserves}"
            )
        self.num_vcs = num_vcs
        self.capacity = capacity
        self.reserves = reserves
        self.committed = [0] * num_vcs
        self._shared_used = 0
        self.shared_capacity = capacity - sum(reserves)
        self._total = 0
        self.peak_committed = 0

    @property
    def total_committed(self) -> int:
        """Flits committed across all VCs (running total, O(1))."""
        return self._total

    def can_admit(self, vc: int, flits: int) -> bool:
        """True if VC ``vc`` could commit ``flits`` more flits right now."""
        private_free = self.reserves[vc] - self.committed[vc]
        if private_free >= flits:
            return True
        if private_free > 0:
            flits -= private_free
        return flits <= self.shared_capacity - self._shared_used

    def admit(self, vc: int, flits: int) -> None:
        """Commit ``flits`` flits to VC ``vc`` (reserve first, then pool)."""
        occ = self.committed[vc]
        reserve = self.reserves[vc]
        new_occ = occ + flits
        over_new = new_occ - reserve
        over_old = occ - reserve
        # the shared-pool delta doubles as the admission check (it is
        # exactly what can_admit() would have required of the pool)
        shared_need = (over_new if over_new > 0 else 0) - (
            over_old if over_old > 0 else 0
        )
        if shared_need > self.shared_capacity - self._shared_used:
            raise RuntimeError(
                f"admit({vc}, {flits}) without space: occ={occ}, "
                f"shared={self._shared_used}/{self.shared_capacity}"
            )
        self.committed[vc] = new_occ
        self._shared_used += shared_need
        total = self._total + flits
        self._total = total
        if total > self.peak_committed:
            self.peak_committed = total

    def release(self, vc: int, flits: int = 1) -> None:
        """Return ``flits`` flits of VC ``vc``'s space to reserve/pool."""
        occ = self.committed[vc]
        if flits > occ:
            raise RuntimeError(f"release({vc}, {flits}) exceeds occupancy {occ}")
        over = occ - self.reserves[vc]
        if over > 0:
            self._shared_used -= over if over < flits else flits
        self.committed[vc] = occ - flits
        self._total -= flits

    def occupancy_fraction(self) -> float:
        """Committed occupancy as a fraction of total capacity."""
        return self.total_committed / self.capacity if self.capacity else 0.0


class Damq:
    """A real DAMQ buffer: per-VC flit FIFOs over shared-pool accounting.

    ``admit_flit`` + ``push`` file one arriving flit (space is guaranteed
    by the sender's mirror); ``pop`` releases one flit of space, and the
    caller is responsible for sending the corresponding credit upstream.
    """

    __slots__ = ("space", "queues", "flit_count", "occ_mask")

    def __init__(
        self, num_vcs: int, capacity: int, reserve: "int | list[int]"
    ) -> None:
        self.space = VcSpaceAccounting(num_vcs, capacity, reserve)
        self.queues: list[deque[Flit]] = [deque() for _ in range(num_vcs)]
        self.flit_count = 0  # fast emptiness check for the cycle loop
        # bit ``v`` set iff ``queues[v]`` is non-empty: the datapath scan
        # loops iterate set bits instead of every VC FIFO
        self.occ_mask = 0

    @property
    def num_vcs(self) -> int:
        """Number of virtual-channel FIFOs sharing this buffer."""
        return self.space.num_vcs

    @property
    def capacity(self) -> int:
        """Total flit capacity of the shared physical memory."""
        return self.space.capacity

    def can_admit(self, vc: int, flits: int = 1) -> bool:
        """True if ``flits`` arriving flits of VC ``vc`` would fit."""
        return self.space.can_admit(vc, flits)

    def admit_flit(self, vc: int) -> None:
        """Account one arriving flit of VC ``vc`` (space must be free)."""
        self.space.admit(vc, 1)

    def push(self, vc: int, flit: Flit) -> None:
        """File an admitted flit at the tail of its VC FIFO."""
        self.queues[vc].append(flit)
        self.flit_count += 1
        self.occ_mask |= 1 << vc

    def front(self, vc: int) -> Flit | None:
        """The head flit of VC ``vc``, or None when its FIFO is empty."""
        q = self.queues[vc]
        return q[0] if q else None

    def pop(self, vc: int) -> Flit:
        """Remove VC ``vc``'s head flit and release its space.

        The caller owes the upstream sender one credit for it."""
        q = self.queues[vc]
        flit = q.popleft()
        if not q:
            self.occ_mask &= ~(1 << vc)
        self.flit_count -= 1
        self.space.release(vc, 1)
        return flit

    def pop_no_release(self, vc: int) -> Flit:
        """Pop a flit but keep its space committed.  Used by output
        buffers, which retain transmitted flits until the link-level
        acknowledgment round trip completes (Section II); the caller
        releases via ``space.release`` when the retention expires."""
        q = self.queues[vc]
        flit = q.popleft()
        if not q:
            self.occ_mask &= ~(1 << vc)
        self.flit_count -= 1
        return flit

    def vc_flits(self, vc: int) -> int:
        """Flits currently queued on VC ``vc``."""
        return len(self.queues[vc])

    @property
    def total_flits(self) -> int:
        """Flits physically queued (excludes popped-but-retained space)."""
        return self.flit_count

    @property
    def total_committed(self) -> int:
        """Flits of space committed, including post-pop retention."""
        return self.space.total_committed

    @property
    def peak_committed(self) -> int:
        """High-water mark of committed occupancy over the buffer's life."""
        return self.space.peak_committed

    def occupancy_fraction(self) -> float:
        """Committed occupancy over capacity (drives ECN detection)."""
        return self.space.occupancy_fraction()

    @property
    def empty(self) -> bool:
        """True when no flits are queued and no space is committed."""
        return self.total_flits == 0 and self.space.total_committed == 0


class DamqMirror:
    """Upstream credit-side mirror of a downstream :class:`Damq`.

    Debits one flit per flit sent (`debit_flit`), credits one flit per
    returning credit (`credit`).  Because both sides use the same
    :class:`VcSpaceAccounting` rules, the mirror is always a conservative
    image of the downstream buffer (it leads arrivals and lags pops by
    one link latency each way).
    """

    __slots__ = ("space",)

    def __init__(
        self, num_vcs: int, capacity: int, reserve: "int | list[int]"
    ) -> None:
        self.space = VcSpaceAccounting(num_vcs, capacity, reserve)

    def can_send_flit(self, vc: int) -> bool:
        """True if the downstream buffer has credit for one ``vc`` flit."""
        return self.space.can_admit(vc, 1)

    def debit_flit(self, vc: int) -> None:
        """Consume one ``vc`` credit for a flit just sent downstream."""
        self.space.admit(vc, 1)

    def credit(self, vc: int, flits: int = 1) -> None:
        """Apply ``flits`` returning credits for VC ``vc``."""
        self.space.release(vc, flits)

    @property
    def in_flight(self) -> int:
        """Flits sent but not yet credited back by the downstream buffer."""
        return self.space.total_committed
