"""The stashing switch (paper Section III, Figure 3).

Extends the baseline tiled switch with:

* virtual partitioning of every port's input + output buffers into a
  small normal portion and a pooled stash partition, sized by link class
  (7/8 endpoint, 3/4 local, 0 global by default — Section V) and scaled
  by the capacity-sensitivity knob (100 % / 50 % / 25 %);
* the storage (S) and retrieval (R) internal VCs, wired through the
  shared datapath in :mod:`repro.switch.port` / :mod:`repro.switch.tile`;
* the side-band bookkeeping network and per-end-port end-to-end
  retransmission trackers (Section IV-A).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.core.reliability import EndToEndTracker
from repro.core.sideband import SidebandKind, SidebandMessage, SidebandNetwork
from repro.core.stash import StashDirectory, StashJob, StashPartition
from repro.engine.config import EcnParams, ReliabilityParams, StashParams, SwitchParams
from repro.routing.routing import Router
from repro.switch.flit import Packet
from repro.switch.tiled_switch import TiledSwitch
from repro.topology.topology import PortSpec

__all__ = ["StashingSwitch"]


class StashingSwitch(TiledSwitch):
    """Tiled switch with buffer stashing enabled (paper Section III)."""

    def __init__(
        self,
        switch_id: int,
        cfg: SwitchParams,
        router: Router,
        port_specs: list[PortSpec],
        rng: random.Random,
        stash: StashParams,
        reliability: ReliabilityParams | None = None,
        ecn: EcnParams | None = None,
        alloc_pid: Callable[[], int] | None = None,
    ) -> None:
        if not stash.enabled:
            raise ValueError("StashingSwitch requires stash.enabled")
        self.stash_params = stash
        self._stash_capacity = [
            self._port_stash_flits(cfg, stash, spec) for spec in port_specs
        ]
        super().__init__(
            switch_id, cfg, router, port_specs, rng,
            alloc_pid=alloc_pid, ecn=ecn,
        )

        if reliability is None:
            reliability = ReliabilityParams()
        self.reliability_on = reliability.enabled
        self.retransmit_pace = reliability.retransmit_pace
        # (ready_cycle, msg): NACKed packets awaiting their paced
        # retransmission slot (Section IV-C, SRP-style throttling)
        self._paced_retransmits: "deque[tuple[int, SidebandMessage]]" = deque()
        self.stash_placement = stash.placement

        partitions = [
            StashPartition(i, self._stash_capacity[i]) for i in range(cfg.num_ports)
        ]
        for i in range(cfg.num_ports):
            self.in_ports[i].partition = partitions[i]
            self.out_ports[i].partition = partitions[i]
        self.stash_dir = StashDirectory(partitions, cfg.cols, cfg.tile_outputs)
        self.sideband = SidebandNetwork(cfg.num_ports, cfg.sideband_latency)
        self.trackers: dict[int, EndToEndTracker] = {
            p: EndToEndTracker(p) for p in sorted(self.end_port_set)
        }
        self.retransmits_issued = 0
        self.deletes_applied = 0

    # -- buffer partitioning -------------------------------------------

    @staticmethod
    def _normal_partition_flits(
        buffer_flits: int, max_packet_flits: int, normal_fraction: float
    ) -> int:
        """Normal-partition size of one buffer: the non-stash fraction,
        floored at two maximum packets so the port can always make
        forward progress."""
        return max(
            max_packet_flits * 2, int(buffer_flits * normal_fraction)
        )

    @classmethod
    def _port_stash_flits(
        cls, cfg: SwitchParams, stash: StashParams, spec: PortSpec
    ) -> int:
        """Pooled stash capacity of one port: the configured fraction of
        its input + output buffers, scaled by the sensitivity knob —
        clamped so normal + stash never exceeds the port's physical
        buffering.  The two-packet floor on the normal partitions can
        otherwise push small buffers past their configured capacity,
        silently simulating storage the switch does not have.
        """
        if spec.link_class == "unused":
            return 0
        frac = stash.fraction_for(spec.link_class)
        total = cfg.input_buffer_flits + cfg.output_buffer_flits
        pooled = int(frac * total * stash.capacity_scale)
        normal = cls._normal_partition_flits(
            cfg.input_buffer_flits, cfg.max_packet_flits, 1.0 - frac
        ) + cls._normal_partition_flits(
            cfg.output_buffer_flits, cfg.max_packet_flits, 1.0 - frac
        )
        return max(0, min(pooled, total - normal))

    def _normal_fraction(self, port: int) -> float:
        spec = self.port_specs[port]
        if spec.link_class == "unused":
            return 1.0
        return 1.0 - self.stash_params.fraction_for(spec.link_class)

    def _input_normal_capacity(self, port: int) -> int:
        return self._normal_partition_flits(
            self.cfg.input_buffer_flits,
            self.cfg.max_packet_flits,
            self._normal_fraction(port),
        )

    def _output_normal_capacity(self, port: int) -> int:
        return self._normal_partition_flits(
            self.cfg.output_buffer_flits,
            self.cfg.max_packet_flits,
            self._normal_fraction(port),
        )

    # -- stashing hooks ---------------------------------------------------

    def on_copy_dispatched(self, origin_port: int, packet: Packet) -> None:
        """A reliability copy's head won the row bus: start tracking."""
        self.trackers[origin_port].track(packet.pid, packet.size)

    def send_location(
        self, stash_port: int, job: StashJob, location: int, cycle: int
    ) -> None:
        """Report a completed store to the origin port's tracker over the
        side-band network (paper Section IV-A)."""
        assert self.sideband is not None
        self.sideband.send(
            SidebandMessage(
                kind=SidebandKind.LOCATION,
                dest_port=job.origin_port,
                pid=job.packet.pid,
                stash_port=stash_port,
                location=location,
            ),
            cycle,
        )

    def observe_ack_egress(self, port: int, packet: Packet, cycle: int) -> None:
        """An end-to-end ACK is egressing toward the source endpoint."""
        tracker = self.trackers.get(port)
        if tracker is None:
            return
        response = tracker.on_ack(packet.ack_for, packet.ack_positive)
        if response is not None:
            assert self.sideband is not None
            self.sideband.send(response, cycle)

    def next_active_cycle(self, cycle: int) -> int | None:
        """Extends the baseline wake-list contract with the paced
        retransmission queue: a throttled NACK retransmission is clocked
        off its scheduled ready cycle, not off any channel delivery."""
        wake = super().next_active_cycle(cycle)
        if wake is not None and wake <= cycle + 1:
            return wake
        paced = self._paced_retransmits
        if paced:
            head = paced[0][0]
            if head <= cycle + 1:
                return cycle + 1
            if wake is None or head < wake:
                wake = head
        return wake

    def _process_sideband(self, cycle: int) -> None:
        assert self.sideband is not None
        paced = self._paced_retransmits
        while paced and paced[0][0] <= cycle:
            self._start_retransmission(paced.popleft()[1], cycle)
        due = self.sideband.next_deadline
        if due is None or due > cycle:
            return
        for msg in self.sideband.deliver_ready(cycle):
            if msg.kind == SidebandKind.LOCATION:
                response = self.trackers[msg.dest_port].on_location(
                    msg.pid, msg.stash_port, msg.location
                )
                if response is not None:
                    self.sideband.send(response, cycle)
            elif msg.kind == SidebandKind.DELETE:
                partition = self.out_ports[msg.dest_port].partition
                assert partition is not None
                if self.obs is not None:
                    stored = partition.get(msg.location)
                    self.obs.emit(
                        cycle, "stash.evict", self.switch_id, msg.dest_port,
                        -1, msg.pid, stored.size if stored is not None else 0,
                    )
                partition.delete(msg.location)
                self.deletes_applied += 1
            elif msg.kind == SidebandKind.RETRANSMIT:
                if self.retransmit_pace > 0:
                    self._paced_retransmits.append(
                        (cycle + self.retransmit_pace, msg)
                    )
                else:
                    self._start_retransmission(msg, cycle)

    def _start_retransmission(self, msg: SidebandMessage, cycle: int) -> None:
        """Retrieve a stashed copy and queue it for re-injection through
        the stash port's retrieval (R) datapath."""
        partition = self.out_ports[msg.dest_port].partition
        assert partition is not None
        stored = partition.retrieve(msg.location)
        clone = stored.stash_clone(self.alloc_pid())
        clone.stash_origin_port = msg.origin_port
        self.router.prepare_injection(clone)
        out_port, next_vc = self.router.route(self, msg.dest_port, clone)
        clone.out_port = out_port
        clone.next_vc = next_vc
        clone.intended_out_port = out_port
        clone.final_vc = 0
        self.in_ports[msg.dest_port].retrieval_queue.append(clone)
        self.retransmits_issued += 1
        if self.obs is not None:
            self.obs.emit(cycle, "stash.retrieve", self.switch_id,
                          msg.dest_port, -1, clone.pid, clone.size)

    # -- introspection ------------------------------------------------------

    def stash_utilization(self) -> float:
        """Fraction of this switch's stash capacity currently committed."""
        assert self.stash_dir is not None
        return self.stash_dir.utilization()

    def stash_capacity_flits(self) -> int:
        """Total stash capacity pooled across this switch's ports."""
        assert self.stash_dir is not None
        return self.stash_dir.total_capacity()
