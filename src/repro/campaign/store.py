"""Content-addressed, corruption-detecting campaign result store.

Every completed campaign point is persisted as one small JSON file whose
**name is its cache key** — ``objects/<hh>/<spec_hash>.<engine>.v<schema>
.json`` — and whose bytes are a pure function of the computation: the
canonical-JSON :class:`~repro.engine.base.EngineResult` payload plus
point provenance (label, seeds, key), wrapped with a sha256 of the body.
No timestamps, hostnames, or campaign names ever enter an entry, which
is what makes the store's byte-identity contract composable:

* a **rerun** of the same campaign writes byte-identical files, so a
  resume after a crash/``kill -9`` merges indistinguishably from a
  from-scratch run;
* two **shards** of one campaign write disjoint entries, and
  :func:`merge_stores` unions them — overlapping keys must match
  byte-for-byte or the merge refuses;
* two **campaigns** sharing a point (same spec hash + engine + schema)
  share the cache entry.

Writes are atomic (temp file + ``os.replace`` in the same directory),
so a killed run leaves either a complete entry or none — and if the
filesystem still manages to truncate or flip bits, the body hash check
turns the damage into a recomputable cache miss
(:class:`CorruptEntryError`), never a silently served wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator

from repro.engine.base import EngineResult, GroupStats

__all__ = [
    "CorruptEntryError",
    "MergeConflictError",
    "ResultStore",
    "StoreEntry",
    "decode_result",
    "encode_entry",
    "merge_stores",
]


class CorruptEntryError(RuntimeError):
    """A store entry exists but fails integrity or shape validation."""


class MergeConflictError(RuntimeError):
    """Two stores hold different bytes for the same cache key."""


class StoreEntry:
    """A decoded store entry: the result plus its provenance metadata."""

    __slots__ = ("result", "meta")

    def __init__(self, result: EngineResult, meta: dict[str, Any]) -> None:
        self.result = result
        self.meta = meta


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def encode_entry(
    key: tuple[str, str, int],
    result: EngineResult,
    meta: dict[str, Any],
) -> bytes:
    """Serialise one entry to its canonical on-disk bytes.

    The body carries the key fields redundantly so a mis-filed entry
    (wrong name for its contents) is detected on load, and the outer
    ``body_sha256`` covers the whole body so truncation or bit flips
    are detected before anything is deserialised into results.
    """
    spec_hash, engine, schema = key
    body = {
        "engine": engine,
        "meta": meta,
        "result": asdict(result),
        "schema": schema,
        "spec_hash": spec_hash,
    }
    body_canon = _canonical(body)
    digest = hashlib.sha256(body_canon.encode("utf-8")).hexdigest()
    return (
        '{"body":' + body_canon + ',"body_sha256":"' + digest + '"}\n'
    ).encode("utf-8")


def decode_result(data: dict[str, Any]) -> EngineResult:
    """Rebuild an :class:`EngineResult` from its ``asdict`` JSON form."""
    return EngineResult(
        engine=data["engine"],
        offered_load=data["offered_load"],
        accepted_load=data["accepted_load"],
        avg_latency=data["avg_latency"],
        p90_latency=data["p90_latency"],
        p99_latency=data["p99_latency"],
        max_latency=data["max_latency"],
        packets_measured=data["packets_measured"],
        cycles=data["cycles"],
        groups=tuple(
            (name, GroupStats(**stats)) for name, stats in data["groups"]
        ),
        extras=tuple((name, value) for name, value in data["extras"]),
    )


class ResultStore:
    """A directory of content-addressed campaign results.

    The layout is ``<root>/objects/<hh>/<spec_hash>.<engine>.v<n>.json``
    (two-hex-digit fan-out so large campaigns don't pile thousands of
    files into one directory).  The store is safe to share between
    shards of the same campaign and between campaigns.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: tuple[str, str, int]) -> Path:
        spec_hash, engine, schema = key
        return (
            self.objects_dir
            / spec_hash[:2]
            / f"{spec_hash}.{engine}.v{schema}.json"
        )

    # -- read ----------------------------------------------------------

    def load(self, key: tuple[str, str, int]) -> StoreEntry | None:
        """The verified entry for ``key``, or ``None`` when absent.

        Raises :class:`CorruptEntryError` when the file exists but is
        truncated, bit-flipped, mis-filed, or of the wrong schema shape
        — callers treat that as a miss and recompute over it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        return self._decode(raw, key, path)

    def _decode(
        self, raw: bytes, key: tuple[str, str, int], path: Path
    ) -> StoreEntry:
        spec_hash, engine, schema = key
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptEntryError(f"{path}: unreadable entry ({exc})") from exc
        if (
            not isinstance(doc, dict)
            or "body" not in doc
            or "body_sha256" not in doc
        ):
            raise CorruptEntryError(f"{path}: missing body/body_sha256")
        body = doc["body"]
        digest = hashlib.sha256(
            _canonical(body).encode("utf-8")
        ).hexdigest()
        if digest != doc["body_sha256"]:
            raise CorruptEntryError(
                f"{path}: body hash mismatch (stored {doc['body_sha256']!r}, "
                f"recomputed {digest!r})"
            )
        if (
            body.get("spec_hash") != spec_hash
            or body.get("engine") != engine
            or body.get("schema") != schema
        ):
            raise CorruptEntryError(
                f"{path}: entry identity does not match its cache key"
            )
        try:
            result = decode_result(body["result"])
        except (KeyError, TypeError) as exc:
            raise CorruptEntryError(f"{path}: malformed result ({exc})") from exc
        return StoreEntry(result, dict(body.get("meta", {})))

    def get(self, key: tuple[str, str, int]) -> StoreEntry | None:
        """Like :meth:`load` but mapping corruption to a miss (``None``).

        Prefer :meth:`load` in the executor, which wants to *count*
        corrupt entries; ``get`` is the fire-and-forget consumer path.
        """
        try:
            return self.load(key)
        except CorruptEntryError:
            return None

    # -- write ---------------------------------------------------------

    def put(
        self,
        key: tuple[str, str, int],
        result: EngineResult,
        meta: dict[str, Any],
    ) -> Path:
        """Persist one entry atomically (overwriting any corrupt body)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = encode_entry(key, result, meta)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    # -- enumeration ---------------------------------------------------

    def entry_paths(self) -> Iterator[Path]:
        """Every entry file, in sorted (deterministic) path order."""
        if not self.objects_dir.is_dir():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.iterdir()):
                if path.suffix == ".json":
                    yield path

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_paths())


def merge_stores(
    sources: list[str | Path], dest: str | Path
) -> tuple[int, int]:
    """Union source stores into ``dest``; returns (copied, identical).

    Entries are copied byte-for-byte, so a merged store is
    indistinguishable from one written by a single-process run.  A key
    present on both sides must already be byte-identical — anything else
    means two *different* computations claimed one cache key, which is a
    determinism violation worth refusing loudly
    (:class:`MergeConflictError`).
    """
    dest_store = ResultStore(dest)
    copied = identical = 0
    for source in sources:
        src_store = ResultStore(source)
        for src_path in src_store.entry_paths():
            rel = src_path.relative_to(src_store.objects_dir)
            dst_path = dest_store.objects_dir / rel
            data = src_path.read_bytes()
            if dst_path.exists():
                if dst_path.read_bytes() != data:
                    raise MergeConflictError(
                        f"{rel}: source {src_path} disagrees with existing "
                        f"{dst_path} — same cache key, different bytes"
                    )
                identical += 1
                continue
            dst_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=dst_path.parent, prefix=dst_path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_name, dst_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except FileNotFoundError:
                    pass
                raise
            copied += 1
    return copied, identical
