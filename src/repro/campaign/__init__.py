"""Declarative sweep campaigns with a content-hash result cache.

The campaign service (docs/CAMPAIGNS.md) turns a TOML/JSON campaign
file into a grid of :class:`repro.scenario.ScenarioSpec` points, runs
them through the ``--jobs`` executor, and persists every result in a
content-addressed :class:`ResultStore` keyed by
``(spec_hash, engine, result_schema_version)`` — so reruns compute only
missing points, shards merge byte-identically, and a run killed at any
instant resumes from its store.
"""

from repro.campaign.spec import (
    Campaign,
    CampaignError,
    CampaignPoint,
    RESULT_SCHEMA_VERSION,
    SWEEPS,
    expand_campaign,
    load_campaign,
    parse_campaign_text,
    shard_points,
)
from repro.campaign.store import (
    CorruptEntryError,
    MergeConflictError,
    ResultStore,
    merge_stores,
)
from repro.campaign.service import CampaignRunSummary, run_campaign

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignPoint",
    "CampaignRunSummary",
    "CorruptEntryError",
    "MergeConflictError",
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "SWEEPS",
    "expand_campaign",
    "load_campaign",
    "merge_stores",
    "parse_campaign_text",
    "run_campaign",
    "shard_points",
]
