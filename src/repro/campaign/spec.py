"""Declarative sweep campaigns: the campaign file model and expansion.

A **campaign** is a parameter study written down as data — which sweep
family (``fig5`` / ``fig9`` / ``fattree``), which preset and engine,
which axis values (loads, burst sizes, variants), and which experiment
seeds — loaded from a TOML or JSON file (or built programmatically) and
expanded into the exact :class:`repro.scenario.ScenarioSpec` grid the
interactive runner would execute.  The expansion is the psim
``ConfigSweeper`` idiom recast onto this repo's scenario layer: the
campaign file is the single source of truth, and every execution path —
serial, ``--jobs N``, ``--shard i/N``, resumed after a kill — derives
the same ordered point list from it.

Determinism contract: expansion order, point labels, and the per-point
derived seeds are exactly those of the interactive sweep harness
(:mod:`repro.experiments.common`), so a campaign's cached results are
interchangeable with ``repro-experiments`` output, and a point's cache
key (:meth:`CampaignPoint.store_key`) is stable across processes,
hosts, and reruns.

File schema (see docs/CAMPAIGNS.md for the full reference)::

    [campaign]
    name = "fig5-paper-flow"
    sweep = "fig5"            # fig5 | fig9 | fattree
    preset = "paper"          # tiny | small | paper
    engine = "flow"           # cycle | flow
    seeds = [1]               # one grid per experiment seed
    quick = false             # optional: runner --quick windows

    [axes]                    # sweep-specific; defaults = full grid
    variants = ["baseline", "stash100", "stash50", "stash25"]
    loads = [0.1, 0.3, 0.5, 0.7, 0.8, 0.9]

    [windows]                 # optional SimParams overrides
    warmup_cycles = 200
    measure_cycles = 500
    drain_cycles = 1000
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field, replace
from typing import Any

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, derive_run_seed
from repro.experiments.common import (
    SweepEntry,
    preset_by_name,
    quicken,
    scenario_point,
)
from repro.scenario import ScenarioSpec

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignPoint",
    "PRESETS",
    "RESULT_SCHEMA_VERSION",
    "SWEEPS",
    "expand_campaign",
    "load_campaign",
    "parse_campaign_text",
    "shard_points",
]

#: version of the persisted result payload (part of every cache key);
#: bump when :class:`repro.engine.base.EngineResult` changes shape so
#: stale stores read as misses instead of mis-parsing
RESULT_SCHEMA_VERSION = 1

#: sweep family -> experiment module exposing ``campaign_entries``
SWEEPS: dict[str, str] = {
    "fig5": "repro.experiments.fig5",
    "fig9": "repro.experiments.fig9",
    "fattree": "repro.experiments.fattree_exp",
}

PRESETS = ("tiny", "small", "paper")
ENGINES = ("cycle", "flow")

#: SimParams fields a campaign's [windows] section may override
WINDOW_FIELDS = (
    "warmup_cycles",
    "measure_cycles",
    "drain_cycles",
    "sample_period",
)


class CampaignError(ValueError):
    """A campaign file or campaign value failed validation."""


@dataclass(frozen=True)
class Campaign:
    """One declarative sweep campaign (the parsed campaign file).

    ``axes`` holds the sweep-specific grid axes (validated by the sweep
    module's ``campaign_entries``); ``windows`` optionally overrides the
    preset's measurement windows; ``quick`` applies the runner's
    ``--quick`` halving before the window overrides.
    """

    name: str
    sweep: str
    preset: str = "tiny"
    engine: str = "cycle"
    seeds: tuple[int, ...] = (1,)
    quick: bool = False
    axes: dict[str, Any] = field(default_factory=dict)
    windows: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError("campaign.name must be a non-empty string")
        if self.sweep not in SWEEPS:
            raise CampaignError(
                f"unknown sweep {self.sweep!r}; choose from {sorted(SWEEPS)}"
            )
        if self.preset not in PRESETS:
            raise CampaignError(
                f"unknown preset {self.preset!r}; choose from {PRESETS}"
            )
        if self.engine not in ENGINES:
            raise CampaignError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if not self.seeds or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in self.seeds
        ):
            raise CampaignError("campaign.seeds must be a non-empty int list")
        for key in self.windows:
            if key not in WINDOW_FIELDS:
                raise CampaignError(
                    f"unknown [windows] key {key!r}; choose from {WINDOW_FIELDS}"
                )

    # -- identity ------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """The campaign as plain sorted-key data (hash/provenance form)."""
        return {
            "name": self.name,
            "sweep": self.sweep,
            "preset": self.preset,
            "engine": self.engine,
            "seeds": list(self.seeds),
            "quick": self.quick,
            "axes": {k: self.axes[k] for k in sorted(self.axes)},
            "windows": {k: self.windows[k] for k in sorted(self.windows)},
        }

    def campaign_hash(self) -> str:
        """Stable sha256 of the campaign definition (provenance only —
        cache keys depend on the *points*, never on this hash, so two
        campaigns sharing points share cache entries)."""
        canon = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    # -- materialisation ----------------------------------------------

    def base_config(self) -> NetworkConfig:
        """The preset after ``quick`` scaling and window overrides."""
        base = preset_by_name(self.preset)
        if self.quick:
            base = quicken(base, 0.5)
        if self.windows:
            base = base.with_(sim=replace(base.sim, **self.windows))
        return base


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded experiment point of a campaign.

    ``index`` is the point's position in expansion order — the shard
    partitioning key (``index % nshards``).  ``spec`` already carries
    the per-point derived seed, so ``spec.spec_hash()`` is the full
    content identity of the computation; :meth:`store_key` appends the
    engine and result-schema version to form the cache key.
    """

    index: int
    sweep_seed: int
    key: tuple
    label: str
    spec: ScenarioSpec
    engine: str

    @property
    def derived_seed(self) -> int | None:
        """The seed the executor threads into the engine run."""
        return self.spec.seed

    def store_key(self) -> tuple[str, str, int]:
        """The content-addressed cache key: (spec hash, engine, schema)."""
        return (self.spec.spec_hash(), self.engine, RESULT_SCHEMA_VERSION)

    def run_spec(self) -> RunSpec:
        """Lower to an executor spec — identical construction to
        :func:`repro.experiments.common.sweep_specs`, so cached campaign
        results are interchangeable with interactive sweep output."""
        return RunSpec(
            key=self.key,
            fn=scenario_point,
            args=(self.spec.with_seed(None), self.engine),
            seed=self.derived_seed,
        )


def _sweep_entries(campaign: Campaign, base: NetworkConfig) -> list[SweepEntry]:
    """Ask the sweep family's experiment module to expand the axes."""
    import importlib

    module = importlib.import_module(SWEEPS[campaign.sweep])
    try:
        builder = module.campaign_entries
    except AttributeError as exc:  # pragma: no cover - registry bug
        raise CampaignError(
            f"sweep module {SWEEPS[campaign.sweep]} lacks campaign_entries"
        ) from exc
    return builder(base, dict(campaign.axes))


def expand_campaign(campaign: Campaign) -> list[CampaignPoint]:
    """Expand a campaign into its ordered, fully seeded point list.

    Order is (seed-major, sweep-entry order) and depends only on the
    campaign definition — never on caches, shards, or worker counts —
    so point indices are a stable partitioning key for ``--shard``.
    """
    base = campaign.base_config()
    entries = _sweep_entries(campaign, base)
    points: list[CampaignPoint] = []
    for sweep_seed in campaign.seeds:
        for entry in entries:
            derived = derive_run_seed(sweep_seed, entry.label)
            points.append(
                CampaignPoint(
                    index=len(points),
                    sweep_seed=sweep_seed,
                    key=(sweep_seed,) + tuple(entry.key),
                    label=entry.label,
                    spec=entry.spec.with_seed(derived),
                    engine=campaign.engine,
                )
            )
    return points


def shard_points(
    points: list[CampaignPoint], shard: tuple[int, int] | None
) -> list[CampaignPoint]:
    """This shard's slice: points whose ``index % n == i``.

    Round-robin by expansion index keeps per-shard cost balanced when
    cost varies monotonically along an axis (high loads are slower), and
    makes shards disjoint and jointly exhaustive by construction.
    """
    if shard is None:
        return points
    i, n = shard
    if n < 1 or not 0 <= i < n:
        raise CampaignError(f"invalid shard {i}/{n}: need 0 <= i < n")
    return [p for p in points if p.index % n == i]


# ----------------------------------------------------------------------
# campaign file parsing
# ----------------------------------------------------------------------


def parse_campaign_text(text: str, fmt: str = "toml") -> Campaign:
    """Parse campaign file contents (``fmt``: ``"toml"`` or ``"json"``)."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"invalid campaign JSON: {exc}") from exc
    elif fmt == "toml":
        data = _parse_toml(text)
    else:
        raise CampaignError(f"unknown campaign format {fmt!r}")
    return _campaign_from_data(data)


def load_campaign(path: str) -> Campaign:
    """Load a campaign from a ``.toml`` or ``.json`` file."""
    fmt = "json" if str(path).endswith(".json") else "toml"
    with open(path, "r", encoding="utf-8") as fh:
        return parse_campaign_text(fh.read(), fmt)


def _campaign_from_data(data: Any) -> Campaign:
    if not isinstance(data, dict):
        raise CampaignError("campaign file must be a table/object at top level")
    unknown = set(data) - {"campaign", "axes", "windows"}
    if unknown:
        raise CampaignError(
            f"unknown campaign section(s) {sorted(unknown)}; expected "
            "[campaign], [axes], [windows]"
        )
    head = data.get("campaign")
    if not isinstance(head, dict):
        raise CampaignError("campaign file needs a [campaign] section")
    known = {"name", "sweep", "preset", "engine", "seeds", "quick"}
    bad = set(head) - known
    if bad:
        raise CampaignError(
            f"unknown [campaign] key(s) {sorted(bad)}; expected {sorted(known)}"
        )
    for req in ("name", "sweep"):
        if req not in head:
            raise CampaignError(f"[campaign] section is missing {req!r}")
    seeds = head.get("seeds", [1])
    if not isinstance(seeds, list):
        raise CampaignError("[campaign] seeds must be an array of ints")
    axes = data.get("axes", {})
    if not isinstance(axes, dict):
        raise CampaignError("[axes] must be a table")
    windows = data.get("windows", {})
    if not isinstance(windows, dict):
        raise CampaignError("[windows] must be a table")
    for key, value in windows.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise CampaignError(f"[windows] {key} must be an integer")
    return Campaign(
        name=head["name"],
        sweep=head["sweep"],
        preset=head.get("preset", "tiny"),
        engine=head.get("engine", "cycle"),
        seeds=tuple(seeds),
        quick=bool(head.get("quick", False)),
        axes=dict(axes),
        windows=dict(windows),
    )


def _parse_toml(text: str) -> dict[str, Any]:
    """Parse campaign TOML — stdlib :mod:`tomllib` on Python >= 3.11,
    the bundled subset parser (:func:`parse_toml_subset`) on 3.10."""
    if sys.version_info >= (3, 11):
        import tomllib

        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"invalid campaign TOML: {exc}") from exc
    # Python 3.10: no stdlib tomllib and no new deps allowed
    return parse_toml_subset(text)


def parse_toml_subset(text: str) -> dict[str, Any]:
    """A minimal TOML-subset reader for campaign files on Python 3.10.

    Supports exactly what the campaign schema needs — ``[section]``
    headers one level deep, ``key = value`` with string / int / float /
    bool scalars, single-line arrays of scalars, and ``#`` comments —
    and rejects everything else loudly.  Campaign files written for this
    subset parse identically under stdlib ``tomllib`` (a test asserts
    so for every committed campaign file).
    """
    root: dict[str, Any] = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise CampaignError(f"line {lineno}: malformed table header")
            name = line[1:-1].strip()
            if not name or "." in name or "[" in name:
                raise CampaignError(
                    f"line {lineno}: only single-level [section] headers "
                    "are supported"
                )
            if name in root:
                raise CampaignError(f"line {lineno}: duplicate table {name!r}")
            table = root.setdefault(name, {})
            continue
        if "=" not in line:
            raise CampaignError(f"line {lineno}: expected key = value")
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        if not key:
            raise CampaignError(f"line {lineno}: empty key")
        if key in table:
            raise CampaignError(f"line {lineno}: duplicate key {key!r}")
        table[key] = _parse_toml_value(value.strip(), lineno)
    return root


def _strip_toml_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (respecting double-quoted strings)."""
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _parse_toml_value(token: str, lineno: int) -> Any:
    if not token:
        raise CampaignError(f"line {lineno}: missing value")
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_toml_value(part.strip(), lineno)
            for part in _split_toml_array(inner, lineno)
        ]
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise CampaignError(
            f"line {lineno}: unsupported value {token!r} (the 3.10 subset "
            "parser reads strings, ints, floats, bools, and flat arrays)"
        ) from None


def _split_toml_array(inner: str, lineno: int) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in inner:
        if ch == '"':
            in_string = not in_string
        if not in_string:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current))
                current = []
                continue
        current.append(ch)
    if in_string or depth:
        raise CampaignError(f"line {lineno}: unterminated array or string")
    if "".join(current).strip():
        parts.append("".join(current))
    return parts
