"""The campaign executor: cached, batched, sharded, resumable.

:func:`run_campaign` is the "experiment service" loop.  Given a
:class:`~repro.campaign.spec.Campaign` and a
:class:`~repro.campaign.store.ResultStore`, it

1. expands the campaign to its ordered point list and keeps this
   shard's slice (``index % n == i``);
2. classifies every point against the store — a verified entry is a
   **hit** and is never recomputed; a missing entry is a **miss**; a
   corrupt/truncated entry is counted and recomputed over;
3. admits the misses to the ``--jobs`` process-pool executor in bounded
   **batches**, persisting each result the moment its point completes —
   so a crash or ``kill -9`` at any instant loses at most the points
   in flight, and the next invocation resumes from the store;
4. streams progress through :mod:`repro.obs` counters (harvestable by
   any obs consumer) and an optional line sink (the CLI points it at
   stderr).

Because results are persisted keyed by content (spec hash + engine +
schema) and entry bytes are canonical, the store after *any* execution
history — resumed, sharded then merged, re-run with an edited grid —
is byte-identical to the store a single uninterrupted run writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.campaign.spec import (
    Campaign,
    CampaignPoint,
    expand_campaign,
    shard_points,
)
from repro.campaign.store import CorruptEntryError, ResultStore
from repro.engine.base import EngineResult
from repro.engine.parallel import RunOutcome, run_specs
from repro.obs.counters import CounterRegistry

__all__ = ["CampaignRunSummary", "point_meta", "run_campaign"]

ProgressSink = Callable[[str], None]


@dataclass(frozen=True)
class CampaignRunSummary:
    """What one :func:`run_campaign` invocation did (deterministic —
    no wall-clock fields, so summaries diff cleanly across reruns)."""

    name: str
    sweep: str
    engine: str
    preset: str
    total_points: int
    shard: tuple[int, int]
    shard_points: int
    hits: int
    computed: int
    corrupt: int
    batches: int
    compute_seconds: float

    @property
    def hit_rate(self) -> float:
        """Cache hits over this shard's points (1.0 when nothing ran)."""
        if self.shard_points == 0:
            return 1.0
        return self.hits / self.shard_points

    def format(self) -> str:
        """The run receipt the CLI prints (stable bytes; the one
        nondeterministic field, compute seconds, is the caller's to
        print on stderr)."""
        i, n = self.shard
        lines = [
            f"campaign {self.name} (sweep {self.sweep}, engine "
            f"{self.engine}, preset {self.preset})",
            f"  points    {self.total_points} total, shard {i}/{n} -> "
            f"{self.shard_points} this run",
            f"  hits      {self.hits}",
            f"  computed  {self.computed}",
            f"  corrupt   {self.corrupt} (recomputed, not served)",
            f"  batches   {self.batches}",
            f"  cache     {self.hit_rate:.1%}",
        ]
        return "\n".join(lines)


def point_meta(point: CampaignPoint) -> dict[str, Any]:
    """The provenance stored beside a result.

    Only *point-intrinsic* facts — never the campaign name, host, or
    time — so that every campaign (and every rerun) producing this
    point writes byte-identical entry files.
    """
    return {
        "key": list(point.key),
        "label": point.label,
        "seed": point.derived_seed,
        "sweep_seed": point.sweep_seed,
    }


def _batched(items: list, size: int | None) -> list[list]:
    if size is None or size <= 0 or size >= len(items):
        return [items] if items else []
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_campaign(
    campaign: Campaign,
    store: ResultStore,
    jobs: int = 1,
    shard: tuple[int, int] | None = None,
    batch: int | None = None,
    registry: CounterRegistry | None = None,
    progress: ProgressSink | None = None,
) -> CampaignRunSummary:
    """Execute (the missing points of) a campaign shard into the store.

    ``jobs`` is the process-pool width per batch (the ``--jobs``
    executor contract: results are identical for any value).  ``batch``
    bounds how many misses are admitted to the pool at once (``None`` =
    all of them); each completed point is persisted immediately either
    way, so batching only bounds in-flight work, not crash exposure.
    ``registry`` (a :class:`repro.obs.CounterRegistry`) receives the
    ``campaign.points.*`` / ``campaign.cache.*`` progress counters.
    """
    reg = registry if registry is not None else CounterRegistry()
    say = progress if progress is not None else (lambda line: None)

    all_points = expand_campaign(campaign)
    points = shard_points(all_points, shard)
    shard_desc = shard if shard is not None else (0, 1)
    reg.counter("campaign.points.total").add(len(points))

    # -- classify against the store -----------------------------------
    hits: list[CampaignPoint] = []
    misses: list[CampaignPoint] = []
    corrupt = 0
    for point in points:
        try:
            entry = store.load(point.store_key())
        except CorruptEntryError as exc:
            corrupt += 1
            reg.counter("campaign.cache.corrupt").add(1)
            say(f"[{campaign.name}] corrupt entry for {point.key!r}: {exc}")
            entry = None
        if entry is None:
            misses.append(point)
        else:
            hits.append(point)
    reg.counter("campaign.points.hit").add(len(hits))
    for done, point in enumerate(hits, start=1):
        say(
            f"[{campaign.name} hit {done}/{len(hits)}] {point.key!r} "
            f"({point.spec.spec_hash()[:12]})"
        )

    # -- admit misses in batches --------------------------------------
    batches = _batched(misses, batch)
    computed = 0
    compute_seconds = 0.0
    total_misses = len(misses)
    for batch_no, admitted in enumerate(batches, start=1):
        say(
            f"[{campaign.name}] batch {batch_no}/{len(batches)}: "
            f"admitting {len(admitted)} point(s) at jobs={jobs}"
        )
        reg.counter("campaign.batches.admitted").add(1)
        by_key = {point.key: point for point in admitted}
        offset = computed

        def persist(done: int, total: int, outcome: RunOutcome) -> None:
            # called in the parent process as each point completes —
            # persisting here is what makes a SIGKILL lose only the
            # points still in flight
            point = by_key[outcome.key]
            result = outcome.value
            assert isinstance(result, EngineResult)
            store.put(point.store_key(), result, point_meta(point))
            reg.counter("campaign.points.computed").add(1)
            say(
                f"[{campaign.name} run {offset + done}/{total_misses}] "
                f"{outcome.key!r} ({outcome.wall_seconds:.1f}s)"
            )

        outcomes = run_specs(
            [point.run_spec() for point in admitted],
            jobs=jobs,
            progress=persist,
        )
        computed += len(outcomes)
        compute_seconds += sum(o.wall_seconds for o in outcomes)

    return CampaignRunSummary(
        name=campaign.name,
        sweep=campaign.sweep,
        engine=campaign.engine,
        preset=campaign.preset,
        total_points=len(all_points),
        shard=shard_desc,
        shard_points=len(points),
        hits=len(hits),
        computed=computed,
        corrupt=corrupt,
        batches=len(batches),
        compute_seconds=compute_seconds,
    )
