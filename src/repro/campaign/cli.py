"""Campaign command line: ``python -m repro.campaign <cmd> ...``.

Subcommands::

    run FILE --store DIR [--jobs N] [--shard i/N] [--batch N] [--metrics]
    report FILE --store DIR
    merge DEST SOURCE [SOURCE ...]
    show FILE [--store DIR]

``run`` executes (the missing points of) a campaign into a result
store; rerunning is always safe — cached points are verified and
skipped, corrupt entries are recomputed, and a run killed at any
instant resumes from where its store left off.  ``report`` renders the
per-variant tables from the store.  ``merge`` unions shard stores
byte-for-byte.  ``show`` lists the expansion (and cache status with
``--store``).

Stdout carries only deterministic bytes — the run receipt, the report,
the expansion listing — so output files diff cleanly across reruns,
shard layouts, and ``--jobs`` values; progress and timing go to stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.spec import Campaign, CampaignError, expand_campaign, load_campaign
from repro.campaign.store import MergeConflictError, ResultStore, merge_stores

__all__ = ["main"]


def _parse_shard(text: str) -> tuple[int, int]:
    try:
        i_txt, n_txt = text.split("/", 1)
        i, n = int(i_txt), int(n_txt)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like i/N (got {text!r})"
        ) from None
    if n < 1 or not 0 <= i < n:
        raise argparse.ArgumentTypeError(f"shard {text!r}: need 0 <= i < N")
    return i, n


def _load(path: str) -> Campaign:
    try:
        return load_campaign(path)
    except FileNotFoundError:
        raise SystemExit(f"campaign file not found: {path}")
    except CampaignError as exc:
        raise SystemExit(f"invalid campaign {path}: {exc}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.counters import CounterRegistry

    from repro.campaign.service import run_campaign

    campaign = _load(args.campaign)
    store = ResultStore(args.store)
    registry = CounterRegistry()

    def progress(line: str) -> None:
        print(line, file=sys.stderr)

    summary = run_campaign(
        campaign,
        store,
        jobs=args.jobs,
        shard=args.shard,
        batch=args.batch,
        registry=registry,
        progress=progress,
    )
    print(summary.format())
    if args.metrics:
        from repro.analysis.obsview import format_counters

        print()
        print(format_counters(registry.snapshot()))
    print(
        f"[{campaign.name}] compute time {summary.compute_seconds:.1f}s "
        f"across {summary.computed} point(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignReportError,
        campaign_rows,
        format_campaign_report,
    )

    campaign = _load(args.campaign)
    store = ResultStore(args.store)
    try:
        rows = campaign_rows(campaign, store)
    except CampaignReportError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(format_campaign_report(campaign, rows))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    try:
        copied, identical = merge_stores(args.sources, args.dest)
    except MergeConflictError as exc:
        print(f"merge conflict: {exc}", file=sys.stderr)
        return 1
    print(
        f"merged {len(args.sources)} store(s) into {args.dest}: "
        f"{copied} copied, {identical} already identical"
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    campaign = _load(args.campaign)
    store = ResultStore(args.store) if args.store else None
    points = expand_campaign(campaign)
    print(
        f"campaign {campaign.name}: sweep {campaign.sweep}, engine "
        f"{campaign.engine}, preset {campaign.preset}, "
        f"{len(points)} point(s), hash {campaign.campaign_hash()[:12]}"
    )
    for point in points:
        status = ""
        if store is not None:
            status = (
                "  [cached]" if store.get(point.store_key()) else "  [missing]"
            )
        print(
            f"  {point.index:>4}  {point.spec.spec_hash()[:12]}."
            f"{point.engine}  {point.key!r}{status}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative sweep campaigns with a content-hash "
        "result cache (docs/CAMPAIGNS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="execute a campaign's missing points into a store"
    )
    run_p.add_argument("campaign", help="campaign .toml/.json file")
    run_p.add_argument("--store", required=True, help="result store directory")
    run_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per batch (default 1; results identical "
        "for any N)",
    )
    run_p.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="i/N",
        help="run only points with index %% N == i (merge shard stores "
        "with the merge subcommand)",
    )
    run_p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="admit at most N misses to the executor at a time "
        "(default: all; persistence is per-point either way)",
    )
    run_p.add_argument(
        "--metrics", action="store_true",
        help="print the campaign.* obs counter snapshot after the receipt",
    )
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser(
        "report", help="render per-variant tables from a completed store"
    )
    report_p.add_argument("campaign", help="campaign .toml/.json file")
    report_p.add_argument("--store", required=True, help="result store directory")
    report_p.set_defaults(func=_cmd_report)

    merge_p = sub.add_parser(
        "merge", help="union shard stores (byte-identity enforced)"
    )
    merge_p.add_argument("dest", help="destination store directory")
    merge_p.add_argument("sources", nargs="+", help="source store directories")
    merge_p.set_defaults(func=_cmd_merge)

    show_p = sub.add_parser(
        "show", help="list a campaign's expanded points (and cache status)"
    )
    show_p.add_argument("campaign", help="campaign .toml/.json file")
    show_p.add_argument("--store", default=None, help="result store directory")
    show_p.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error("--jobs must be >= 1")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
