"""Link-level retransmission (paper Section I/II).

The paper's switches provide "error recovery via link-level
retransmission": the output buffer holds every transmitted flit until a
positive acknowledgment returns from the receiving switch, which is why
it must be sized for one link round trip — the very buffering stashing
repurposes.  By default the simulator models only the capacity effect
(space retained for one RTT); enabling :class:`LinkParams` error
injection activates the full go-back-N protocol:

* every flit carries a link sequence number;
* the channel corrupts flits with probability ``error_rate``;
* the receiver accepts only the expected sequence, discards everything
  after a corruption, and returns a NACK naming the expected sequence;
* the sender replays its retained window from that sequence (go-back-N);
* cumulative ACKs release the retained output-buffer space.

The protocol is transparent to the packet layer: per-VC flit order is
preserved and nothing is delivered twice, which the tests assert under
aggressive error rates.
"""

from __future__ import annotations

import random
from collections import deque

from repro.engine.config import LinkParams
from repro.switch.flit import Flit

__all__ = ["LinkParams", "LinkReceiver", "LinkSender"]


class LinkSender:
    """Sender half: retained window, sequence numbers, replay queue."""

    __slots__ = (
        "params",
        "rng",
        "next_seq",
        "window",
        "replay",
        "flits_replayed",
        "nacks_received",
    )

    def __init__(self, params: LinkParams, rng: random.Random) -> None:
        self.params = params
        self.rng = rng
        self.next_seq = 0
        # (seq, damq_vc, link_vc, flit) retained until cumulative ACK
        self.window: deque[tuple[int, int, int, Flit]] = deque()
        self.replay: deque[tuple[int, int, Flit]] = deque()
        self.flits_replayed = 0
        self.nacks_received = 0

    def stage_new(self, damq_vc: int, link_vc: int, flit: Flit) -> tuple:
        """Assign a sequence to a fresh flit and retain it.  Returns the
        wire tuple ``(seq, link_vc, flit, corrupted)``."""
        seq = self.next_seq
        self.next_seq += 1
        self.window.append((seq, damq_vc, link_vc, flit))
        return (seq, link_vc, flit, self._corrupt())

    def pop_replay(self) -> tuple | None:
        """Next replayed flit to transmit, if a replay is pending."""
        if not self.replay:
            return None
        seq, link_vc, flit = self.replay.popleft()
        self.flits_replayed += 1
        return (seq, link_vc, flit, self._corrupt())

    def on_ack(self, seq: int) -> list[tuple[int, int]]:
        """Cumulative ACK: everything <= seq arrived.  Returns the
        (damq_vc, flits) space-release list for the output buffer."""
        released: list[tuple[int, int]] = []
        while self.window and self.window[0][0] <= seq:
            _, damq_vc, _, _ = self.window.popleft()
            released.append((damq_vc, 1))
        return released

    def on_nack(self, expected: int) -> None:
        """Go-back-N: queue every retained flit from ``expected`` on for
        replay (clearing any stale replay already queued)."""
        self.nacks_received += 1
        self.replay.clear()
        for seq, _damq_vc, link_vc, flit in self.window:
            if seq >= expected:
                self.replay.append((seq, link_vc, flit))

    def _corrupt(self) -> bool:
        return (
            self.params.error_rate > 0.0
            and self.rng.random() < self.params.error_rate
        )

    @property
    def retained_flits(self) -> int:
        return len(self.window)


class LinkReceiver:
    """Receiver half: in-order acceptance, NACK generation, ACK cadence."""

    __slots__ = (
        "params",
        "expected",
        "nack_outstanding",
        "_since_ack",
        "flits_accepted",
        "flits_discarded",
        "nacks_sent",
    )

    def __init__(self, params: LinkParams) -> None:
        self.params = params
        self.expected = 0
        self.nack_outstanding = False
        self._since_ack = 0
        self.flits_accepted = 0
        self.flits_discarded = 0
        self.nacks_sent = 0

    def receive(
        self, seq: int, corrupted: bool, tail: bool = False
    ) -> tuple[bool, list[tuple]]:
        """Process one arriving flit.  Returns ``(accept, control)``:
        ``accept`` says whether the flit enters the input buffer;
        ``control`` lists ('ack'|'nack', seq) messages to send back.
        ``tail`` flushes the cumulative ACK immediately — the last flit
        on a link is always some packet's tail, so stragglers are never
        left unacknowledged (which would retain sender window space
        forever)."""
        control: list[tuple] = []
        if corrupted and seq == self.expected:
            # the awaited flit itself was corrupted (possibly a replay
            # that failed again): always re-request, or the sender would
            # finish its replay with the receiver still waiting
            self.flits_discarded += 1
            self.nack_outstanding = True
            self.nacks_sent += 1
            control.append(("nack", self.expected))
            return False, control
        if corrupted or seq != self.expected:
            self.flits_discarded += 1
            if not self.nack_outstanding:
                self.nack_outstanding = True
                self.nacks_sent += 1
                control.append(("nack", self.expected))
            return False, control
        # in sequence and clean
        self.expected = seq + 1
        self.nack_outstanding = False
        self.flits_accepted += 1
        self._since_ack += 1
        if tail or self._since_ack >= self.params.ack_interval:
            self._since_ack = 0
            control.append(("ack", seq))
        return True, control
