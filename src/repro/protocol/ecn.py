"""ECN transmission windows (paper Section IV-B).

Each endpoint maintains a separate transmission window for every other
endpoint and may only inject a packet if its size fits in the window's
remaining space.  Injection adds the packet's flit count to the
destination's in-flight total; a returning positive ACK removes it.
An ACK carrying the ECN bit multiplies the window by ``window_decrease``
(0.8 in the paper); a recovery timer adds ``recovery_flits`` every
``recovery_period`` cycles until the window regains its maximum (4096
flits in the paper).
"""

from __future__ import annotations

from repro.engine.config import EcnParams

__all__ = ["EcnWindows"]


class EcnWindows:
    """Per-destination window state for one endpoint."""

    __slots__ = (
        "params",
        "enabled",
        "_window",
        "_in_flight",
        "_recovering",
        "ecn_acks",
        "window_cuts",
    )

    def __init__(self, params: EcnParams) -> None:
        self.params = params
        self.enabled = params.enabled
        self._window: dict[int, float] = {}
        self._in_flight: dict[int, int] = {}
        self._recovering: set[int] = set()
        self.ecn_acks = 0
        self.window_cuts = 0

    # ------------------------------------------------------------------

    def window(self, dst: int) -> float:
        return self._window.get(dst, float(self.params.window_max_flits))

    def in_flight(self, dst: int) -> int:
        return self._in_flight.get(dst, 0)

    def can_send(self, dst: int, size: int) -> bool:
        if not self.enabled:
            return True
        return self.in_flight(dst) + size <= self.window(dst)

    def on_inject(self, dst: int, size: int) -> None:
        if not self.enabled:
            return
        self._in_flight[dst] = self.in_flight(dst) + size

    def on_ack(self, dst: int, size: int, ecn_marked: bool) -> float | None:
        """Credit a returning ACK; apply multiplicative decrease if it
        carries the ECN bit.  Returns the new window size when this ACK
        actually shrank the window (the ``ecn.window_cut`` trace event),
        else None."""
        if not self.enabled:
            return None
        remaining = self.in_flight(dst) - size
        if remaining < 0:
            raise RuntimeError(f"ACK underflow for destination {dst}")
        self._in_flight[dst] = remaining
        if ecn_marked:
            self.ecn_acks += 1
            cut = max(
                float(self.params.window_min_flits),
                self.window(dst) * self.params.window_decrease,
            )
            shrank = cut < self.window(dst)
            if shrank:
                self.window_cuts += 1
            self._window[dst] = cut
            self._recovering.add(dst)
            if shrank:
                return cut
        return None

    def tick(self, cycle: int) -> None:
        """Additive window recovery; call once per cycle."""
        if not self.enabled or not self._recovering:
            return
        if cycle % self.params.recovery_period:
            return
        wmax = float(self.params.window_max_flits)
        done = []
        for dst in self._recovering:
            grown = self._window[dst] + self.params.recovery_flits
            if grown >= wmax:
                del self._window[dst]
                done.append(dst)
            else:
                self._window[dst] = grown
        for dst in done:
            self._recovering.discard(dst)

    @property
    def recovering(self) -> bool:
        """True while any window is in additive recovery.  Recovery is
        clocked on absolute cycle numbers, so the owning endpoint must
        keep ticking every cycle while this holds (wake-list contract)."""
        return bool(self._recovering)

    @property
    def throttled_destinations(self) -> int:
        return len(self._recovering)
