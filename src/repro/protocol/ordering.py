"""Packet order enforcement backed by end-to-end retransmission
(paper Section IV-C, "Other Use Cases").

Dragonfly networks with adaptive routing deliver packets of one message
out of order.  The paper notes that hardware reorder buffers at the
destinations can accelerate ordered transfers, but "such buffers are a
limited resource and may result in dropped packets when they are
exhausted.  End-to-end retransmission provides recovery, dramatically
simplifying the implementation and allowing for eager solutions."

:class:`ReorderBuffer` implements that destination-side resource: a
bounded flit pool holding early (out-of-sequence) packets per message.
In-sequence packets deliver immediately and drain any unblocked
successors; an early packet that does not fit is **dropped** and
negatively acknowledged, which triggers a retransmission from the
sender's first-hop stash copy (Section IV-A machinery) — no endpoint
retransmission hardware needed.
"""

from __future__ import annotations

from repro.switch.flit import Packet

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """Per-endpoint reorder pool, shared by all inbound ordered flows."""

    __slots__ = (
        "capacity",
        "_used",
        "_pending",
        "_next_seq",
        "delivered_in_order",
        "held_total",
        "dropped_total",
        "peak_used",
    )

    def __init__(self, capacity_flits: int) -> None:
        if capacity_flits < 1:
            raise ValueError("reorder buffer needs at least one flit")
        self.capacity = capacity_flits
        self._used = 0
        # msg_id -> {seq: packet} packets waiting for their predecessors
        self._pending: dict[int, dict[int, Packet]] = {}
        # msg_id -> next sequence number the application expects
        self._next_seq: dict[int, int] = {}
        self.delivered_in_order = 0
        self.held_total = 0
        self.dropped_total = 0
        self.peak_used = 0

    @property
    def used_flits(self) -> int:
        return self._used

    def accept(self, pkt: Packet) -> tuple[bool, list[Packet]]:
        """Offer an arriving ordered packet.

        Returns ``(accepted, deliverable)``: ``accepted`` is False when
        the packet was out-of-sequence and did not fit (the caller must
        NACK it so the stash retransmits); ``deliverable`` lists the
        packets now releasable to the application, in sequence order
        (includes ``pkt`` itself when it was in sequence).
        """
        expected = self._next_seq.get(pkt.msg_id, 0)
        if pkt.seq < expected:
            # duplicate of an already-delivered packet (a retransmission
            # racing its ACK); swallow it without redelivery
            return True, []
        if pkt.seq > expected:
            waiting = self._pending.setdefault(pkt.msg_id, {})
            if pkt.seq in waiting:
                return True, []  # duplicate of a held packet
            if self._used + pkt.size > self.capacity:
                self.dropped_total += 1
                return False, []
            waiting[pkt.seq] = pkt
            self._used += pkt.size
            self.held_total += 1
            self.peak_used = max(self.peak_used, self._used)
            return True, []

        # in sequence: deliver it and everything it unblocks
        out = [pkt]
        expected += 1
        waiting = self._pending.get(pkt.msg_id)
        if waiting:
            while expected in waiting:
                nxt = waiting.pop(expected)
                self._used -= nxt.size
                out.append(nxt)
                expected += 1
            if not waiting:
                del self._pending[pkt.msg_id]
        self._next_seq[pkt.msg_id] = expected
        self.delivered_in_order += len(out)
        return True, out

    def finish_message(self, msg_id: int) -> None:
        """Forget per-message state once the message completed."""
        self._next_seq.pop(msg_id, None)
        leftovers = self._pending.pop(msg_id, None)
        if leftovers:
            raise RuntimeError(
                f"message {msg_id} finished with {len(leftovers)} packets "
                "still held — ordering accounting bug"
            )

    @property
    def empty(self) -> bool:
        return self._used == 0 and not self._pending
