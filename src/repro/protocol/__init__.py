"""End-to-end protocols running at the endpoints: ECN transmission
windows (paper Section IV-B) and packet order enforcement backed by
stash retransmission (Section IV-C)."""

from repro.protocol.ecn import EcnWindows
from repro.protocol.ordering import ReorderBuffer

__all__ = ["EcnWindows", "ReorderBuffer"]
