"""Statistics collection: latency samples, rates, time series, histograms.

These collectors replace the paper's BookSim statistics output plus the
MATLAB post-processing scripts.  All of them are measurement-window aware:
samples recorded outside the active window are dropped, matching BookSim's
warmup handling.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Histogram", "LatencyStats", "RateMeter", "TimeSeries"]


class LatencyStats:
    """Per-packet latency samples with percentile and ICDF queries."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted = True
        self.enabled = True

    def record(self, value: float) -> None:
        """Add one latency sample (ignored while disabled)."""
        if not self.enabled:
            return
        self._samples.append(float(value))
        self._sorted = False

    def _ensure_sorted(self) -> list[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (NaN when empty)."""
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty)."""
        return max(self._samples) if self._samples else math.nan

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty)."""
        return min(self._samples) if self._samples else math.nan

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        data = self._ensure_sorted()
        if not data:
            return math.nan
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        rank = max(0, min(len(data) - 1, math.ceil(pct / 100.0 * len(data)) - 1))
        return data[rank]

    def inverse_cdf(self, num_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Inverse cumulative distribution: fraction of packets with
        latency > x, as plotted in the paper's Figure 7b.

        Returns ``(latencies, fractions)`` suitable for a semilog-y plot.
        """
        data = np.asarray(self._ensure_sorted(), dtype=float)
        if data.size == 0:
            return np.empty(0), np.empty(0)
        xs = np.linspace(data[0], data[-1], num_points)
        # fraction strictly greater than x
        counts = data.size - np.searchsorted(data, xs, side="right")
        return xs, counts / data.size

    def merged_with(self, other: "LatencyStats") -> "LatencyStats":
        """A new collector holding both sample sets."""
        out = LatencyStats()
        out._samples = self._samples + other._samples
        out._sorted = False
        return out


class RateMeter:
    """Counts events (e.g. ejected flits) over an explicit window."""

    def __init__(self) -> None:
        self.count = 0
        self._window_start: int | None = None
        self._window_end: int | None = None

    def open_window(self, cycle: int) -> None:
        """Start counting at ``cycle`` (resets the count)."""
        self._window_start = cycle
        self.count = 0

    def close_window(self, cycle: int) -> None:
        """Stop counting at ``cycle``; :meth:`rate` becomes defined."""
        self._window_end = cycle

    @property
    def active(self) -> bool:
        """True while a window is open (events are being counted)."""
        return self._window_start is not None and self._window_end is None

    def record(self, amount: int = 1) -> None:
        """Count ``amount`` events if the window is open."""
        if self.active:
            self.count += amount

    def rate(self) -> float:
        """Events per cycle over the closed window.

        NaN means "never measured" (no window was opened and closed);
        consumers must render it explicitly (see
        :func:`repro.analysis.report.fmt_float`).  A degenerate
        zero-span window is 0.0 when empty and an error when events were
        somehow recorded into it — a rate over no time is meaningless.
        """
        if self._window_start is None or self._window_end is None:
            return math.nan
        span = self._window_end - self._window_start
        if span <= 0:
            if self.count:
                raise ValueError(
                    f"{self.count} events recorded in a zero-span window"
                )
            return 0.0
        return self.count / span


class TimeSeries:
    """Windowed averages over simulation time (Figures 7a and 8).

    Values are accumulated into fixed-width bins of ``period`` cycles;
    :meth:`series` returns (bin centre, bin mean) pairs.  Bins with no
    samples are carried forward (``hold_last=True``) or skipped.
    """

    def __init__(self, period: int, hold_last: bool = True) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.hold_last = hold_last
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def record(self, cycle: int, value: float) -> None:
        """Accumulate ``value`` into the bin containing ``cycle``."""
        bin_id = cycle // self.period
        self._sums[bin_id] = self._sums.get(bin_id, 0.0) + value
        self._counts[bin_id] = self._counts.get(bin_id, 0) + 1

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(bin centre, bin mean) arrays over the recorded span."""
        if not self._sums:
            return np.empty(0), np.empty(0)
        first = min(self._sums)
        last = max(self._sums)
        times: list[float] = []
        values: list[float] = []
        prev: float | None = None
        for b in range(first, last + 1):
            if b in self._sums:
                prev = self._sums[b] / self._counts[b]
            elif not self.hold_last or prev is None:
                continue
            times.append((b + 0.5) * self.period)
            values.append(prev)
        return np.asarray(times), np.asarray(values)


class Histogram:
    """Fixed-bin histogram used for buffer-occupancy distributions."""

    def __init__(self, num_bins: int, lo: float, hi: float) -> None:
        if num_bins < 1 or hi <= lo:
            raise ValueError("invalid histogram bounds")
        self.lo = lo
        self.hi = hi
        self.counts = np.zeros(num_bins, dtype=np.int64)
        self.nan_samples = 0

    def record(self, value: float) -> None:
        """Count ``value`` in its bin (clamped to the bounds).

        NaN has no bin: ``int(nan)`` would raise mid-run, so NaN samples
        are dropped and tallied in :attr:`nan_samples` instead.
        Infinities clamp to the edge bins like any other out-of-range
        value (the clamp runs before the int conversion, which would
        otherwise overflow on them).
        """
        if math.isnan(value):
            self.nan_samples += 1
            return
        frac = (value - self.lo) / (self.hi - self.lo)
        if frac < 0.0:
            idx = 0
        elif frac >= 1.0:
            idx = len(self.counts) - 1
        else:
            idx = int(frac * len(self.counts))
        self.counts[idx] += 1

    @property
    def total(self) -> int:
        """Total samples recorded across all bins."""
        return int(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Bin counts as fractions of the total (zeros when empty)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total
