"""The cycle loop.

The simulator advances global time one channel-clock cycle at a time and
calls ``step(cycle)`` on every registered component in registration order.
Determinism rules:

* components only read channel items whose delivery time has arrived, and
  every channel has latency >= 1, so intra-cycle step order never changes
  what a component can observe from another component;
* all randomness flows through :class:`repro.engine.rng.DeterministicRng`.

Internal switch speedup (the paper's 1.3x core overclock) is handled inside
the switch component itself via bandwidth tokens, not by a second clock
domain here.
"""

from __future__ import annotations

from typing import Callable, Protocol

__all__ = ["Component", "Simulator"]


class Component(Protocol):
    """Anything the simulator steps once per cycle."""

    def step(self, cycle: int) -> None:
        """Advance this component to the end of ``cycle``."""
        ...


class Simulator:
    """Owns global time and the ordered component list."""

    def __init__(self) -> None:
        self.cycle = 0
        self._components: list[Component] = []
        self._samplers: list[tuple[int, int, Callable[[int], None]]] = []

    def add(self, component: Component) -> None:
        """Register a component; step order is registration order."""
        self._components.append(component)

    def add_sampler(self, period: int, fn: Callable[[int], None]) -> None:
        """Call ``fn(cycle)`` every ``period`` cycles (probes, monitors).

        The sampler's phase is anchored to the cycle it is registered:
        the first call happens at the current cycle (if the simulator is
        about to execute it) and then every ``period`` cycles after, so
        a probe added mid-run (e.g. after warmup) samples aligned with
        its registration point rather than with absolute cycle zero.
        """
        if period < 1:
            raise ValueError("sampler period must be >= 1")
        self._samplers.append((period, self.cycle, fn))

    def run(self, cycles: int) -> None:
        """Advance exactly ``cycles`` cycles."""
        end = self.cycle + cycles
        components = self._components
        samplers = self._samplers
        while self.cycle < end:
            cycle = self.cycle
            for component in components:
                component.step(cycle)
            for period, anchor, fn in samplers:
                if (cycle - anchor) % period == 0:
                    fn(cycle)
            self.cycle = cycle + 1

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_period: int = 64,
    ) -> bool:
        """Run until ``predicate()`` holds (checked every ``check_period``
        cycles) or ``max_cycles`` elapse.  Returns True if it held."""
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            if predicate():
                return True
            self.run(min(check_period, deadline - self.cycle))
        return predicate()
