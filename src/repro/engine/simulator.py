"""The cycle loop.

The simulator advances global time one channel-clock cycle at a time and
calls ``step(cycle)`` on every registered component in registration order.
Determinism rules:

* components only read channel items whose delivery time has arrived, and
  every channel has latency >= 1, so intra-cycle step order never changes
  what a component can observe from another component;
* all randomness flows through :class:`repro.engine.rng.DeterministicRng`.

Two kernels share those rules (``docs/PERFORMANCE.md``):

* ``polling`` steps every component every cycle — the original loop,
  kept as a byte-identical reference;
* ``event`` (default) keeps a *wake list*: components that implement
  ``next_active_cycle(cycle)`` may report the next cycle at which their
  ``step`` would do anything (or None for "only an external wake can
  revive me"), and the kernel skips them — and, when nothing at all is
  runnable, skips whole stretches of cycles — until that time.  A
  component may only report a cycle later than ``cycle + 1`` if every
  skipped ``step`` would have been a provable no-op (no state change, no
  RNG draw, no counter increment), which is what makes the two kernels
  byte-identical.  Components without the method are stepped every cycle.

Wakes from the outside (a channel ``send`` targeting a sleeping
consumer, a message posted by trace replay) arrive through
:meth:`Simulator.wake` / :meth:`Simulator.wake_component`.

Internal switch speedup (the paper's 1.3x core overclock) is handled inside
the switch component itself via a pass schedule derived from the absolute
cycle number, not by a second clock domain here.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Protocol

__all__ = ["Component", "Simulator", "WakeContractError"]

#: sleeping with no self-scheduled wake (only an external wake revives)
_NEVER = 1 << 62

#: status sentinel: the component is on the active list (stepped every cycle)
_ACTIVE = -1


class Component(Protocol):
    """Anything the simulator steps once per cycle."""

    def step(self, cycle: int) -> None:
        """Advance this component to the end of ``cycle``."""
        ...


class WakeContractError(RuntimeError):
    """A sleeping component turned out to have work earlier than its
    declared wake cycle: some mutation of its wake-relevant state was not
    paired with a :meth:`Simulator.wake`.  Raised only under
    ``Simulator(verify_wake=True)`` (docs/WAKE_CONTRACT.md)."""


def _pending_state(component: Component) -> str:
    """Names and sizes of the component's non-empty containers — the
    attribute context for a wake-contract violation report."""
    names: list[str] = []
    for klass in type(component).__mro__:
        names.extend(getattr(klass, "__slots__", ()))
    if not names:
        names = list(getattr(component, "__dict__", {}))
    parts: list[str] = []
    for name in names:
        try:
            value = getattr(component, name)
        except AttributeError:
            continue
        if isinstance(value, (list, deque, dict, set, frozenset)) and value:
            parts.append(f"{name}[{len(value)}]")
        if len(parts) >= 8:
            break
    return ", ".join(parts) if parts else "(no non-empty containers)"


class Simulator:
    """Owns global time and the ordered component list."""

    def __init__(self, kernel: str = "event", verify_wake: bool = False) -> None:
        if kernel not in ("polling", "event"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        #: shadow mode: re-probe sleeping components' next_active_cycle on
        #: every executed cycle and raise WakeContractError on a missed
        #: wake.  Debug-only; the event kernel pays nothing when False.
        self.verify_wake = verify_wake
        self.cycle = 0
        self._components: list[Component] = []
        self._samplers: list[tuple[int, int, Callable[[int], None]]] = []
        # event-kernel state, all indexed by registration order:
        self._nac: list[Callable[[int], "int | None"] | None] = []
        self._status: list[int] = []  # _ACTIVE | scheduled wake | _NEVER
        self._active: list[int] = []  # sorted indices stepped every cycle
        self._heap: list[tuple[int, int]] = []  # (wake cycle, idx), lazy
        self._index: dict[int, int] = {}  # id(component) -> idx

    def add(self, component: Component) -> None:
        """Register a component; step order is registration order."""
        idx = len(self._components)
        self._components.append(component)
        self._index[id(component)] = idx
        self._nac.append(getattr(component, "next_active_cycle", None))
        self._status.append(_ACTIVE)
        self._active.append(idx)  # indices grow, so append keeps it sorted

    def index_of(self, component: Component) -> "int | None":
        """The registration index of ``component`` (wake target), or None."""
        return self._index.get(id(component))

    # -- wake list -----------------------------------------------------

    def wake(self, idx: int, cycle: int) -> None:
        """Schedule component ``idx`` to step at ``cycle`` (or earlier if
        already scheduled sooner).  No-op for active components and under
        the polling kernel (everything is always stepped there).

        ``cycle`` must not be earlier than the current cycle: a stale
        wake means the caller discovered work the target should already
        have processed — a wake-contract violation (wakecheck WAKE002),
        not something to silently clamp.
        """
        if cycle < self.cycle:
            raise ValueError(
                f"stale wake: component {idx} woken for cycle {cycle}, "
                f"behind the current cycle {self.cycle} (wake-contract "
                "violation; see docs/WAKE_CONTRACT.md)"
            )
        status = self._status
        if status[idx] <= cycle:  # _ACTIVE, or an equal/earlier wake
            return
        status[idx] = cycle
        heappush(self._heap, (cycle, idx))

    def wake_component(self, component: Component, cycle: int) -> None:
        """:meth:`wake` by object; unregistered components are ignored."""
        idx = self._index.get(id(component))
        if idx is not None:
            self.wake(idx, cycle)

    # -- samplers ------------------------------------------------------

    def add_sampler(self, period: int, fn: Callable[[int], None]) -> None:
        """Call ``fn(cycle)`` every ``period`` cycles (probes, monitors).

        The sampler's phase is anchored to the cycle it is registered:
        the first call happens at the current cycle (if the simulator is
        about to execute it) and then every ``period`` cycles after, so
        a probe added mid-run (e.g. after warmup) samples aligned with
        its registration point rather than with absolute cycle zero.
        """
        if period < 1:
            raise ValueError("sampler period must be >= 1")
        self._samplers.append((period, self.cycle, fn))

    # -- run control ---------------------------------------------------

    def run(self, cycles: int) -> None:
        """Advance exactly ``cycles`` cycles."""
        end = self.cycle + cycles
        if self.kernel == "event":
            self._run_event(end, None)
        else:
            self._run_polling(end, None)

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_period: int = 64,
    ) -> bool:
        """Run until ``predicate()`` holds or ``max_cycles`` elapse.

        The predicate is evaluated before running and then after every
        *executed* cycle, so the loop stops at the first cycle boundary
        where it holds — it no longer overshoots by up to a check
        period.  ``check_period`` is retained for API compatibility and
        ignored.  Under the event kernel, cycles skipped as globally
        idle are not re-checked: component state cannot change across a
        skip, so a state-based predicate (the only kind used here) holds
        at the first executed cycle if it holds at all.  Returns True if
        the predicate held.
        """
        del check_period  # exact stop: checked after every executed cycle
        if predicate():
            return True
        deadline = self.cycle + max_cycles
        if self.kernel == "event":
            return self._run_event(deadline, predicate)
        return self._run_polling(deadline, predicate)

    # -- kernels -------------------------------------------------------

    def _run_polling(
        self, end: int, until: "Callable[[], bool] | None"
    ) -> bool:
        """Reference kernel: every component, every cycle."""
        components = self._components
        samplers = self._samplers
        while self.cycle < end:
            cycle = self.cycle
            for component in components:
                component.step(cycle)
            for period, anchor, fn in samplers:
                if (cycle - anchor) % period == 0:
                    fn(cycle)
            self.cycle = cycle + 1
            if until is not None and until():
                return True
        return False

    def _run_event(
        self, end: int, until: "Callable[[], bool] | None"
    ) -> bool:
        """Wake-list kernel: skip sleeping components and idle cycles."""
        components = self._components
        nacs = self._nac
        status = self._status
        active = self._active
        heap = self._heap
        samplers = self._samplers
        verify = self.verify_wake
        while self.cycle < end:
            cycle = self.cycle
            while heap and heap[0][0] <= cycle:
                c, idx = heappop(heap)
                if status[idx] == c:  # stale entries fail this check
                    status[idx] = _ACTIVE
                    insort(active, idx)
            if active:
                for idx in active:
                    components[idx].step(cycle)
            for period, anchor, fn in samplers:
                if (cycle - anchor) % period == 0:
                    fn(cycle)
            if active:
                # re-arm: busy components stay hot; the rest go to the
                # heap (or all the way to sleep) per next_active_cycle
                demoted: "list[int] | None" = None
                for idx in active:
                    nac = nacs[idx]
                    if nac is None:
                        continue  # no protocol: always stepped
                    wake = nac(cycle)
                    if wake is not None and wake <= cycle + 1:
                        continue
                    if wake is None:
                        status[idx] = _NEVER
                    else:
                        status[idx] = wake
                        heappush(heap, (wake, idx))
                    if demoted is None:
                        demoted = []
                    demoted.append(idx)
                if demoted is not None:
                    drop = set(demoted)
                    active[:] = [i for i in active if i not in drop]
            if verify:
                self._verify_sleepers(cycle)
            self.cycle = cycle + 1
            if until is not None and until():
                return True
            if not active:
                # globally idle: jump to the next wake, the next sampler
                # firing, or the end of the span — whichever comes first
                target = end
                if heap and heap[0][0] < target:
                    target = heap[0][0]
                now = self.cycle
                for period, anchor, _fn in samplers:
                    rem = (now - anchor) % period
                    fire = now if rem == 0 else now + period - rem
                    if fire < target:
                        target = fire
                if target > now:
                    self.cycle = target
        return False

    def _verify_sleepers(self, cycle: int) -> None:
        """Shadow check (``verify_wake=True``): every sleeping component's
        ``next_active_cycle``, re-evaluated now, must not be earlier than
        the wake it declared when it went to sleep.  If it is, some state
        mutation since then was not paired with a wake, and the component
        would have slept through real work."""
        nacs = self._nac
        components = self._components
        for idx, declared in enumerate(self._status):
            if declared <= cycle + 1:
                continue  # active, or due at the very next cycle anyway
            nac = nacs[idx]
            if nac is None:
                continue
            fresh = nac(cycle)
            if fresh is not None and fresh < declared:
                component = components[idx]
                declared_text = (
                    "never (external wake only)"
                    if declared >= _NEVER else f"cycle {declared}"
                )
                raise WakeContractError(
                    f"missed wake at cycle {cycle}: "
                    f"{type(component).__name__} (component #{idx}) "
                    f"declared its next work at {declared_text}, but "
                    f"next_active_cycle({cycle}) now reports {fresh}; "
                    f"pending state: {_pending_state(component)}. "
                    "A mutation of its wake-relevant state was not paired "
                    "with Simulator.wake — run "
                    "`python -m repro.devtools.wakecheck src/` "
                    "(docs/WAKE_CONTRACT.md)."
                )
