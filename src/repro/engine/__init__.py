"""Simulation kernel: cycle loop, channels, configuration, statistics.

This package is the BookSim-substitute substrate: a deterministic,
cycle-level simulation engine that the switch, endpoint, and protocol
models plug into.
"""

from repro.engine.channel import Channel, CreditChannel
from repro.engine.config import (
    EcnParams,
    NetworkConfig,
    ObsParams,
    ReliabilityParams,
    SimParams,
    StashParams,
    SwitchParams,
    paper_preset,
    small_preset,
    tiny_preset,
)
from repro.engine.parallel import (
    RunOutcome,
    RunSpec,
    SweepError,
    Timed,
    derive_run_seed,
    drain_run_log,
    run_specs,
)
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Component, Simulator
from repro.engine.stats import (
    Histogram,
    LatencyStats,
    RateMeter,
    TimeSeries,
)

__all__ = [
    "Channel",
    "Component",
    "CreditChannel",
    "DeterministicRng",
    "EcnParams",
    "Histogram",
    "LatencyStats",
    "NetworkConfig",
    "ObsParams",
    "RateMeter",
    "ReliabilityParams",
    "RunOutcome",
    "RunSpec",
    "SimParams",
    "Simulator",
    "StashParams",
    "SweepError",
    "SwitchParams",
    "TimeSeries",
    "Timed",
    "derive_run_seed",
    "drain_run_log",
    "paper_preset",
    "run_specs",
    "small_preset",
    "tiny_preset",
]
