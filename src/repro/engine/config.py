"""Configuration dataclasses and experiment presets.

The paper's evaluation (Section V) fixes one hardware configuration: a
20-port tiled switch (``R=C=4``, ``I=O=5``), six network VCs, 10 KB input
and output buffers per port (1000 ten-byte flits), 24-flit packets, a 1.3x
internal speedup, and a 3080-node dragonfly (``p=5, a=11, h=5, g=56``)
with 5/40/500 ns channel latencies.  :func:`paper_preset` reproduces those
constants exactly.

Because this reproduction simulates in pure Python, the default presets
(:func:`tiny_preset`, :func:`small_preset`) scale the topology, channel
latencies, buffer depths, and protocol constants *together* so that every
dimensionless ratio the paper's conclusions rest on is preserved:

* buffer depth = one link round-trip of flits (Section II);
* stash fractions 7/8 (endpoint), 3/4 (local), 0 (global) (Section V);
* ECN window ~ 4x the max-RTT buffer, 50 % occupancy threshold, x0.8
  multiplicative decrease, additive recovery of one flit per ~RTT/33
  cycles (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DragonflyParams",
    "EcnParams",
    "LinkParams",
    "NetworkConfig",
    "ObsParams",
    "OrderingParams",
    "ReliabilityParams",
    "SimParams",
    "StashParams",
    "SwitchParams",
    "paper_preset",
    "rtt_buffer_flits",
    "small_preset",
    "tiny_preset",
]


def rtt_buffer_flits(latency: int, slack: int = 16) -> int:
    """Buffer depth (flits) covering one credit round trip on a link.

    The paper sizes each port's input and output buffers for "roughly one
    link round-trip time's worth of data" (Section II).  ``slack`` covers
    the internal pipeline stages on both sides of the link.
    """
    return 2 * int(latency) + int(slack)


@dataclass(frozen=True)
class SwitchParams:
    """Microarchitecture of one tiled switch (paper Figures 1-3)."""

    num_ports: int = 20
    rows: int = 4
    cols: int = 4
    num_vcs: int = 6
    input_buffer_flits: int = 1000
    output_buffer_flits: int = 1000
    row_buffer_packets: int = 4
    col_buffer_packets: int = 4
    max_packet_flits: int = 24
    speedup: float = 1.3
    sideband_latency: int = 8

    def __post_init__(self) -> None:
        if self.num_ports % self.rows:
            raise ValueError(
                f"num_ports={self.num_ports} not divisible by rows={self.rows}"
            )
        if self.num_ports % self.cols:
            raise ValueError(
                f"num_ports={self.num_ports} not divisible by cols={self.cols}"
            )
        if self.num_vcs < 1:
            raise ValueError("need at least one network VC")
        if self.max_packet_flits < 1:
            raise ValueError("max_packet_flits must be positive")
        if self.speedup < 1.0:
            raise ValueError("internal speedup below 1.0 would starve the core")
        if self.input_buffer_flits < self.max_packet_flits:
            raise ValueError("input buffer smaller than one packet")
        if self.output_buffer_flits < self.max_packet_flits:
            raise ValueError("output buffer smaller than one packet")

    @property
    def tile_inputs(self) -> int:
        """I: switch inputs feeding each tile row (P = R * I)."""
        return self.num_ports // self.rows

    @property
    def tile_outputs(self) -> int:
        """O: tile outputs per column (P = C * O)."""
        return self.num_ports // self.cols

    @property
    def row_buffer_flits(self) -> int:
        """Row-bus buffer depth per tile, in flits."""
        return self.row_buffer_packets * self.max_packet_flits

    @property
    def col_buffer_flits(self) -> int:
        """Column-channel buffer depth per tile output, in flits."""
        return self.col_buffer_packets * self.max_packet_flits

    @property
    def internal_bandwidth_ratio(self) -> int:
        """Column-channel bandwidth over switch radix; R in the paper."""
        return self.rows


@dataclass(frozen=True)
class StashParams:
    """Stash partitioning of the port buffers (paper Section III, V).

    ``capacity_scale`` implements the paper's 100 % / 50 % / 25 % capacity
    sensitivity sweeps: it scales every port's stash partition after the
    per-class fraction is applied.
    """

    enabled: bool = False
    frac_endpoint: float = 7 / 8
    frac_local: float = 3 / 4
    frac_global: float = 0.0
    capacity_scale: float = 1.0
    #: "jsq" (paper Section III-A) or "random" (ablation baseline)
    placement: str = "jsq"

    def __post_init__(self) -> None:
        for name in ("frac_endpoint", "frac_local", "frac_global"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name}={value} must be in [0, 1)")
        if not 0.0 <= self.capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in [0, 1]")
        if self.placement not in ("jsq", "random"):
            raise ValueError("placement must be 'jsq' or 'random'")

    def fraction_for(self, port_class: str) -> float:
        """Stash fraction of the port buffer for a link class."""
        if port_class == "endpoint":
            return self.frac_endpoint
        if port_class == "local":
            return self.frac_local
        if port_class == "global":
            return self.frac_global
        raise ValueError(f"unknown port class {port_class!r}")


@dataclass(frozen=True)
class ReliabilityParams:
    """End-to-end retransmission via first-hop stashing (Section IV-A)."""

    enabled: bool = False
    #: probability an injected packet is delivered corrupted, triggering a
    #: NACK and retransmission from the stash.  The paper runs error-free
    #: (it "did not simulate the retrieval or retransmission"); fault
    #: injection is our extension and exercised only by tests.
    error_rate: float = 0.0
    #: delay (cycles) before a NACKed packet is retrieved and re-sent.
    #: 0 retransmits immediately; a positive pace implements the
    #: SRP/LHRP-style throttling of Section IV-C ("dropped and then
    #: scheduled for retransmission at a reduced pace"), keeping
    #: retransmissions from re-feeding the congestion that dropped them.
    retransmit_pace: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        if self.retransmit_pace < 0:
            raise ValueError("retransmit_pace must be non-negative")


@dataclass(frozen=True)
class EcnParams:
    """ECN congestion control (paper Section IV-B)."""

    enabled: bool = False
    window_max_flits: int = 4096
    window_min_flits: int = 24
    congestion_threshold: float = 0.5
    window_decrease: float = 0.8
    recovery_period: int = 30
    recovery_flits: int = 1
    #: stash HoL-blocked packets while congested (the paper's second use
    #: case); requires StashParams.enabled.
    stash_on_congestion: bool = False

    def __post_init__(self) -> None:
        if self.window_min_flits < 1 or self.window_max_flits < self.window_min_flits:
            raise ValueError("window bounds are inconsistent")
        if not 0.0 < self.congestion_threshold < 1.0:
            raise ValueError("congestion_threshold must be in (0, 1)")
        if not 0.0 < self.window_decrease < 1.0:
            raise ValueError("window_decrease must be in (0, 1)")
        if self.recovery_period < 1 or self.recovery_flits < 1:
            raise ValueError("recovery parameters must be positive")


@dataclass(frozen=True)
class LinkParams:
    """Link-level retransmission (paper Sections I-II).

    The paper's switches recover from link errors by retransmission from
    the RTT-sized output buffers — the buffering stashing repurposes.
    With ``enabled=False`` (default) only the capacity effect is
    modelled (output space retained one RTT after transmission); with
    the protocol enabled, flits carry link sequence numbers, the channel
    corrupts them with ``error_rate``, and a go-back-N sender/receiver
    pair (:mod:`repro.protocol.link`) replays from the retained window.
    """

    enabled: bool = False
    error_rate: float = 0.0
    #: cumulative ACK cadence in flits; 1 acknowledges every flit
    ack_interval: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("link error_rate must be in [0, 1)")
        if self.ack_interval < 1:
            raise ValueError("ack_interval must be >= 1")
        if self.error_rate > 0.0 and not self.enabled:
            raise ValueError("link error injection requires enabled=True")


@dataclass(frozen=True)
class OrderingParams:
    """Destination-side packet order enforcement (paper Section IV-C).

    When enabled, every endpoint delivers each message's packets to the
    application strictly in sequence order, holding early arrivals in a
    bounded reorder buffer; an early packet that does not fit is dropped
    and negatively acknowledged, and the sender's first-hop stash copy
    retransmits it.  Requires end-to-end reliability.
    """

    enabled: bool = False
    buffer_flits: int = 256

    def __post_init__(self) -> None:
        if self.buffer_flits < 1:
            raise ValueError("reorder buffer needs at least one flit")


@dataclass(frozen=True)
class DragonflyParams:
    """Canonical dragonfly (paper Section V).

    ``p`` endpoints, ``a`` switches per fully connected group, ``h``
    global channels per switch; ``num_groups`` defaults to the canonical
    maximum ``a*h + 1`` where every group pair shares exactly one global
    channel.
    """

    p: int = 5
    a: int = 11
    h: int = 5
    num_groups: int = 0  # 0 -> canonical a*h + 1
    latency_endpoint: int = 5
    latency_local: int = 40
    latency_global: int = 500

    def __post_init__(self) -> None:
        if min(self.p, self.a, self.h) < 1:
            raise ValueError("p, a, h must all be positive")
        groups = self.groups
        if groups < 2:
            raise ValueError("a dragonfly needs at least two groups")
        if groups > self.a * self.h + 1:
            raise ValueError(
                f"{groups} groups exceed the {self.a * self.h} global "
                "channels available per group"
            )
        if not (
            0 < self.latency_endpoint
            and self.latency_endpoint <= self.latency_local
            and self.latency_local <= self.latency_global
        ):
            raise ValueError("latencies must satisfy endpoint <= local <= global")

    @property
    def groups(self) -> int:
        """Group count: explicit override or the maximal a*h + 1."""
        return self.num_groups if self.num_groups else self.a * self.h + 1

    @property
    def switch_radix(self) -> int:
        """Ports used per switch: p endpoints + (a-1) locals + h globals."""
        return self.p + (self.a - 1) + self.h

    @property
    def num_switches(self) -> int:
        """Total switches: a per group."""
        return self.a * self.groups

    @property
    def num_nodes(self) -> int:
        """Total endpoints: p per switch."""
        return self.p * self.num_switches


@dataclass(frozen=True)
class SimParams:
    """Run control: phases, sampling, seeding, and the cycle kernel.

    ``kernel`` selects the cycle loop: ``"event"`` (default) skips
    quiescent components and idle cycles via the simulator's wake list;
    ``"polling"`` steps everything every cycle.  The two are
    byte-identical (see docs/PERFORMANCE.md); polling is the escape
    hatch / reference.

    ``verify_wake`` enables the event kernel's wake-contract shadow
    check: sleeping components are re-probed every executed cycle and a
    missed wake raises :class:`repro.engine.simulator.WakeContractError`
    (docs/WAKE_CONTRACT.md).  Debug/fuzz only — it restores the polling
    kernel's per-cycle cost.
    """

    seed: int = 1
    warmup_cycles: int = 2000
    measure_cycles: int = 10000
    drain_cycles: int = 20000
    sample_period: int = 100
    kernel: str = "event"
    verify_wake: bool = False

    def __post_init__(self) -> None:
        if min(self.warmup_cycles, self.measure_cycles, self.sample_period) < 0:
            raise ValueError("cycle counts must be non-negative")
        if self.sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        if self.kernel not in ("polling", "event"):
            raise ValueError("kernel must be 'polling' or 'event'")


@dataclass(frozen=True)
class ObsParams:
    """Observability (:mod:`repro.obs`): counters and event tracing.

    Disabled by default — the simulator then constructs no registry or
    trace at all, preserving the zero-overhead-when-off contract of
    docs/OBSERVABILITY.md.  ``trace_events`` restricts tracing to an
    allowlist of event types (empty = all); ``trace_start`` /
    ``trace_stop`` bound the traced cycle window; ``trace_stride`` keeps
    every N-th occurrence per event type; ``max_trace_records`` caps the
    in-memory trace buffer (overflow is counted, not stored).
    """

    enabled: bool = False
    trace: bool = False
    trace_events: tuple[str, ...] = ()
    trace_start: int = 0
    trace_stop: int | None = None
    trace_stride: int = 1
    max_trace_records: int = 1_000_000

    def __post_init__(self) -> None:
        if self.trace and not self.enabled:
            raise ValueError("tracing requires obs.enabled")
        if self.trace_start < 0:
            raise ValueError("trace_start must be non-negative")
        if self.trace_stop is not None and self.trace_stop <= self.trace_start:
            raise ValueError("trace_stop must exceed trace_start")
        if self.trace_stride < 1:
            raise ValueError("trace_stride must be >= 1")
        if self.max_trace_records < 1:
            raise ValueError("max_trace_records must be >= 1")


@dataclass(frozen=True)
class NetworkConfig:
    """Everything needed to build and run one simulated network."""

    switch: SwitchParams = field(default_factory=SwitchParams)
    dragonfly: DragonflyParams = field(default_factory=DragonflyParams)
    stash: StashParams = field(default_factory=StashParams)
    reliability: ReliabilityParams = field(default_factory=ReliabilityParams)
    ecn: EcnParams = field(default_factory=EcnParams)
    ordering: OrderingParams = field(default_factory=OrderingParams)
    link: LinkParams = field(default_factory=LinkParams)
    sim: SimParams = field(default_factory=SimParams)
    obs: ObsParams = field(default_factory=ObsParams)

    def __post_init__(self) -> None:
        if self.dragonfly.switch_radix > self.switch.num_ports:
            raise ValueError(
                f"dragonfly needs {self.dragonfly.switch_radix} ports but the "
                f"switch has {self.switch.num_ports}"
            )
        if self.reliability.enabled and not self.stash.enabled:
            raise ValueError("end-to-end reliability requires stashing")
        if self.ecn.stash_on_congestion and not self.stash.enabled:
            raise ValueError("stash_on_congestion requires stashing")
        if self.ecn.stash_on_congestion and not self.ecn.enabled:
            raise ValueError("stash_on_congestion requires ECN")
        if self.ordering.enabled and not self.reliability.enabled:
            raise ValueError(
                "packet order enforcement drops packets and relies on "
                "end-to-end retransmission; enable reliability"
            )

    def with_(self, **kwargs: object) -> "NetworkConfig":
        """A copy with top-level sections replaced (dataclass replace)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def paper_preset() -> NetworkConfig:
    """The exact published configuration (Section V).

    3080 nodes, 616 switches; only use this if you can afford hours of
    pure-Python simulation per data point.
    """
    return NetworkConfig(
        switch=SwitchParams(
            num_ports=20,
            rows=4,
            cols=4,
            num_vcs=6,
            input_buffer_flits=1000,
            output_buffer_flits=1000,
            max_packet_flits=24,
            speedup=1.3,
        ),
        dragonfly=DragonflyParams(
            p=5,
            a=11,
            h=5,
            latency_endpoint=5,
            latency_local=40,
            latency_global=500,
        ),
        ecn=EcnParams(
            window_max_flits=4096,
            recovery_period=30,
        ),
        sim=SimParams(
            warmup_cycles=20_000,
            measure_cycles=80_000,
            drain_cycles=200_000,
        ),
    )


def tiny_preset() -> NetworkConfig:
    """42-node dragonfly for fast experiments (default for benchmarks).

    p=2, a=3, h=2 -> 7 groups, 21 switches, 6-port switches tiled 2x2
    (I=O=3).  The scaled constants preserve the ratios the paper's
    results rest on:

    * 192-flit port buffers cover the global-link credit round trip
      (~128 flits) with margin, and the endpoint-port *normal* partition
      after 7/8 stashing (24 flits) still holds three 8-flit packets —
      proportionally what the paper's 125-flit normal partition holds
      in 24-flit packets;
    * the local-port stash fraction is 1/2 rather than the paper's 3/4:
      the paper's 3/4 leaves local ports ~3x their credit round trip of
      normal buffering (250 flits vs an ~88-flit RTT), and preserving
      that *ratio* at compressed latencies requires the smaller
      fraction — with 3/4 here, transit through local ports throttles
      injection to ~0.48 and every variant's curve collapses (the
      :func:`paper_preset` keeps 3/4);
    * at 25 % stash capacity an endpoint may keep ~130 flits
      outstanding against a ~350-cycle copy round trip, a Little's-law
      saturation near 0.4-0.5 — clearly below the baseline's
      saturation, reproducing Fig. 5's early-saturation shape;
    * the ECN window is ~4x the port buffer, as 4096 is to 1000.
    """
    return NetworkConfig(
        switch=SwitchParams(
            num_ports=6,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=192,
            output_buffer_flits=192,
            row_buffer_packets=4,
            col_buffer_packets=4,
            max_packet_flits=8,
            speedup=1.3,
            sideband_latency=4,
        ),
        stash=StashParams(frac_local=0.5),
        dragonfly=DragonflyParams(
            p=2,
            a=3,
            h=2,
            latency_endpoint=2,
            latency_local=8,
            latency_global=60,
        ),
        ecn=EcnParams(
            window_max_flits=768,
            window_min_flits=8,
            recovery_period=4,
        ),
        sim=SimParams(
            warmup_cycles=2000,
            measure_cycles=8000,
            drain_cycles=20000,
            sample_period=50,
        ),
    )


def small_preset() -> NetworkConfig:
    """108-node dragonfly: p=3, a=4, h=2 -> 9 groups, 8-port switches.

    Same ratio policy as :func:`tiny_preset`, one size up."""
    return NetworkConfig(
        switch=SwitchParams(
            num_ports=8,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=288,
            output_buffer_flits=288,
            max_packet_flits=12,
            speedup=1.3,
            sideband_latency=4,
        ),
        stash=StashParams(frac_local=0.5),
        dragonfly=DragonflyParams(
            p=3,
            a=4,
            h=2,
            latency_endpoint=2,
            latency_local=10,
            latency_global=80,
        ),
        ecn=EcnParams(
            window_max_flits=1152,
            window_min_flits=12,
            recovery_period=5,
        ),
        sim=SimParams(
            warmup_cycles=3000,
            measure_cycles=12000,
            drain_cycles=30000,
            sample_period=100,
        ),
    )
