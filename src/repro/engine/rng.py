"""Deterministic random number generation for reproducible simulations.

Every stochastic decision in the simulator (traffic generation, adaptive
routing tie-breaks, Valiant intermediate-group selection, ...) draws from a
:class:`DeterministicRng` seeded from the experiment seed plus a stable
stream label.  Two runs with the same configuration and seed produce
bit-identical results regardless of component construction order, because
each consumer owns an independent stream derived from its label.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["DeterministicRng"]


class DeterministicRng:
    """A labelled family of independent pseudo-random streams.

    Parameters
    ----------
    seed:
        Experiment-level seed.  All streams derive from it.

    Notes
    -----
    ``random.Random`` (Mersenne twister) is used instead of NumPy
    generators because the simulator draws single values in tight loops,
    where the pure-Python call path is faster than crossing into NumPy
    for scalars.  Bulk draws (workload pre-generation) should go through
    :meth:`numpy_seed` and use NumPy directly.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return (creating on first use) the stream for ``label``."""
        rng = self._streams.get(label)
        if rng is None:
            rng = random.Random(self._derive(label))
            self._streams[label] = rng
        return rng

    def numpy_seed(self, label: str) -> int:
        """A 32-bit seed for a NumPy generator tied to ``label``."""
        return self._derive(label) & 0xFFFFFFFF

    def _derive(self, label: str) -> int:
        # crc32 keyed mixing keeps derivation stable across Python runs
        # (hash() is salted per-process and must not be used here).
        mixed = zlib.crc32(label.encode("utf-8"))
        return (self.seed * 0x9E3779B1 + mixed * 0x85EBCA77) & 0x7FFFFFFFFFFFFFFF

    def fork(self, label: str) -> "DeterministicRng":
        """A child RNG family, independent of the parent's streams."""
        return DeterministicRng(self._derive("fork:" + label))
