"""The two-speed engine interface.

An :class:`Engine` consumes a :class:`repro.scenario.ScenarioSpec` and
produces an :class:`EngineResult` — the shared stats schema both speeds
emit.  Two implementations exist:

* :class:`CycleEngine` (``"cycle"``) adapts the existing cycle-accurate
  :class:`repro.network.Network` + :class:`repro.engine.simulator.
  Simulator`; it is the reference and the only engine that models the
  switch microarchitecture.
* :class:`repro.engine.fastpath.FlowEngine` (``"flow"``) solves a
  fluid max-min-fair bandwidth allocation over the same topology graph
  — orders of magnitude faster, validated against the cycle engine by
  :mod:`repro.analysis.crosscheck` (tolerances in docs/FASTPATH.md).

Select by name with :func:`get_engine`; the experiment runner threads
``--engine cycle|flow`` straight through here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenario.spec import ScenarioSpec

__all__ = [
    "CycleEngine",
    "Engine",
    "EngineResult",
    "EngineUnsupported",
    "GroupStats",
    "get_engine",
]


class EngineUnsupported(RuntimeError):
    """The selected engine cannot run this experiment/scenario."""


@dataclass(frozen=True)
class GroupStats:
    """Latency summary for one tracked traffic group (e.g. ``victim``)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def percentile(self, pct: float) -> float:
        """The pre-computed percentile closest to the query (50/90/99)."""
        table = {50.0: self.p50, 90.0: self.p90, 99.0: self.p99}
        if float(pct) not in table:
            raise ValueError(
                f"engine results carry p50/p90/p99 only, not p{pct:g}"
            )
        return table[float(pct)]


@dataclass(frozen=True)
class EngineResult:
    """The stats schema shared by every engine.

    Loads are flits/cycle/node over the measurement window; latencies
    are cycles.  ``groups`` holds per-traffic-group latency summaries
    keyed by the group names the scenario's traffic tracks (``victim``
    / ``aggressor``); ``extras`` carries engine-specific scalar probes
    (the cycle engine reports ``stash_stalls``, the flow engine
    ``bottleneck_utilization`` and ``ecn_steps``).
    """

    engine: str
    offered_load: float
    accepted_load: float
    avg_latency: float
    p90_latency: float
    p99_latency: float
    max_latency: float
    packets_measured: int
    cycles: int
    groups: tuple[tuple[str, GroupStats], ...] = ()
    extras: tuple[tuple[str, float], ...] = ()

    def group(self, name: str) -> GroupStats:
        """Stats for a named traffic group (e.g. ``"victim"``);
        raises :class:`KeyError` when the scenario defined no such
        group."""
        for group_name, stats in self.groups:
            if group_name == name:
                return stats
        raise KeyError(name)

    def extra(self, name: str, default: float = 0.0) -> float:
        """An engine-specific scalar (e.g. the cycle engine's
        ``stash_stalls``), or ``default`` when this engine doesn't
        emit it."""
        for key, value in self.extras:
            if key == name:
                return value
        return default


class Engine(Protocol):
    """Anything that can run a :class:`ScenarioSpec` to an
    :class:`EngineResult`."""

    name: str

    def run(self, spec: "ScenarioSpec") -> EngineResult:
        """Execute the scenario and return its aggregated stats."""
        ...


def _group_stats(stats) -> GroupStats:
    """Summarise a LatencyStats collector into the shared schema."""
    return GroupStats(
        count=stats.count,
        mean=stats.mean,
        p50=stats.percentile(50),
        p90=stats.percentile(90),
        p99=stats.percentile(99),
        max=stats.max,
    )


class CycleEngine:
    """Adapter: the cycle-accurate simulator behind the Engine protocol.

    Builds the network via :func:`repro.scenario.spec.build_network`
    (the byte-identity-preserving materialisation) and drives the
    standard warmup / measure / (optional drain) phases.
    """

    name = "cycle"

    def run(self, spec: "ScenarioSpec") -> EngineResult:
        """Simulate the scenario flit-by-flit and aggregate its stats."""
        from repro.scenario.spec import build_network

        net = build_network(spec)
        res = net.run_standard(drain=spec.drain)
        groups = tuple(
            (name, _group_stats(net.group_latency[name]))
            for name in sorted(net.group_latency)
        )
        stalls = sum(
            ip.stall_no_stash for sw in net.switches for ip in sw.in_ports
        )
        return EngineResult(
            engine=self.name,
            offered_load=res.offered_load,
            accepted_load=res.accepted_load,
            avg_latency=res.avg_latency,
            p90_latency=res.p90_latency,
            p99_latency=res.p99_latency,
            max_latency=res.max_latency,
            packets_measured=res.packets_measured,
            cycles=net.sim.cycle,
            groups=groups,
            extras=(("stash_stalls", float(stalls)),),
        )


ENGINE_NAMES = ("cycle", "flow")


def get_engine(name: str) -> Engine:
    """Resolve an engine by its runner name (``cycle`` or ``flow``)."""
    if name == "cycle":
        return CycleEngine()
    if name == "flow":
        from repro.engine.fastpath import FlowEngine

        return FlowEngine()
    raise ValueError(f"unknown engine {name!r}; choose from {ENGINE_NAMES}")
