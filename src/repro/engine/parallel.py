"""Parallel deterministic sweep execution.

Every experiment in this reproduction is a sweep of *independent*
simulation points (per-load, per-variant, per-app, ...).  This module
runs such sweeps across a process pool without sacrificing the
engine's core guarantee: **same config + seed => bit-identical
results, regardless of worker count or completion order**.

The contract has three parts:

* :class:`RunSpec` — one picklable simulation point: a module-level
  callable, its arguments, and a pre-derived per-run seed.  Because the
  seed is derived *when the spec is built* (from the experiment seed and
  the point's stable label via :meth:`DeterministicRng.fork`), it does
  not depend on which worker executes the point or when.
* :func:`run_specs` — the executor.  ``jobs <= 1`` runs every spec
  in-process (the default; no pool, no pickling overhead), ``jobs > 1``
  fans out over a :class:`~concurrent.futures.ProcessPoolExecutor` with
  bounded retry when a worker crashes.  Either way the returned list is
  in spec order.
* :class:`RunOutcome` — per-run wall-clock timing (and simulated
  cycles-per-second when the point function reports cycles via
  :class:`Timed`), so sweeps can account for where the time went.

Point functions must be module-level (picklable by reference) and accept
a ``seed`` keyword argument when the spec carries one.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.engine.rng import DeterministicRng
from repro.obs.observer import ObsCapture, live_mark, take_captures

__all__ = [
    "RunOutcome",
    "RunSpec",
    "SweepError",
    "Timed",
    "derive_run_seed",
    "drain_run_log",
    "run_specs",
]


def derive_run_seed(base_seed: int, label: str) -> int:
    """The per-run seed for the sweep point labelled ``label``.

    Depends only on the experiment seed and the label — never on worker
    count, scheduling, or completion order — so a sweep is bit-identical
    however it is executed.
    """
    return DeterministicRng(base_seed).fork(label).seed


@dataclass(frozen=True)
class Timed:
    """Optional return wrapper: a point's value plus its simulated cycle
    count, enabling cycles-per-second reporting in :class:`RunOutcome`."""

    value: Any
    cycles: int


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation point of a sweep.

    ``fn`` must be a module-level callable and ``args``/``kwargs`` plain
    picklable data (the config dataclasses are).  When ``seed`` is set,
    the executor passes it to ``fn`` as a ``seed`` keyword argument.
    """

    key: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed: int | None = None


@dataclass
class RunOutcome:
    """The result of executing one :class:`RunSpec`."""

    key: Any
    value: Any
    seed: int | None
    wall_seconds: float
    cycles: int | None
    attempts: int
    # observability captures from networks built by this point (empty
    # unless the point's config enables repro.obs)
    obs: tuple = ()

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (0.0 if unknown)."""
        if not self.cycles or self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds


class SweepError(RuntimeError):
    """A sweep point kept failing after its retry budget was exhausted."""


def _run_point(
    index: int, spec: RunSpec
) -> tuple[int, Any, float, int | None, tuple]:
    """Execute one spec (in-process or inside a pool worker).

    Observability captures are scooped with a ``live_mark()`` /
    ``take_captures(mark)`` bracket so the point only collects the
    networks it built itself, wherever the worker runs."""
    kwargs = dict(spec.kwargs)
    if spec.seed is not None:
        kwargs["seed"] = spec.seed
    mark = live_mark()
    t0 = time.perf_counter()
    value = spec.fn(*spec.args, **kwargs)
    wall = time.perf_counter() - t0
    caps = tuple(take_captures(mark))
    cycles: int | None = None
    if isinstance(value, Timed):
        value, cycles = value.value, value.cycles
    return index, value, wall, cycles, caps


def run_specs(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    max_retries: int = 1,
    progress: Callable[[int, int, RunOutcome], None] | None = None,
) -> list[RunOutcome]:
    """Execute every spec and return outcomes **in spec order**.

    ``jobs <= 1`` (the default) runs serially in-process — exactly the
    pre-pool behavior, with no worker processes spawned.  ``jobs > 1``
    fans out over a process pool; a spec whose worker crashes (or
    raises) is resubmitted up to ``max_retries`` extra times before
    :class:`SweepError` is raised.  ``progress`` (if given) is called as
    ``progress(done, total, outcome)`` after each point completes.

    Because every spec carries its own pre-derived seed, the results are
    identical for any ``jobs`` value.
    """
    specs = list(specs)
    total = len(specs)
    results: list[RunOutcome | None] = [None] * total
    done = 0
    global _sweep_seq
    seq = _sweep_seq
    _sweep_seq += 1

    def finish(i: int, value: Any, wall: float, cycles: int | None,
               caps: tuple, attempts: int) -> None:
        nonlocal done
        outcome = RunOutcome(
            key=specs[i].key,
            value=value,
            seed=specs[i].seed,
            wall_seconds=wall,
            cycles=cycles,
            attempts=attempts,
            obs=caps,
        )
        results[i] = outcome
        done += 1
        if caps:
            _run_log.append((seq, i, caps))
        if progress is not None:
            progress(done, total, outcome)

    if jobs <= 1 or total <= 1:
        for i, spec in enumerate(specs):
            _, value, wall, cycles, caps = _run_point(i, spec)
            finish(i, value, wall, cycles, caps, attempts=1)
        return results  # type: ignore[return-value]

    attempts = [0] * total
    pending = list(range(total))
    while pending:
        for i in pending:
            attempts[i] += 1
        retry: list[int] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_run_point, i, specs[i]): i for i in pending
            }
            for fut in as_completed(futures):
                i = futures[fut]
                try:
                    _, value, wall, cycles, caps = fut.result()
                except Exception as exc:
                    # worker crash (BrokenProcessPool) or raised exception
                    if attempts[i] > max_retries:
                        raise SweepError(
                            f"sweep point {specs[i].key!r} failed after "
                            f"{attempts[i]} attempt(s): {exc!r}"
                        ) from exc
                    retry.append(i)
                    continue
                finish(i, value, wall, cycles, caps, attempts=attempts[i])
        pending = retry
    return results  # type: ignore[return-value]


# -- observability run log ---------------------------------------------
#
# Captures taken by sweep points, keyed (sweep sequence, spec index) so
# draining yields the same order however the points were scheduled.

_run_log: list[tuple[int, int, tuple]] = []
_sweep_seq = 0


def drain_run_log() -> list[ObsCapture]:
    """Return every capture logged by sweeps since the last drain.

    Ordered by (sweep sequence, spec index) — deterministic for any
    ``jobs`` value — with each point's captures in construction order.
    """
    entries = sorted(_run_log, key=lambda e: (e[0], e[1]))
    del _run_log[:]
    return [cap for _seq, _i, caps in entries for cap in caps]
