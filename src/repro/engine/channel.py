"""Fixed-latency channels connecting switches and endpoints.

A :class:`Channel` models a unidirectional network link (or internal
side-band wire) with constant latency measured in cycles: items ``send()``-ed
at cycle *t* become visible to ``recv_ready()`` at cycle ``t + latency``.
Bandwidth is enforced by the senders (one flit per cycle per link); the
channel itself is a pure delay line.

A channel may be bound to the simulator's wake list
(:meth:`Channel.bind_wake`): every send then wakes the consuming
component at the delivery cycle, which is what lets the event kernel put
idle consumers to sleep without missing arrivals.

:class:`CreditChannel` is the same delay line specialised for credits, which
travel opposite to flits on the paired reverse wire.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generic, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

T = TypeVar("T")

__all__ = ["Channel", "CreditChannel"]


class Channel(Generic[T]):
    """Constant-latency FIFO delay line."""

    __slots__ = ("latency", "name", "_queue", "_wake_sim", "_wake_idx")

    def __init__(self, latency: int, name: str = "") -> None:
        if latency < 1:
            raise ValueError("channel latency must be at least one cycle")
        self.latency = latency
        self.name = name
        self._queue: deque[tuple[int, T]] = deque()
        self._wake_sim: "Simulator | None" = None
        self._wake_idx = -1

    def bind_wake(self, sim: "Simulator", idx: int) -> None:
        """Wake simulator component ``idx`` whenever a send arrives."""
        self._wake_sim = sim
        self._wake_idx = idx

    def send(self, item: T, cycle: int) -> None:
        """Enqueue ``item`` for delivery at ``cycle + latency``.

        Sends must be issued with non-decreasing cycles (the simulator's
        cycle loop guarantees this); FIFO order then equals delivery
        order.  An out-of-order send raises: it would silently corrupt
        delivery order and the event kernel's next-arrival deadline.
        """
        q = self._queue
        deliver = cycle + self.latency
        if q and deliver < q[-1][0]:
            raise ValueError(
                f"out-of-order send on {self.name or 'channel'}: cycle "
                f"{cycle} is below the queue tail's {q[-1][0] - self.latency}"
            )
        q.append((deliver, item))
        sim = self._wake_sim
        # wake() no-ops unless the consumer sleeps past the delivery
        # cycle; checking its status here skips the call on the hot path
        # (deliver > sim.cycle always holds, so no clamping is needed)
        if sim is not None and sim._status[self._wake_idx] > deliver:
            sim.wake(self._wake_idx, deliver)

    def recv_ready(self, cycle: int) -> list[T]:
        """Every item whose delivery time has arrived, drained eagerly.

        Returns a list rather than a lazy generator: a caller that stops
        iterating early must not leave already-due items queued for a
        later cycle, which would silently reorder delivery relative to
        the credits accompanying them.
        """
        q = self._queue
        if not q or q[0][0] > cycle:
            return []
        out: list[T] = []
        while q and q[0][0] <= cycle:
            out.append(q.popleft()[1])
        return out

    def peek_ready(self, cycle: int) -> T | None:
        """The next due item without draining it, or None."""
        if self._queue and self._queue[0][0] <= cycle:
            return self._queue[0][1]
        return None

    @property
    def next_deadline(self) -> int | None:
        """Delivery cycle of the oldest in-flight item, or None."""
        q = self._queue
        return q[0][0] if q else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        """True when nothing is in flight on this channel."""
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name or '?'}, lat={self.latency}, n={len(self)})"


class CreditChannel(Channel[Any]):
    """Reverse-direction credit wire paired with a flit channel.

    Credits are ``(vc, flits)`` tuples; the receiving output port applies
    them to its mirror of the downstream input buffer.
    """

    def send_credit(self, vc: int, flits: int, cycle: int) -> None:
        """Return ``flits`` credits for VC ``vc`` upstream."""
        self.send((vc, flits), cycle)
