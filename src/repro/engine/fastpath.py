"""Flow-level fastpath engine: fluid bandwidth allocation over the
scenario topology.

Where the cycle engine moves individual flits through a modelled switch
microarchitecture, :class:`FlowEngine` treats traffic as fluid flows and
solves for the steady state directly:

* **Topology graph** — the *same* topology objects the cycle engine
  wires (:mod:`repro.topology`), flattened into directed unit-capacity
  links (injection, ejection, local, global).  Routes are minimal; the
  fat-tree splits flows evenly across spines (fluid ECMP).
* **Max-min fair sharing** — progressive filling: all unfrozen flows
  grow at the same rate until a link saturates or a flow reaches its
  demand, the allocation a fair per-flit arbiter converges to.
* **ACK background traffic** — the cycle engine acknowledges every
  delivered data packet with a priority single-flit ACK on the reverse
  path, so each link's data capacity is derated by the ACK load it
  carries (``rate / msg_flits`` per crossing flow).  Solved as a damped
  fixed point alongside the allocation.
* **Stash as a fluid buffer pool** — with end-to-end reliability each
  source switch holds a retransmission copy of every in-flight packet,
  so Little's law bounds its endpoints' aggregate rate:
  ``sum(rate_f * rtt_f) <= stash_pool_flits``.  The pool is a virtual
  link whose per-flow consumption coefficient is the flow's round-trip
  time — the same arithmetic as :mod:`repro.analysis.littles_law`, per
  switch instead of averaged, and the RTT includes the queueing delay
  of the current allocation (congestion inflates RTT, which tightens
  the pool, which throttles injection — the feedback loop behind the
  stash-variant throughput curves).
* **ECN as coarse time-stepped window dynamics** — each traffic class
  carries one fluid congestion window; every step the allocation is
  re-solved under ``rate <= window / rtt`` caps, then windows do
  multiplicative decrease (times ``window_decrease``) when a route link
  exceeds the congestion threshold and additive recovery otherwise.
  The reported numbers average the post-convergence tail of the steps.

Everything is closed-form floating point over sorted containers: no
RNG, no dict-order dependence — results are a pure function of the
:class:`~repro.scenario.spec.ScenarioSpec`, hence byte-identical for
any ``--jobs`` value.

Accuracy envelope (measured by :mod:`repro.analysis.crosscheck`; see
docs/FASTPATH.md): mean throughput within 10 % of the cycle engine on
the cross-validation presets; latency is trend-level only.  Transient
time-series experiments (fig7/fig8), trace replay (fig6), and
microarchitecture probes (occupancy, placement/speedup ablations)
remain cycle-only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.base import EngineResult, EngineUnsupported, GroupStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.config import NetworkConfig
    from repro.scenario.spec import ScenarioSpec
    from repro.topology.topology import Topology

__all__ = ["FlowEngine"]

#: per-switch-traversal pipeline cost (route + arbitration + crossbar),
#: calibrated against the cycle engine's zero-load latency
_HOP_CYCLES = 5.0

#: link utilization above which the fluid model reports ECN congestion
#: (occupancy thresholds only bind near saturation in steady state)
_ECN_UTILIZATION = 0.95

#: solver steps: ECN window dynamics need the longer schedule; plain
#: ack/rtt fixed points converge in a few damped iterations
_ECN_STEPS = 48
_FP_STEPS = 12

_EPS = 1e-12


@dataclass
class _Flow:
    """One aggregated fluid flow: ``weight`` unit sources on the same
    switch sharing a route, each offering ``demand`` flits/cycle."""

    links: tuple[int, ...]
    weight: float
    demand: float
    base_latency: float
    group: str
    klass: int  # ECN window class index
    msg_flits: int
    src_switch: int
    #: links the flow's ACKs consume, with the ACK-rate share per link
    ack_links: tuple[tuple[int, float], ...]
    #: virtual stash-pool link (consumed at coefficient rtt), or -1
    stash_link: int = -1
    #: congestion-aware round-trip estimate, updated by the solver
    rtt: float = 0.0
    #: queueing delay under the final allocation, set by the solver
    qdelay: float = 0.0

    def __post_init__(self) -> None:
        if self.rtt == 0.0:
            self.rtt = 2.0 * self.base_latency


class _LinkTable:
    """Directed links with capacities, addressed by stable string keys."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self.caps: list[float] = []

    def add(self, key: str, capacity: float) -> int:
        if key in self._ids:
            raise ValueError(f"duplicate link {key!r}")
        self._ids[key] = len(self.caps)
        self.caps.append(capacity)
        return self._ids[key]

    def ensure(self, key: str, capacity: float) -> int:
        if key not in self._ids:
            return self.add(key, capacity)
        return self._ids[key]

    def id(self, key: str) -> int:
        return self._ids[key]


def _maxmin(
    entries: list[tuple[tuple[int, ...], tuple[float, ...]]],
    weights: list[float],
    caps: list[float],
    demand_caps: list[float],
) -> list[float]:
    """Progressive-filling max-min fair allocation.

    Returns the per-unit rate of each flow.  ``demand_caps`` bounds each
    flow's per-unit rate; link ``l`` constrains
    ``sum(weight * coeff * rate) <= caps[l]``.
    """
    n = len(entries)
    alloc = [0.0] * n
    residual = list(caps)
    active = [demand_caps[i] > _EPS for i in range(n)]
    link_weight = [0.0] * len(caps)
    link_flows: list[list[int]] = [[] for _ in caps]
    for i, (links, coeffs) in enumerate(entries):
        if not active[i]:
            continue
        for l, c in zip(links, coeffs):
            link_weight[l] += weights[i] * c
            link_flows[l].append(i)

    def freeze(i: int) -> None:
        active[i] = False
        links, coeffs = entries[i]
        for l, c in zip(links, coeffs):
            link_weight[l] -= weights[i] * c

    remaining = sum(active)
    while remaining:
        inc = math.inf
        for l, w in enumerate(link_weight):
            if w > _EPS:
                inc = min(inc, residual[l] / w)
        for i in range(n):
            if active[i]:
                inc = min(inc, demand_caps[i] - alloc[i])
        if inc is math.inf:
            break
        inc = max(inc, 0.0)
        for i in range(n):
            if active[i]:
                alloc[i] += inc
        for l, w in enumerate(link_weight):
            if w > _EPS:
                residual[l] -= inc * w
        for i in range(n):
            if active[i] and alloc[i] >= demand_caps[i] - _EPS:
                freeze(i)
        for l in range(len(caps)):
            if residual[l] <= _EPS and link_weight[l] > _EPS:
                for i in link_flows[l]:
                    if active[i]:
                        freeze(i)
        new_remaining = sum(active)
        if new_remaining == remaining:
            break  # numerical stall; allocation is already feasible
        remaining = new_remaining
    return alloc


def _weighted_percentile(
    samples: list[tuple[float, float]], pct: float
) -> float:
    """Nearest-rank percentile of (value, weight) samples."""
    total = sum(w for _v, w in samples)
    if total <= 0.0:
        return math.nan
    ordered = sorted(samples)
    target = pct / 100.0 * total
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= target - _EPS:
            return value
    return ordered[-1][0]


class FlowEngine:
    """Flow-level fastpath behind the Engine protocol."""

    name = "flow"

    def __init__(self) -> None:
        #: member nodes behind each aggregated injection link
        self._inj_members: dict[int, tuple[int, ...]] = {}
        #: node -> its class injection link (for ACK contention)
        self._node_inj: dict[int, int] = {}

    # ------------------------------------------------------------------
    # topology graph
    # ------------------------------------------------------------------

    def _build_graph(self, topo: "Topology", links: _LinkTable) -> None:
        """One directed unit-capacity link per wired switch port."""
        for s in range(topo.num_switches):
            for spec in topo.switch_ports(s):
                if spec.link_class in ("local", "global"):
                    links.add(f"l:{s}.{spec.port}", 1.0)

    def _route(
        self, topo: "Topology", src_switch: int, dst_switch: int,
        links: _LinkTable,
    ) -> tuple[list[tuple[int, float]], float]:
        """Minimal switch-to-switch hops: ([(link id, latency)], #switches)."""
        from repro.topology.dragonfly import DragonflyTopology
        from repro.topology.single_switch import SingleSwitchTopology

        if isinstance(topo, SingleSwitchTopology) or src_switch == dst_switch:
            return [], 1.0
        if isinstance(topo, DragonflyTopology):
            hops: list[tuple[int, float]] = []
            cur = src_switch
            while cur != dst_switch:
                if topo.group_of(cur) == topo.group_of(dst_switch):
                    port = topo.local_port(cur, dst_switch)
                else:
                    port = topo.route_to_group(
                        cur, topo.group_of(dst_switch)
                    )
                spec = topo.port_spec(cur, port)
                assert spec.peer is not None and spec.peer[0] == "switch"
                hops.append((links.id(f"l:{cur}.{port}"), float(spec.latency)))
                cur = spec.peer[1]
                if len(hops) > 8:  # minimal dragonfly paths are <= 3 hops
                    raise EngineUnsupported(
                        "flow routing failed to converge on this topology"
                    )
            return hops, float(len(hops) + 1)
        raise EngineUnsupported(
            f"flow engine has no routes for {type(topo).__name__}"
        )

    def _fattree_routes(
        self, topo, src_leaf: int, dst_leaf: int, links: _LinkTable
    ) -> list[tuple[list[tuple[int, float]], float]]:
        """All spine routes leaf->spine->leaf (fluid ECMP splits)."""
        routes = []
        for spine in range(topo.num_spines):
            spine_sw = topo.num_leaves + spine
            up = links.id(f"l:{src_leaf}.{topo.uplink_port(src_leaf, spine)}")
            down = links.id(
                f"l:{spine_sw}.{topo.downlink_port(spine_sw, dst_leaf)}"
            )
            lat = float(topo.latency_up)
            routes.append(([(up, lat), (down, lat)], 3.0))
        return routes

    def _switch_routes(
        self, topo, src_switch: int, dst_switch: int, links: _LinkTable
    ) -> list[tuple[list[tuple[int, float]], float]]:
        from repro.topology.fattree import FatTreeTopology

        if isinstance(topo, FatTreeTopology) and src_switch != dst_switch:
            return self._fattree_routes(topo, src_switch, dst_switch, links)
        return [self._route(topo, src_switch, dst_switch, links)]

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self, spec: "ScenarioSpec") -> EngineResult:
        """Solve the scenario's fluid steady state and aggregate stats
        in the shared :class:`EngineResult` schema."""
        from repro.scenario.spec import (
            HotspotTraffic,
            UniformAggressorTraffic,
            UniformTraffic,
            build_topology,
        )
        from repro.topology.dragonfly import DragonflyTopology

        cfg = spec.resolved_config()
        topo, cfg = build_topology(spec, cfg)
        if topo is None:
            topo = DragonflyTopology(cfg.dragonfly, cfg.switch.num_ports)
        total = topo.num_nodes
        links = _LinkTable()
        self._build_graph(topo, links)
        self._inj_members.clear()
        self._node_inj.clear()

        flows: list[_Flow] = []
        ecn_classes: list[str] = []
        for traffic in spec.traffic:
            if isinstance(traffic, UniformTraffic):
                msg = traffic.msg_flits or cfg.switch.max_packet_flits
                self._uniform_flows(
                    topo, cfg, links, flows, ecn_classes,
                    nodes=tuple(range(total)), rate=traffic.rate,
                    msg_flits=msg, group="", name="uniform",
                )
            elif isinstance(traffic, HotspotTraffic):
                msg = cfg.switch.max_packet_flits
                num_hot = traffic.num_hotspots
                if num_hot is None:
                    num_hot = max(1, round(total * 12 / 3080))
                n_aggr = num_hot * traffic.oversubscription
                if n_aggr + num_hot >= total:
                    raise EngineUnsupported(
                        "network too small for this hotspot configuration"
                    )
                hot = tuple(range(total - num_hot, total))
                aggr = tuple(range(total - num_hot - n_aggr, total - num_hot))
                victims = tuple(range(total - num_hot - n_aggr))
                self._uniform_flows(
                    topo, cfg, links, flows, ecn_classes,
                    nodes=victims, rate=traffic.victim_rate,
                    msg_flits=msg, group="victim", name="victim",
                )
                self._targeted_flows(
                    topo, cfg, links, flows, ecn_classes,
                    nodes=aggr, rate=1.0, dsts=hot,
                    msg_flits=msg, group="aggressor", name="aggressor",
                )
            elif isinstance(traffic, UniformAggressorTraffic):
                msg = cfg.switch.max_packet_flits
                half = total // 2
                self._uniform_flows(
                    topo, cfg, links, flows, ecn_classes,
                    nodes=tuple(range(half)), rate=traffic.victim_rate,
                    msg_flits=msg, group="victim", name="victim",
                )
                # closed-loop burst source: two messages outstanding, so
                # its open-loop equivalent demand is window / rtt
                self._uniform_flows(
                    topo, cfg, links, flows, ecn_classes,
                    nodes=tuple(range(half, total)), rate=1.0,
                    msg_flits=traffic.burst_flits, group="aggressor",
                    name="aggressor",
                    outstanding_flits=2 * traffic.burst_flits,
                )
            else:
                raise EngineUnsupported(
                    f"flow engine cannot model traffic {traffic!r}"
                )

        if not flows:
            return self._empty_result(cfg)

        if cfg.reliability.enabled and cfg.stash.enabled:
            self._attach_stash_pools(topo, cfg, links, flows)

        alloc, util = self._solve(cfg, flows, links, ecn_classes)
        return self._summarise(cfg, topo, flows, alloc, util,
                               ecn_on=cfg.ecn.enabled)

    # ------------------------------------------------------------------
    # flow construction
    # ------------------------------------------------------------------

    def _class_index(self, ecn_classes: list[str], name: str) -> int:
        if name not in ecn_classes:
            ecn_classes.append(name)
        return ecn_classes.index(name)

    def _endpoint_latency(self, topo: "Topology", node: int) -> float:
        spec = topo.port_spec(topo.node_switch(node), topo.node_port(node))
        return float(spec.latency)

    def _make_flows(
        self, topo, cfg: "NetworkConfig", links: _LinkTable,
        src_switch: int, dst_node: int, weight: float, demand: float,
        msg_flits: int, group: str, klass: int, inj_link: int,
    ) -> list[_Flow]:
        """The flow(s) for one aggregated (source switch, destination)
        pair; fat-trees return one flow per ECMP spine split.

        ACKs for the flow ride the reverse path back to the source
        members: the destination's injection channel (when it also
        sources data), the reverse switch hops, and the members'
        ejection channels.
        """
        ej = links.ensure(f"ej:{dst_node}", 1.0)
        ej_lat = self._endpoint_latency(topo, dst_node)
        dst_switch = topo.node_switch(dst_node)
        routes = self._switch_routes(topo, src_switch, dst_switch, links)
        back_routes = self._switch_routes(topo, dst_switch, src_switch, links)
        members = self._inj_members[inj_link]
        member_share = 1.0 / len(members)
        back_share = 1.0 / len(back_routes)
        ack_common: list[tuple[int, float]] = []
        if dst_node in self._node_inj:
            ack_common.append((self._node_inj[dst_node], 1.0))
        for hops, _count in back_routes:
            ack_common.extend((l, back_share) for l, _lat in hops)
        for u in members:
            ack_common.append(
                (links.ensure(f"ej:{u}", 1.0), member_share)
            )
        out = []
        share = 1.0 / len(routes)
        for hops, hop_count in routes:
            lat = (
                ej_lat * 2.0  # injection + ejection channels
                + sum(h_lat for _l, h_lat in hops)
                + hop_count * _HOP_CYCLES
                + float(msg_flits)
            )
            out.append(_Flow(
                links=(inj_link, *(l for l, _lat in hops), ej),
                weight=weight * share,
                demand=demand,
                base_latency=lat,
                group=group,
                klass=klass,
                msg_flits=msg_flits,
                src_switch=src_switch,
                ack_links=tuple(ack_common),
            ))
        return out

    def _inj_link(
        self, links: _LinkTable, name: str, switch: int,
        members: list[int],
    ) -> int:
        inj = links.ensure(f"inj:{name}:{switch}", float(len(members)))
        self._inj_members[inj] = tuple(members)
        for u in members:
            self._node_inj[u] = inj
        return inj

    def _uniform_flows(
        self, topo, cfg, links: _LinkTable, flows: list[_Flow],
        ecn_classes: list[str], nodes: tuple[int, ...], rate: float,
        msg_flits: int, group: str, name: str,
        outstanding_flits: int | None = None,
    ) -> None:
        """Uniform-random traffic from ``nodes`` to every other node,
        aggregated per (source switch, destination node)."""
        total = topo.num_nodes
        if total < 2 or rate <= 0.0 or not nodes:
            return
        klass = self._class_index(ecn_classes, name)
        by_switch: dict[int, list[int]] = {}
        for u in nodes:
            by_switch.setdefault(topo.node_switch(u), []).append(u)
        unit = rate / (total - 1)
        for a in sorted(by_switch):
            members = by_switch[a]
            inj = self._inj_link(links, name, a, members)
            for v in range(total):
                weight = sum(1 for u in members if u != v)
                if not weight:
                    continue
                demand = unit
                if outstanding_flits is not None:
                    # closed loop: at most outstanding_flits in flight
                    # per source, spread over its destinations
                    probe = self._make_flows(
                        topo, cfg, links, a, v, 1.0, 1.0, msg_flits,
                        group, klass, inj,
                    )[0]
                    demand = min(unit, outstanding_flits / probe.rtt
                                 / (total - 1))
                flows.extend(self._make_flows(
                    topo, cfg, links, a, v, float(weight), demand,
                    msg_flits, group, klass, inj,
                ))

    def _targeted_flows(
        self, topo, cfg, links: _LinkTable, flows: list[_Flow],
        ecn_classes: list[str], nodes: tuple[int, ...], rate: float,
        dsts: tuple[int, ...], msg_flits: int, group: str, name: str,
    ) -> None:
        """Traffic from ``nodes`` uniformly over the ``dsts`` set."""
        if rate <= 0.0 or not nodes or not dsts:
            return
        klass = self._class_index(ecn_classes, name)
        by_switch: dict[int, list[int]] = {}
        for u in nodes:
            by_switch.setdefault(topo.node_switch(u), []).append(u)
        unit = rate / len(dsts)
        for a in sorted(by_switch):
            members = by_switch[a]
            inj = self._inj_link(links, name, a, members)
            for v in dsts:
                weight = sum(1 for u in members if u != v)
                if not weight:
                    continue
                flows.extend(self._make_flows(
                    topo, cfg, links, a, v, float(weight), unit,
                    msg_flits, group, klass, inj,
                ))

    def _attach_stash_pools(
        self, topo, cfg, links: _LinkTable, flows: list[_Flow]
    ) -> None:
        """Bound each source switch's in-flight flits by its stash pool:
        ``sum(rate * rtt) <= pool`` (Little's law), encoded as a virtual
        link consumed at coefficient ``rtt`` per unit rate."""
        st = cfg.stash
        pooled = cfg.switch.input_buffer_flits + cfg.switch.output_buffer_flits
        pool_ids: dict[int, int] = {}
        for s in range(topo.num_switches):
            pool = 0.0
            for pspec in topo.switch_ports(s):
                if pspec.link_class in ("endpoint", "local", "global"):
                    pool += st.fraction_for(pspec.link_class) * pooled
            pool *= st.capacity_scale
            if pool > 0.0:
                pool_ids[s] = links.add(f"stash:{s}", pool)
        for f in flows:
            if f.src_switch in pool_ids:
                f.stash_link = pool_ids[f.src_switch]

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------

    def _solve(
        self, cfg, flows: list[_Flow], links: _LinkTable,
        ecn_classes: list[str],
    ) -> tuple[list[float], list[float]]:
        """Damped fixed point over (allocation, ACK load, queueing RTT),
        with the ECN window schedule layered on when ECN is enabled.

        Returns (per-unit allocations, per-link utilizations) and leaves
        each flow's ``rtt``/``qdelay`` at their converged values.
        """
        ecn = cfg.ecn
        ecn_on = ecn.enabled
        steps = _ECN_STEPS if ecn_on else _FP_STEPS
        keep_from = steps - max(1, steps // 4)
        windows = [float(ecn.window_max_flits)] * len(ecn_classes)
        weights = [f.weight for f in flows]
        base_caps = links.caps
        ack_load = [0.0] * len(base_caps)
        buffer_cap = float(cfg.switch.input_buffer_flits)
        tail: list[list[float]] = []
        alloc = [0.0] * len(flows)
        util = [0.0] * len(base_caps)
        for step in range(steps):
            entries = []
            for f in flows:
                if f.stash_link >= 0:
                    entries.append((
                        (*f.links, f.stash_link),
                        (*(1.0,) * len(f.links), f.rtt),
                    ))
                else:
                    entries.append((f.links, (1.0,) * len(f.links)))
            caps_eff = [
                max(_EPS, c - a) for c, a in zip(base_caps, ack_load)
            ]
            if ecn_on:
                demand_caps = [
                    min(f.demand, windows[f.klass] / f.rtt) for f in flows
                ]
            else:
                demand_caps = [f.demand for f in flows]
            alloc = _maxmin(entries, weights, caps_eff, demand_caps)

            # total (data + ACK) load per link under this allocation
            load = list(ack_load)
            for f, x in zip(flows, alloc):
                r = f.weight * x
                for l in f.links:
                    load[l] += r
            util = [
                (load[l] / base_caps[l]) if base_caps[l] > 0 else 0.0
                for l in range(len(base_caps))
            ]
            # queueing delay -> damped RTT update (feeds the stash pool
            # coefficients and the ECN window caps next step)
            for f in flows:
                q = 0.0
                for l in f.links:
                    rho = min(util[l], 0.999999)
                    if rho > 0.0:
                        q += min(
                            0.5 * rho / (1.0 - rho) * f.msg_flits,
                            buffer_cap,
                        )
                f.qdelay = q
                f.rtt = 0.5 * f.rtt + 0.5 * (2.0 * (f.base_latency + q))
            # next step's ACK background load (priority traffic)
            ack_load = [0.0] * len(base_caps)
            for f, x in zip(flows, alloc):
                a = f.weight * x / f.msg_flits
                for l, ack_share in f.ack_links:
                    ack_load[l] += a * ack_share
            if ecn_on:
                congested = [False] * len(ecn_classes)
                for f, x in zip(flows, alloc):
                    if congested[f.klass]:
                        continue
                    for l in f.links:
                        if util[l] >= _ECN_UTILIZATION:
                            congested[f.klass] = True
                            break
                for k in range(len(ecn_classes)):
                    if congested[k]:
                        windows[k] = max(
                            float(ecn.window_min_flits),
                            windows[k] * ecn.window_decrease,
                        )
                    else:
                        windows[k] = min(
                            float(ecn.window_max_flits),
                            windows[k] + float(ecn.recovery_flits),
                        )
            if step >= keep_from:
                tail.append(alloc)
        if tail:
            alloc = [
                sum(step_alloc[i] for step_alloc in tail) / len(tail)
                for i in range(len(flows))
            ]
        return alloc, util

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------

    def _summarise(
        self, cfg, topo, flows: list[_Flow], alloc: list[float],
        util: list[float], ecn_on: bool,
    ) -> EngineResult:
        nodes = max(1, topo.num_nodes)
        samples: list[tuple[float, float]] = []
        group_samples: dict[str, list[tuple[float, float]]] = {}
        group_pkts: dict[str, float] = {}
        offered = accepted = 0.0
        pkt_rate = 0.0
        for f, x in zip(flows, alloc):
            offered += f.weight * f.demand
            rate = f.weight * x
            accepted += rate
            lat = f.base_latency + f.qdelay
            w = max(rate, _EPS)
            samples.append((lat, w))
            if f.group:
                group_samples.setdefault(f.group, []).append((lat, w))
                group_pkts[f.group] = group_pkts.get(f.group, 0.0) + (
                    rate / f.msg_flits if f.msg_flits else 0.0
                )
            if f.msg_flits > 0:
                pkt_rate += rate / f.msg_flits

        sim = cfg.sim
        if not samples:
            return self._empty_result(cfg)

        total_w = sum(w for _v, w in samples)
        mean = sum(v * w for v, w in samples) / total_w
        groups = tuple(
            (
                name,
                GroupStats(
                    count=int(group_pkts.get(name, 0.0) * sim.measure_cycles),
                    mean=sum(v * w for v, w in gs) / sum(w for _v, w in gs),
                    p50=_weighted_percentile(gs, 50),
                    p90=_weighted_percentile(gs, 90),
                    p99=_weighted_percentile(gs, 99),
                    max=max(v for v, _w in gs),
                ),
            )
            for name, gs in sorted(group_samples.items())
        )
        return EngineResult(
            engine=self.name,
            offered_load=offered / nodes,
            accepted_load=accepted / nodes,
            avg_latency=mean,
            p90_latency=_weighted_percentile(samples, 90),
            p99_latency=_weighted_percentile(samples, 99),
            max_latency=max(v for v, _w in samples),
            packets_measured=int(pkt_rate * sim.measure_cycles),
            cycles=sim.warmup_cycles + sim.measure_cycles,
            groups=groups,
            extras=(
                ("bottleneck_utilization", max(util) if util else 0.0),
                ("ecn_steps", float(_ECN_STEPS if ecn_on else 0)),
            ),
        )

    def _empty_result(self, cfg) -> EngineResult:
        sim = cfg.sim
        return EngineResult(
            engine=self.name,
            offered_load=0.0,
            accepted_load=0.0,
            avg_latency=math.nan,
            p90_latency=math.nan,
            p99_latency=math.nan,
            max_latency=math.nan,
            packets_measured=0,
            cycles=sim.warmup_cycles + sim.measure_cycles,
            groups=(),
            extras=(("bottleneck_utilization", 0.0), ("ecn_steps", 0.0)),
        )
