"""``python -m repro.devtools`` defers to the simlint CLI."""

import sys

from repro.devtools.simlint import main

sys.exit(main())
