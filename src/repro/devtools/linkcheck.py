"""linkcheck — offline Markdown link checker for the repo's docs.

Walks Markdown files and verifies every inline link and image whose
target is *local*: relative file paths must exist on disk, and fragment
anchors (``file.md#section`` or ``#section``) must match a heading in
the target file under GitHub's slugging rules.  External schemes
(``http://``, ``https://``, ``mailto:``, ...) are skipped — CI must not
depend on the network — as are links inside fenced code blocks and
inline code spans.

Usage::

    python -m repro.devtools.linkcheck README.md docs EXPERIMENTS.md

Exit codes are stable: 0 clean, 1 broken links, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "EXIT_BROKEN",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "BrokenLink",
    "check_file",
    "check_paths",
    "extract_links",
    "heading_slugs",
    "main",
]

EXIT_CLEAN = 0
EXIT_BROKEN = 1
EXIT_ERROR = 2

#: inline links and images: [text](target) / ![alt](target)
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: an absolute URI scheme (http:, https:, mailto:, ftp:, ...)
_SCHEME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


@dataclass(frozen=True)
class BrokenLink:
    """One unresolvable local link, addressable by file and line."""

    path: str
    line: int
    target: str
    reason: str

    def render(self) -> str:
        """``file:line: target (reason)`` for terminal output."""
        return f"{self.path}:{self.line}: {self.target} ({self.reason})"


def _strip_code(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks and inline code spans, preserving
    line numbering so link positions stay addressable."""
    out: list[str] = []
    fence: str | None = None
    for text in lines:
        match = _FENCE_RE.match(text)
        if match is not None:
            if fence is None:
                fence = match.group(1)
            elif match.group(1) == fence:
                fence = None
            out.append("")
            continue
        out.append("" if fence is not None else _CODE_SPAN_RE.sub("``", text))
    return out


def extract_links(text: str) -> list[tuple[int, str]]:
    """(line, target) for every inline link/image outside code.

    >>> extract_links("see [docs](docs/A.md) and `[not](a.md)`")
    [(1, 'docs/A.md')]
    """
    links: list[tuple[int, str]] = []
    for lineno, line in enumerate(_strip_code(text.splitlines()), start=1):
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def heading_slugs(text: str) -> set[str]:
    """GitHub anchor slugs of every Markdown heading in ``text``.

    Lowercased; punctuation dropped; spaces become hyphens; repeated
    headings get ``-1``, ``-2``, ... suffixes.

    >>> sorted(heading_slugs("# A B!\\n## A B!\\n### C_d"))
    ['a-b', 'a-b-1', 'c_d']
    """
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    fence: str | None = None
    for line in text.splitlines():
        fmatch = _FENCE_RE.match(line)
        if fmatch is not None:
            if fence is None:
                fence = fmatch.group(1)
            elif fmatch.group(1) == fence:
                fence = None
            continue
        if fence is not None:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        title = re.sub(r"`([^`]*)`", r"\1", match.group(2))
        title = _LINK_RE.sub(lambda m: m.group(0).split("]")[0][1:], title)
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path, root: Path | None = None) -> list[BrokenLink]:
    """Verify every local link in one Markdown file.

    Relative targets resolve against the file's directory; targets
    starting with ``/`` resolve against ``root`` (default: the file's
    directory) as GitHub resolves repo-absolute links.
    """
    if root is None:
        root = path.parent
    text = path.read_text(encoding="utf-8")
    broken: list[BrokenLink] = []
    for lineno, target in extract_links(text):
        if _SCHEME_RE.match(target) or target.startswith("//"):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            base = root if file_part.startswith("/") else path.parent
            dest = (base / file_part.lstrip("/")).resolve()
            if not dest.exists():
                broken.append(
                    BrokenLink(str(path), lineno, target, "file not found")
                )
                continue
        else:
            dest = path
        if anchor and dest.suffix.lower() in (".md", ".markdown"):
            if anchor.lower() not in heading_slugs(
                dest.read_text(encoding="utf-8")
            ):
                broken.append(
                    BrokenLink(str(path), lineno, target, "missing anchor")
                )
    return broken


def _iter_markdown_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix.lower() in (".md", ".markdown"):
            yield path
        else:
            raise OSError(f"{path}: not a Markdown file or directory")


def check_paths(
    paths: Sequence[Path], root: Path | None = None
) -> tuple[list[BrokenLink], int]:
    """Check every Markdown file under ``paths``.

    Returns ``(broken links, files checked)``; raises OSError for
    unreadable inputs.
    """
    broken: list[BrokenLink] = []
    checked = 0
    for file_path in _iter_markdown_files(paths):
        broken.extend(check_file(file_path, root=root))
        checked += 1
    broken.sort(key=lambda b: (b.path, b.line, b.target))
    return broken, checked


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; see the module docstring for usage."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.linkcheck",
        description="offline Markdown link checker",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Markdown files or directories to check",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for /absolute link targets (default: .)",
    )
    args = parser.parse_args(argv)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("linkcheck: error: no paths given", file=sys.stderr)
        return EXIT_ERROR

    try:
        broken, checked = check_paths(
            [Path(p) for p in args.paths], root=Path(args.root)
        )
    except OSError as exc:
        print(f"linkcheck: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    for link in broken:
        print(link.render())
    print(f"linkcheck: {len(broken)} broken link(s) in {checked} file(s)")
    return EXIT_BROKEN if broken else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
