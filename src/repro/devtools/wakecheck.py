"""wakecheck — whole-program wake-soundness analyzer for the event kernel.

The event kernel (``repro.engine.simulator``, docs/PERFORMANCE.md) skips a
component's ``step`` while the component is provably idle.  That proof
rests on a convention: every mutation of state that can change a
component's ``next_active_cycle`` must be paired with a wake — a
``Simulator.wake`` / ``wake_component`` call, or a ``bind_wake``-bound
:meth:`Channel.send`.  A write that breaks the pairing makes a component
sleep through work, and results silently diverge from the polling kernel.

wakecheck makes the convention a checked property.  It parses every
module under the given paths as ONE program and runs four passes:

1. **Contract registry** — every class that implements
   ``next_active_cycle`` is a component root.  The attributes read inside
   its ``next_active_cycle`` closure (following ``self``/typed locals
   through properties and helper methods, 4 levels deep) are that
   component's *wake-relevant state*: the state whose value decides when
   the kernel may skip it.

2. **Ownership clusters** — for each root, the set of helper classes it
   (transitively) constructs (ports, tiles, partitions, trackers...).  A
   class constructed into the attribute graphs of two unrelated roots is
   a *conduit* (e.g. :class:`Channel`): shared state written by one
   component and read by another's ``next_active_cycle``, which is
   exactly the state that always needs an explicit wake.

3. **Call-graph reachability** — which methods are reachable from each
   root's ``step`` (interprocedural, resolved through ``self``, typed
   parameters and typed attribute chains), and which are reachable only
   from constructors.

4. **Write classification** — every write to wake-relevant state
   (attribute assignment, augmented assignment, growing container
   mutation, ``heappush``/``insort``) is flagged **WAKE001** unless one
   of these holds:

   * the write executes during the owning component's own ``step``
     (the kernel re-evaluates ``next_active_cycle`` right after), and
     the written class is not a conduit;
   * the enclosing function is reachable only from constructors (the
     component has not been registered/run yet), or is ``__init__``
     itself;
   * the mutation only *removes* work (``popleft``/``discard``/... —
     a sleeping component can never miss work that ceased to exist);
   * the write is followed, in the same function, by a wake call or a
     call into a function that wakes within two levels (the paired-wake
     idiom of :meth:`Channel.send`);
   * the line carries an explicit ``# wakecheck: ok(<reason>)``.

   **WAKE002** flags wake calls whose cycle argument is syntactically
   behind the current cycle (``sim.wake(idx, cycle - k)``): a stale wake
   is a contract violation the simulator rejects at runtime.

Usage::

    python -m repro.devtools.wakecheck src/
    python -m repro.devtools.wakecheck --format json src/
    python -m repro.devtools.wakecheck --annotate docs/WAKE_CONTRACT.md src/
    python -m repro.devtools.wakecheck --list-rules

Exit codes are stable and shared with simlint: 0 clean, 1 violations
found, 2 usage or parse error.

The analysis is deliberately conservative where Python defeats static
typing: writes through untyped receivers are not flagged (no false
positives from dynamic code), and the paired-wake check is lexical
rather than a true post-dominator analysis.  The runtime counterpart —
``Simulator(verify_wake=True)`` — closes that gap by re-probing declared
wake cycles against actual ``next_active_cycle`` results during fuzz
runs (docs/WAKE_CONTRACT.md).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_VIOLATIONS",
    "RULES",
    "SCHEMA_VERSION",
    "Program",
    "Report",
    "Violation",
    "analyze_paths",
    "main",
    "render_annotation",
]

SCHEMA_VERSION = 1
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


@dataclass(frozen=True)
class RuleInfo:
    rule_id: str
    name: str
    rationale: str


RULES: tuple[RuleInfo, ...] = (
    RuleInfo(
        "WAKE001",
        "unwoken-write",
        "a write to wake-relevant state (read by some component's "
        "next_active_cycle) outside the owner's own step, without a "
        "paired wake call: the owner can sleep through the new work",
    ),
    RuleInfo(
        "WAKE002",
        "stale-wake",
        "a wake scheduled syntactically behind the current cycle "
        "(cycle - k); Simulator.wake raises on stale cycles at runtime",
    ),
)

RULE_IDS = frozenset(r.rule_id for r in RULES)

#: container-mutator method names that can only ADD work
_GROWING = frozenset(
    {"append", "appendleft", "extend", "extendleft", "add", "insert",
     "setdefault", "update", "push", "put"}
)
#: container-mutator method names that remove or rearrange work; a
#: sleeping component cannot miss work that was drained away
_DRAINING = frozenset(
    {"pop", "popleft", "popright", "remove", "discard", "clear",
     "popitem", "rotate", "reverse", "sort", "release"}
)
#: free functions whose first argument is mutated (grown)
_GROWING_FREE = frozenset({"heappush", "insort", "insort_left", "insort_right"})

#: method names that deliver a wake when called
_WAKE_METHODS = frozenset({"wake", "wake_component"})

#: constructor-family methods whose writes are exempt by definition
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})

_OK_RE = re.compile(r"#\s*wakecheck:\s*ok\(([^)]*)\)")

_NAC = "next_active_cycle"

#: bounded traversal depths (the issue's "2-3 levels", with slack where
#: being deeper only removes false positives)
_RELEVANCE_DEPTH = 4
_REACH_DEPTH = 8
_WAKEISH_DEPTH = 2


# ---------------------------------------------------------------------------
# type lattice: (possible classes, element info) with bounded nesting
# ---------------------------------------------------------------------------


class TInfo:
    """A conservative type guess: scalar class candidates + element info
    (one guess per container level, three levels deep at most)."""

    __slots__ = ("scalar", "elem")

    def __init__(self, scalar: frozenset[str] = frozenset(),
                 elem: "TInfo | None" = None) -> None:
        self.scalar = scalar
        self.elem = elem

    def __bool__(self) -> bool:
        return bool(self.scalar) or self.elem is not None

    def union(self, other: "TInfo") -> "TInfo":
        if not other:
            return self
        if not self:
            return other
        elem = self.elem
        if other.elem is not None:
            elem = other.elem if elem is None else elem.union(other.elem)
        return TInfo(self.scalar | other.scalar, elem)


_EMPTY = TInfo()

#: names treated as container constructors in annotations
_CONTAINER_NAMES = frozenset(
    {"list", "List", "deque", "Deque", "tuple", "Tuple", "set", "Set",
     "frozenset", "FrozenSet", "Sequence", "Iterable", "Iterator"}
)
_MAPPING_NAMES = frozenset({"dict", "Dict", "Mapping", "MutableMapping",
                            "defaultdict", "OrderedDict"})


@dataclass
class EnvEntry:
    """What the analyzer knows about one local name."""

    tinfo: TInfo = field(default_factory=TInfo)
    #: (class, attr) pairs this local aliases (e.g. ``q = self._queue``)
    origins: frozenset[tuple[str, str]] = frozenset()
    #: constructed in this very function (creation-edge source)
    fresh: bool = False


# ---------------------------------------------------------------------------
# program index
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    name: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)
    attr_types: dict[str, TInfo] = field(default_factory=dict)


#: function key: ("C", class_name, method) or ("F", path, func_name)
FuncKey = tuple[str, str, str]


@dataclass
class CallRec:
    callee: FuncKey | None
    line: int
    direct_wake: bool
    node: ast.Call
    #: method name when the call goes through ``self`` — re-resolved
    #: against the dynamic class during per-root closures, so a base
    #: class's ``self.m()`` reaches a subclass override
    via_self: str | None = None
    #: method name when the call goes through ``super()``
    via_super: str | None = None


@dataclass
class WriteRec:
    attr: str
    classes: frozenset[str]  # candidate owning classes of the receiver
    kind: str  # "grow" | "assign" | "drain"
    line: int
    col: int
    detail: str


@dataclass
class FuncFacts:
    key: FuncKey
    path: str
    node: ast.FunctionDef
    reads: list[tuple[frozenset[str], str]] = field(default_factory=list)
    writes: list[WriteRec] = field(default_factory=list)
    calls: list[CallRec] = field(default_factory=list)
    #: creation edges: (owner class, created class)
    creates: list[tuple[str, str]] = field(default_factory=list)


@dataclass(frozen=True)
class Violation:
    """One rule hit, addressable by file and position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class WakecheckError(Exception):
    """A file could not be read or parsed."""


class Program:
    """The whole-program index: classes, functions, and per-function facts."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[FuncKey, ast.FunctionDef] = {}
        self.facts: dict[FuncKey, FuncFacts] = {}
        self.sources: dict[str, str] = {}
        self.files: list[str] = []
        # analysis results
        self.roots: list[str] = []
        self.relevant: dict[str, set[str]] = {}
        self.relevant_roots: dict[tuple[str, str], set[str]] = {}
        self.clusters: dict[str, set[str]] = {}
        self.conduits: set[str] = set()
        self.step_safe: dict[str, set[FuncKey]] = {}
        self.any_step: set[FuncKey] = set()
        self.ctor_reachable: set[FuncKey] = set()
        self.wakeish: set[FuncKey] = set()

    # -- indexing ------------------------------------------------------

    def add_module(self, path: Path, source: str) -> None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise WakecheckError(
                f"{path}: syntax error: {exc.msg} (line {exc.lineno})"
            )
        rel = path.as_posix()
        self.sources[rel] = source
        self.files.append(rel)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._add_class(rel, node)
            elif isinstance(node, ast.FunctionDef):
                self.functions[("F", rel, node.name)] = node

    def _add_class(self, rel: str, node: ast.ClassDef) -> None:
        info = ClassInfo(node.name, rel, node)
        for base in node.bases:
            name = _tail_name(base)
            if name is not None:
                info.bases.append(name)
        for member in node.body:
            if isinstance(member, ast.FunctionDef):
                info.methods[member.name] = member
                for deco in member.decorator_list:
                    if _tail_name(deco) in ("property", "cached_property"):
                        info.properties.add(member.name)
        # later definition of the same class name wins (none expected)
        self.classes[node.name] = info

    # -- class hierarchy ----------------------------------------------

    def mro(self, name: str) -> list[str]:
        """Name-based linearization: DFS order with duplicates dropped."""
        out: list[str] = []
        seen: set[str] = set()

        def visit(cls: str) -> None:
            if cls in seen or cls not in self.classes:
                return
            seen.add(cls)
            out.append(cls)
            for base in self.classes[cls].bases:
                visit(base)

        visit(name)
        return out

    def related(self, a: str, b: str) -> bool:
        """Same class, ancestor, or descendant (name-based)."""
        return a == b or b in self.mro(a) or a in self.mro(b)

    def resolve_method(self, cls: str, meth: str) -> FuncKey | None:
        for candidate in self.mro(cls):
            if meth in self.classes[candidate].methods:
                return ("C", candidate, meth)
        return None

    def resolve_super(self, dyncls: str, defcls: str, meth: str) -> FuncKey | None:
        order = self.mro(dyncls)
        if defcls in order:
            order = order[order.index(defcls) + 1:]
        for cls in order:
            if meth in self.classes[cls].methods:
                return ("C", cls, meth)
        return None

    def attr_tinfo(self, classes: frozenset[str], attr: str) -> TInfo:
        out = _EMPTY
        for cls in classes:
            for mc in self.mro(cls):
                info = self.classes.get(mc)
                if info is not None and attr in info.attr_types:
                    out = out.union(info.attr_types[attr])
        return out

    def is_property(self, classes: frozenset[str], attr: str) -> FuncKey | None:
        for cls in classes:
            for mc in self.mro(cls):
                info = self.classes.get(mc)
                if info is not None and attr in info.properties:
                    return ("C", mc, attr)
        return None


def _tail_name(node: ast.expr) -> str | None:
    """``Foo`` for Name, the final attribute for dotted expressions."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the first identifier
        match = re.match(r"\s*([A-Za-z_][A-Za-z0-9_]*)", node.value)
        return match.group(1) if match else None
    return None


# ---------------------------------------------------------------------------
# annotation -> TInfo
# ---------------------------------------------------------------------------


def _parse_annotation(program: Program, node: ast.expr | None,
                      depth: int = 0) -> TInfo:
    if node is None or depth > 3:
        return _EMPTY
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return _EMPTY
        return _parse_annotation(program, parsed, depth)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _parse_annotation(program, node.left, depth).union(
            _parse_annotation(program, node.right, depth)
        )
    if isinstance(node, ast.Subscript):
        head = _tail_name(node.value)
        slc = node.slice
        if head in ("Optional",):
            return _parse_annotation(program, slc, depth)
        if head in _MAPPING_NAMES:
            value_ann = (
                slc.elts[-1]
                if isinstance(slc, ast.Tuple) and slc.elts
                else None
            )
            return TInfo(elem=_parse_annotation(program, value_ann, depth + 1)
                         or None)
        if head in _CONTAINER_NAMES:
            elems = slc.elts if isinstance(slc, ast.Tuple) else [slc]
            elem = _EMPTY
            for e in elems:
                if isinstance(e, ast.Constant) and e.value is Ellipsis:
                    continue
                elem = elem.union(_parse_annotation(program, e, depth + 1))
            return TInfo(elem=elem or None)
        return _EMPTY
    name = _tail_name(node)
    if name is not None and name in program.classes:
        return TInfo(frozenset({name}))
    return _EMPTY


# ---------------------------------------------------------------------------
# per-function analysis
# ---------------------------------------------------------------------------


class _FuncAnalyzer:
    """One pass over a function body: env-tracked reads, writes, calls,
    and creation edges, in statement order."""

    def __init__(self, program: Program, key: FuncKey, path: str,
                 node: ast.FunctionDef, collect_attr_types: bool = False):
        self.program = program
        self.key = key
        self.path = path
        self.node = node
        self.defcls = key[1] if key[0] == "C" else None
        self.facts = FuncFacts(key, path, node)
        self.env: dict[str, EnvEntry] = {}
        self.collect_attr_types = collect_attr_types
        self.self_name: str | None = None
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if self.defcls is not None and positional:
            first = positional[0].arg
            if first in ("self", "cls") or not _is_static(node):
                self.self_name = first
                self.env[first] = EnvEntry(TInfo(frozenset({self.defcls})))
                positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            t = _parse_annotation(program, arg.annotation)
            if t:
                self.env[arg.arg] = EnvEntry(t)

    # -- expression typing --------------------------------------------

    def infer(self, node: ast.expr, depth: int = 0) -> EnvEntry:
        if depth > 6:
            return EnvEntry()
        program = self.program
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EnvEntry())
        if isinstance(node, ast.Attribute):
            base = self.infer(node.value, depth + 1)
            if base.tinfo.scalar:
                t = program.attr_tinfo(base.tinfo.scalar, node.attr)
                origins = frozenset(
                    (cls, node.attr) for cls in base.tinfo.scalar
                )
                return EnvEntry(t, origins)
            return EnvEntry()
        if isinstance(node, ast.Subscript):
            base = self.infer(node.value, depth + 1)
            elem = base.tinfo.elem if base.tinfo.elem is not None else _EMPTY
            # an element of a freshly built container is itself fresh
            # (``partitions[i]`` after ``partitions = [StashPartition(...)]``)
            return EnvEntry(elem, base.origins, base.fresh)
        if isinstance(node, ast.Call):
            fname = _tail_name(node.func)
            if (
                isinstance(node.func, ast.Name)
                and fname in program.classes
            ):
                return EnvEntry(TInfo(frozenset({fname})), fresh=True)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "values"
            ):
                recv = self.infer(node.func.value, depth + 1)
                if recv.tinfo.elem is not None:
                    return EnvEntry(
                        TInfo(elem=recv.tinfo.elem), recv.origins
                    )
            # fall back to the callee's return annotation
            # (``self._build_switches()`` with ``-> list[TiledSwitch]``)
            callee_def: ast.FunctionDef | None = None
            if isinstance(node.func, ast.Name):
                callee_def = program.functions.get(
                    ("F", self.path, node.func.id)
                )
            elif isinstance(node.func, ast.Attribute):
                recv = self.infer(node.func.value, depth + 1)
                for cls in sorted(recv.tinfo.scalar):
                    mk = program.resolve_method(cls, node.func.attr)
                    if mk is not None:
                        callee_def = program.classes[mk[1]].methods[mk[2]]
                        break
            if callee_def is not None:
                t = _parse_annotation(program, callee_def.returns)
                if t:
                    return EnvEntry(t)
            return EnvEntry()
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            elem = _EMPTY
            fresh = True
            for elt in node.elts:
                sub = self.infer(elt, depth + 1)
                elem = elem.union(sub.tinfo)
                fresh = fresh and sub.fresh
            return EnvEntry(TInfo(elem=elem or None), fresh=fresh)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            saved: dict[str, EnvEntry | None] = {}
            for gen in node.generators:
                src = self.infer(gen.iter, depth + 1)
                elem = src.tinfo.elem if src.tinfo.elem is not None else _EMPTY
                if isinstance(gen.target, ast.Name):
                    saved.setdefault(
                        gen.target.id, self.env.get(gen.target.id)
                    )
                    self.env[gen.target.id] = EnvEntry(elem)
            out = self.infer(node.elt, depth + 1)
            for name, prev in saved.items():
                if prev is None:
                    self.env.pop(name, None)
                else:
                    self.env[name] = prev
            return EnvEntry(TInfo(elem=out.tinfo or None), fresh=out.fresh)
        if isinstance(node, ast.IfExp):
            a = self.infer(node.body, depth + 1)
            b = self.infer(node.orelse, depth + 1)
            return EnvEntry(a.tinfo.union(b.tinfo), a.origins | b.origins,
                            a.fresh and b.fresh)
        if isinstance(node, ast.BoolOp):
            out = EnvEntry()
            for value in node.values:
                sub = self.infer(value, depth + 1)
                out = EnvEntry(out.tinfo.union(sub.tinfo),
                               out.origins | sub.origins)
            return out
        if isinstance(node, ast.NamedExpr):
            return self.infer(node.value, depth + 1)
        if isinstance(node, ast.Starred):
            return self.infer(node.value, depth + 1)
        return EnvEntry()

    # -- write-target resolution --------------------------------------

    def _target_site(self, node: ast.expr) -> tuple[frozenset[str], str] | None:
        """The (owner classes, attr) a write through ``node`` lands on:
        the innermost attribute in the receiver chain, or the alias
        origin of a plain local name."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            base = self.infer(node.value)
            if base.tinfo.scalar:
                return base.tinfo.scalar, node.attr
            if base.origins:
                # e.g. ``chq`` aliasing ``ch._queue`` subscripted — keep
                # the alias origin rather than dropping the write
                cls, attr = next(iter(sorted(base.origins)))
                return frozenset({cls}), attr
            return None
        if isinstance(node, ast.Name):
            entry = self.env.get(node.id)
            if entry is not None and entry.origins:
                classes = frozenset(cls for cls, _ in entry.origins)
                attr = next(iter(sorted(a for _, a in entry.origins)))
                return classes, attr
        return None

    def _record_write(self, node: ast.expr, kind: str, where: ast.AST,
                      detail: str) -> None:
        site = self._target_site(node)
        if site is None:
            return
        classes, attr = site
        self.facts.writes.append(
            WriteRec(attr, classes, kind,
                     getattr(where, "lineno", 1),
                     getattr(where, "col_offset", 0) + 1, detail)
        )

    # -- statement walk ------------------------------------------------

    def run(self) -> FuncFacts:
        self._stmts(self.node.body)
        return self.facts

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed on their own
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            value = self.infer(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
            value = self.infer(stmt.value) if stmt.value is not None else EnvEntry()
            ann = _parse_annotation(self.program, stmt.annotation)
            if ann:
                value = EnvEntry(ann.union(value.tinfo), value.origins,
                                 value.fresh)
            self._assign_target(stmt.target, value, stmt,
                                annotated=stmt.value is not None or bool(ann))
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            kind = "drain" if isinstance(
                stmt.op, (ast.Sub, ast.FloorDiv, ast.Div, ast.RShift)
            ) else "grow"
            if isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
                self._record_write(stmt.target, kind, stmt,
                                   _short_src(stmt))
            return
        if isinstance(stmt, ast.Delete):
            return  # removing work cannot cause a missed wake
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            src = self.infer(stmt.iter)
            elem = src.tinfo.elem if src.tinfo.elem is not None else _EMPTY
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = EnvEntry(elem, src.origins)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return
        # remaining statement kinds carry no wake-relevant effects

    def _assign_target(self, target: ast.expr, value: EnvEntry,
                       stmt: ast.stmt, annotated: bool = True) -> None:
        program = self.program
        if isinstance(target, ast.Name):
            if annotated or value:
                self.env[target.id] = value
            return
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    elem = (value.tinfo.elem
                            if value.tinfo.elem is not None else _EMPTY)
                    self.env[elt.id] = EnvEntry(elem)
            return
        if isinstance(target, ast.Attribute):
            base = self.infer(target.value)
            # attribute-type collection: self.attr = <typed expr>
            if (
                self.collect_attr_types
                and self.defcls is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == self.self_name
            ):
                info = program.classes.get(self.defcls)
                if info is not None and value.tinfo:
                    prev = info.attr_types.get(target.attr, _EMPTY)
                    info.attr_types[target.attr] = prev.union(value.tinfo)
            # creation edges: <typed base>.attr = <freshly constructed>
            if value.fresh:
                for owner in base.tinfo.scalar:
                    for created in _constructed_classes(value.tinfo):
                        self.facts.creates.append((owner, created))
            self._record_write(target, "assign", stmt, _short_src(stmt))
            return
        if isinstance(target, ast.Subscript):
            self._record_write(target, "grow", stmt, _short_src(stmt))
            return

    # -- expression walk -----------------------------------------------

    def _expr(self, node: ast.expr) -> None:
        for call in _walk_exprs(node):
            if isinstance(call, ast.Attribute) and isinstance(
                call.ctx, ast.Load
            ):
                self._attribute_read(call)
            elif isinstance(call, ast.Call):
                self._call(call)

    def _attribute_read(self, node: ast.Attribute) -> None:
        base = self.infer(node.value)
        if not base.tinfo.scalar:
            return
        self.facts.reads.append((base.tinfo.scalar, node.attr))
        prop = self.program.is_property(base.tinfo.scalar, node.attr)
        if prop is not None:
            self.facts.calls.append(
                CallRec(prop, getattr(node, "lineno", 1), False,
                        ast.Call(func=node, args=[], keywords=[]))
            )

    def _call(self, node: ast.Call) -> None:
        program = self.program
        func = node.func
        line = getattr(node, "lineno", 1)
        if isinstance(func, ast.Name):
            if func.id in program.classes:
                callee = program.resolve_method(func.id, "__init__")
                self.facts.calls.append(CallRec(callee, line, False, node))
            elif func.id in _GROWING_FREE and node.args:
                self._record_write(node.args[0], "grow", node,
                                   _short_src(node))
            else:
                key = ("F", self.path, func.id)
                if key in program.functions:
                    self.facts.calls.append(CallRec(key, line, False, node))
            return
        if not isinstance(func, ast.Attribute):
            return
        meth = func.attr
        recv = func.value
        # super().m(...)
        if (
            isinstance(recv, ast.Call)
            and isinstance(recv.func, ast.Name)
            and recv.func.id == "super"
            and self.defcls is not None
        ):
            callee = program.resolve_super(self.defcls, self.defcls, meth)
            self.facts.calls.append(
                CallRec(callee, line, False, node, via_super=meth)
            )
            return
        if meth in _WAKE_METHODS:
            self.facts.calls.append(CallRec(None, line, True, node))
            return
        if meth in _GROWING:
            self._record_write(recv, "grow", node, _short_src(node))
            return
        if meth in _DRAINING:
            self._record_write(recv, "drain", node, _short_src(node))
            return
        base = self.infer(recv)
        via_self = (
            meth
            if isinstance(recv, ast.Name) and recv.id == self.self_name
            else None
        )
        if base.tinfo.scalar:
            for cls in sorted(base.tinfo.scalar):
                callee = program.resolve_method(cls, meth)
                if callee is not None:
                    self.facts.calls.append(
                        CallRec(callee, line, False, node, via_self=via_self)
                    )


def _is_static(node: ast.FunctionDef) -> bool:
    return any(
        _tail_name(d) in ("staticmethod", "classmethod")
        for d in node.decorator_list
    )


def _constructed_classes(t: TInfo, depth: int = 0) -> set[str]:
    out = set(t.scalar)
    if t.elem is not None and depth < 3:
        out |= _constructed_classes(t.elem, depth + 1)
    return out


def _walk_exprs(node: ast.expr) -> Iterator[ast.expr]:
    """All expression nodes under ``node``, excluding nested scopes."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        if isinstance(current, ast.expr):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _short_src(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)  # type: ignore[attr-defined]
    except Exception:
        return ""
    text = text.strip().replace("\n", " ")
    return text if len(text) <= 72 else text[:69] + "..."


# ---------------------------------------------------------------------------
# whole-program passes
# ---------------------------------------------------------------------------


def _build_attr_types(program: Program) -> None:
    """Two sweeps so forward references between classes settle."""
    # class-level annotations (dataclass fields)
    for info in program.classes.values():
        for node in info.node.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                t = _parse_annotation(program, node.annotation)
                if t:
                    prev = info.attr_types.get(node.target.id, _EMPTY)
                    info.attr_types[node.target.id] = prev.union(t)
    for _sweep in range(2):
        for info in program.classes.values():
            for name, meth in info.methods.items():
                _FuncAnalyzer(
                    program, ("C", info.name, name), info.path, meth,
                    collect_attr_types=True,
                ).run()


def _build_facts(program: Program) -> None:
    for info in program.classes.values():
        for name, meth in info.methods.items():
            key: FuncKey = ("C", info.name, name)
            program.facts[key] = _FuncAnalyzer(
                program, key, info.path, meth
            ).run()
    for key, func in program.functions.items():
        program.facts[key] = _FuncAnalyzer(
            program, key, key[1], func
        ).run()


def _find_roots(program: Program) -> None:
    roots = [
        name for name, info in sorted(program.classes.items())
        if any(_NAC in program.classes[c].methods for c in program.mro(name))
    ]
    program.roots = roots


def _closure(program: Program, seeds: list[FuncKey], depth: int,
             dyncls: str | None = None) -> set[FuncKey]:
    """Call-graph closure from ``seeds``, bounded by ``depth``.

    With ``dyncls``, calls through ``self``/``super()`` inside methods of
    ``dyncls``'s own hierarchy re-resolve against ``dyncls`` (virtual
    dispatch): ``TiledSwitch.step`` calling ``self._process_sideband()``
    reaches ``StashingSwitch._process_sideband`` in the closure rooted at
    ``StashingSwitch``.
    """
    dyn_mro = frozenset(program.mro(dyncls)) if dyncls is not None else frozenset()
    seen: set[FuncKey] = set()
    frontier = [k for k in seeds if k in program.facts]
    seen.update(frontier)
    for _ in range(depth):
        nxt: list[FuncKey] = []
        for key in frontier:
            in_dyn = key[0] == "C" and key[1] in dyn_mro
            for call in program.facts[key].calls:
                callee = call.callee
                if in_dyn and dyncls is not None:
                    if call.via_self is not None:
                        callee = (
                            program.resolve_method(dyncls, call.via_self)
                            or callee
                        )
                    elif call.via_super is not None:
                        callee = (
                            program.resolve_super(
                                dyncls, key[1], call.via_super
                            )
                            or callee
                        )
                if callee is not None and callee not in seen:
                    if callee in program.facts:
                        seen.add(callee)
                        nxt.append(callee)
        if not nxt:
            break
        frontier = nxt
    return seen


def _build_relevance(program: Program) -> None:
    relevant: dict[str, set[str]] = {}
    relevant_roots: dict[tuple[str, str], set[str]] = {}
    for root in program.roots:
        nac_key = program.resolve_method(root, _NAC)
        if nac_key is None:
            continue
        for key in _closure(program, [nac_key], _RELEVANCE_DEPTH,
                            dyncls=root):
            facts = program.facts.get(key)
            if facts is None:
                continue
            for classes, attr in facts.reads:
                for cls in classes:
                    relevant.setdefault(cls, set()).add(attr)
                    relevant_roots.setdefault((cls, attr), set()).add(root)
    program.relevant = relevant
    program.relevant_roots = relevant_roots


def _build_clusters(program: Program) -> None:
    # creation edges, program-wide
    edges: dict[str, set[str]] = {}
    for facts in program.facts.values():
        for owner, created in facts.creates:
            edges.setdefault(owner, set()).add(created)
    clusters: dict[str, set[str]] = {}
    for root in program.roots:
        cluster = set(program.mro(root))
        frontier = list(cluster)
        while frontier:
            cls = frontier.pop()
            for created in edges.get(cls, ()):
                for member in program.mro(created):
                    if member not in cluster:
                        cluster.add(member)
                        frontier.append(member)
        clusters[root] = cluster
    # conduits: classes claimed by two unrelated roots
    conduits: set[str] = set()
    roots = program.roots
    for i, r1 in enumerate(roots):
        for r2 in roots[i + 1:]:
            if program.related(r1, r2):
                continue
            for cls in clusters[r1] & clusters[r2]:
                if not program.related(cls, r1) and not program.related(cls, r2):
                    conduits.add(cls)
    program.clusters = clusters
    program.conduits = conduits


def _build_reachability(program: Program) -> None:
    any_step: set[FuncKey] = set()
    step_safe: dict[str, set[FuncKey]] = {}
    for root in program.roots:
        seeds = []
        step_key = program.resolve_method(root, "step")
        if step_key is not None:
            seeds.append(step_key)
        reach = (
            _closure(program, seeds, _REACH_DEPTH, dyncls=root)
            if seeds else set()
        )
        step_safe[root] = reach
        any_step |= reach
    # components without next_active_cycle are stepped every cycle; their
    # step closures still count as "during a step" for *their own* state,
    # but they own no wake-relevant state, so only the union matters for
    # the construction-only test
    for info in program.classes.values():
        if "step" in info.methods and info.name not in step_safe:
            any_step |= _closure(
                program, [("C", info.name, "step")], _REACH_DEPTH,
                dyncls=info.name,
            )
    # constructor reachability per concrete class, so a parent __init__
    # calling an overridden helper still exempts the subclass override
    ctor_reachable: set[FuncKey] = set()
    for name in program.classes:
        seeds = []
        for m in _CTOR_METHODS:
            key = program.resolve_method(name, m)
            if key is not None:
                seeds.append(key)
        if seeds:
            ctor_reachable |= _closure(
                program, seeds, _REACH_DEPTH, dyncls=name
            )
    program.step_safe = step_safe
    program.any_step = any_step
    program.ctor_reachable = ctor_reachable


def _build_wakeish(program: Program) -> None:
    """Functions that (transitively, within two levels) issue a wake."""
    direct = {
        key for key, facts in program.facts.items()
        if any(c.direct_wake for c in facts.calls)
    }
    wakeish = set(direct)
    for _ in range(_WAKEISH_DEPTH):
        added = {
            key for key, facts in program.facts.items()
            if key not in wakeish and any(
                c.callee in wakeish for c in facts.calls
            )
        }
        if not added:
            break
        wakeish |= added
    program.wakeish = wakeish


# ---------------------------------------------------------------------------
# write classification
# ---------------------------------------------------------------------------


def _relevant_match(program: Program, write: WriteRec) -> str | None:
    """The registered wake-relevant class this write hits, or None."""
    for cls in sorted(write.classes):
        for reg_cls, attrs in program.relevant.items():
            if write.attr in attrs and program.related(cls, reg_cls):
                return reg_cls
    return None


def _owning_roots(program: Program, cls: str) -> list[str]:
    return [
        root for root in program.roots
        if cls in program.clusters.get(root, ())
    ]


def _wake_lines(program: Program, facts: FuncFacts) -> list[int]:
    return sorted(
        c.line for c in facts.calls
        if c.direct_wake or (c.callee is not None and c.callee in program.wakeish)
    )


def _classify_writes(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for key, facts in sorted(program.facts.items()):
        if not facts.writes:
            continue
        in_ctor = key[0] == "C" and key[2] in _CTOR_METHODS
        ctor_only = (
            facts.key in program.ctor_reachable
            and facts.key not in program.any_step
        )
        wake_lines = None
        for write in facts.writes:
            if write.kind == "drain":
                continue
            reg_cls = _relevant_match(program, write)
            if reg_cls is None:
                continue
            if in_ctor or ctor_only:
                continue
            # during the owner's own step, the kernel re-arms via
            # next_active_cycle right after — unless the class is shared
            # state between unrelated components (a conduit)
            if reg_cls not in program.conduits and any(
                facts.key in program.step_safe.get(root, ())
                for root in _owning_roots(program, reg_cls)
            ):
                continue
            if wake_lines is None:
                wake_lines = _wake_lines(program, facts)
            if any(line >= write.line for line in wake_lines):
                continue
            roots = sorted(
                program.relevant_roots.get((reg_cls, write.attr), ())
            )
            violations.append(
                Violation(
                    "WAKE001",
                    facts.path,
                    write.line,
                    write.col,
                    f"write to wake-relevant {reg_cls}.{write.attr} "
                    f"(read by next_active_cycle of {', '.join(roots)}) "
                    f"with no paired wake: `{write.detail}` — add a "
                    "Simulator.wake/wake_component at the new work's "
                    "cycle, or annotate `# wakecheck: ok(<reason>)`",
                )
            )
    return violations


def _check_stale_wakes(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for key, facts in sorted(program.facts.items()):
        for call in facts.calls:
            if not call.direct_wake or len(call.node.args) < 2:
                continue
            cycle_arg = call.node.args[1]
            stale = False
            if (
                isinstance(cycle_arg, ast.BinOp)
                and isinstance(cycle_arg.op, ast.Sub)
                and isinstance(cycle_arg.right, ast.Constant)
                and isinstance(cycle_arg.right.value, (int, float))
                and cycle_arg.right.value > 0
            ):
                stale = True
            if (
                isinstance(cycle_arg, ast.UnaryOp)
                and isinstance(cycle_arg.op, ast.USub)
            ) or (
                isinstance(cycle_arg, ast.Constant)
                and isinstance(cycle_arg.value, int)
                and cycle_arg.value < 0
            ):
                stale = True
            if stale:
                violations.append(
                    Violation(
                        "WAKE002",
                        facts.path,
                        call.line,
                        getattr(call.node, "col_offset", 0) + 1,
                        f"wake scheduled behind the current cycle: "
                        f"`{_short_src(call.node)}`; Simulator.wake "
                        "raises on cycles earlier than sim.cycle",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    path: str
    line: int
    reason: str
    rule_id: str

    def to_json(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line,
                "reason": self.reason, "rule": self.rule_id}


def _apply_suppressions(
    program: Program, violations: list[Violation]
) -> tuple[list[Violation], list[Suppression], list[Violation]]:
    ok_lines: dict[str, dict[int, str]] = {}
    for rel, source in program.sources.items():
        lines: dict[int, str] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _OK_RE.search(text)
            if match is not None:
                lines[lineno] = match.group(1).strip()
        if lines:
            ok_lines[rel] = lines
    kept: list[Violation] = []
    used: list[Suppression] = []
    bad: list[Violation] = []
    for violation in violations:
        reason = ok_lines.get(violation.path, {}).get(violation.line)
        if reason is None:
            kept.append(violation)
        elif not reason:
            bad.append(
                Violation(
                    violation.rule_id, violation.path, violation.line,
                    violation.col,
                    "suppression without a reason: write it as "
                    "`# wakecheck: ok(<why the wake is guaranteed>)`",
                )
            )
        else:
            used.append(
                Suppression(violation.path, violation.line, reason,
                            violation.rule_id)
            )
    return kept + bad, used, bad


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """Everything one analysis run produced."""

    program: Program
    violations: list[Violation]
    suppressions: list[Suppression]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return EXIT_VIOLATIONS if self.violations else EXIT_CLEAN


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise WakecheckError(f"{path}: not a Python file or directory")


def analyze_paths(paths: Sequence[Path]) -> Report:
    """Run the whole-program analysis over every ``.py`` under ``paths``."""
    program = Program()
    count = 0
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise WakecheckError(f"{file_path}: {exc}")
        program.add_module(file_path, source)
        count += 1
    if count == 0:
        raise WakecheckError("no Python files found under the given paths")
    _build_attr_types(program)
    _build_facts(program)
    _find_roots(program)
    _build_relevance(program)
    _build_clusters(program)
    _build_reachability(program)
    _build_wakeish(program)
    violations = _classify_writes(program) + _check_stale_wakes(program)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    violations, suppressions, _bad = _apply_suppressions(program, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return Report(program, violations, suppressions, count)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _render_text(report: Report) -> str:
    lines = [v.render() for v in report.violations]
    by_rule: dict[str, int] = {}
    for v in report.violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    summary = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
    program = report.program
    relevant_count = sum(len(a) for a in program.relevant.values())
    lines.append(
        f"wakecheck: {len(report.violations)} violation(s) in "
        f"{report.files_checked} file(s)"
        + (f" [{summary}]" if summary else "")
        + f"; {len(program.roots)} component root(s), "
        f"{relevant_count} wake-relevant attribute(s), "
        f"{len(report.suppressions)} suppression(s)"
    )
    for sup in report.suppressions:
        lines.append(
            f"  suppressed {sup.path}:{sup.line} [{sup.rule_id}]: {sup.reason}"
        )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    program = report.program
    by_rule: dict[str, int] = {}
    for v in report.violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    payload = {
        "schema_version": SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "total": len(report.violations),
        "by_rule": by_rule,
        "roots": program.roots,
        "conduits": sorted(program.conduits),
        "wake_relevant": {
            cls: sorted(attrs)
            for cls, attrs in sorted(program.relevant.items())
        },
        "suppressions": [s.to_json() for s in report.suppressions],
        "violations": [v.to_json() for v in report.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_ANNOTATE_BEGIN = "<!-- wakecheck:begin (generated; do not edit by hand) -->"
_ANNOTATE_END = "<!-- wakecheck:end -->"


def render_annotation(report: Report) -> str:
    """The generated wake-contract section for docs/WAKE_CONTRACT.md."""
    program = report.program
    lines = [
        _ANNOTATE_BEGIN,
        "",
        "Regenerate with "
        "`python -m repro.devtools.wakecheck --annotate docs/WAKE_CONTRACT.md src/`.",
        "",
        "### Component roots",
        "",
    ]
    for root in program.roots:
        cluster = sorted(
            c for c in program.clusters.get(root, ()) if c != root
        )
        lines.append(
            f"- **{root}** — owns: "
            + (", ".join(cluster) if cluster else "(nothing)")
        )
    lines += ["", "### Conduit classes (always need explicit wakes)", ""]
    if program.conduits:
        for cls in sorted(program.conduits):
            lines.append(f"- `{cls}`")
    else:
        lines.append("- (none)")
    lines += ["", "### Wake-relevant attributes", "",
              "| Class | Attribute | Read by `next_active_cycle` of |",
              "| --- | --- | --- |"]
    for cls, attrs in sorted(program.relevant.items()):
        for attr in sorted(attrs):
            roots = sorted(program.relevant_roots.get((cls, attr), ()))
            lines.append(f"| `{cls}` | `{attr}` | {', '.join(roots)} |")
    lines += ["", "### Active suppressions", ""]
    if report.suppressions:
        for sup in report.suppressions:
            lines.append(f"- `{sup.path}:{sup.line}` — {sup.reason}")
    else:
        lines.append("- (none)")
    lines += ["", _ANNOTATE_END]
    return "\n".join(lines)


def _write_annotation(report: Report, doc_path: Path) -> None:
    section = render_annotation(report)
    if doc_path.exists():
        text = doc_path.read_text(encoding="utf-8")
        begin = text.find(_ANNOTATE_BEGIN)
        end = text.find(_ANNOTATE_END)
        if begin != -1 and end != -1:
            text = text[:begin] + section + text[end + len(_ANNOTATE_END):]
        else:
            text = text.rstrip() + "\n\n" + section + "\n"
    else:
        text = "# Wake contract (generated)\n\n" + section + "\n"
    doc_path.write_text(text, encoding="utf-8")


def _render_rule_table() -> str:
    lines = []
    for rule in RULES:
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.wakecheck",
        description="whole-program wake-soundness analyzer (event kernel)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories forming one program (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--annotate",
        metavar="DOC",
        help="write the inferred wake-relevant sets into DOC between "
        "the wakecheck markers (docs/WAKE_CONTRACT.md)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_table())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("wakecheck: error: no paths given", file=sys.stderr)
        return EXIT_ERROR

    try:
        report = analyze_paths([Path(p) for p in args.paths])
    except WakecheckError as exc:
        print(f"wakecheck: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.annotate:
        _write_annotation(report, Path(args.annotate))
        print(f"wakecheck: wrote contract section to {args.annotate}")

    renderer = _render_json if args.format == "json" else _render_text
    print(renderer(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
