"""simlint — AST-based determinism and simulation-invariant linter.

The simulator's evaluation pipeline promises byte-identical output for a
given configuration and seed at any ``--jobs`` value.  That contract is
easy to break silently: one module-level ``random.random()`` call, one
wall-clock read inside a model, or one iteration over a set in a hot
path, and the paper figures stop reproducing.  simlint walks the AST of
every source file and enforces the rules that reviews kept having to
re-litigate (see ``docs/LINTING.md`` for the full rule table):

========  ============================================================
SIM001    module-level ``random`` usage (the shared global RNG) outside
          ``repro.engine.rng``
SIM002    wall-clock reads (``time.time``, ``datetime.now``,
          ``perf_counter``, ...) outside the whitelisted harness
          modules (``runner``, ``parallel`` may use ``perf_counter``)
SIM003    iteration over set-typed values in ``switch/`` / ``engine/`` /
          ``routing/`` hot paths without an explicit ``sorted()``
SIM004    ad-hoc ``random.Random(...)`` construction outside ``rng.py``
          (RNG streams must be threaded in or forked, never invented)
SIM005    falsy-``or`` defaulting of a ``None``-default parameter
          (``rng or ...``); use ``if x is None`` so falsy values survive
SIM006    mutable default argument values
SIM007    float ``==`` / ``!=`` comparisons in ``analysis/`` metrics
SIM008    missing docstrings on the public API (module docstring,
          exported defs/classes, and their public methods) of modules
          in ``engine/`` / ``switch/`` / ``obs/`` that declare
          ``__all__``
SIM009    direct write to another component's wake-relevant state
          (``_queue``, ``pending``, ``sources``, ...) through a
          function parameter; route it through a method of the owner
          that pairs the wake (see ``repro.devtools.wakecheck``)
SIM010    ``next_active_cycle`` implementations that draw from an RNG
          or mutate state; the wake probe must be pure so the event
          kernel (and ``verify_wake``) may call it at any time
========  ============================================================

Usage::

    python -m repro.devtools.simlint src [tests ...]
    python -m repro.devtools.simlint --format json src
    python -m repro.devtools.simlint --list-rules

Suppressions: append ``# simlint: disable=SIM001`` (comma-separated list
or ``all``) to the flagged line, or put
``# simlint: disable-file=SIM003`` on its own line anywhere in the file.

Exit codes are stable: 0 clean, 1 violations found, 2 usage or parse
error.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_VIOLATIONS",
    "RULES",
    "SCHEMA_VERSION",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]

SCHEMA_VERSION = 1
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


@dataclass(frozen=True)
class RuleInfo:
    rule_id: str
    name: str
    rationale: str


RULES: tuple[RuleInfo, ...] = (
    RuleInfo(
        "SIM001",
        "global-random",
        "module-level random.* calls draw from the process-shared RNG; "
        "all simulator randomness must flow through repro.engine.rng",
    ),
    RuleInfo(
        "SIM002",
        "wall-clock",
        "wall-clock reads make model behaviour depend on host timing; "
        "only the harness (runner, parallel) may time runs, and only "
        "with time.perf_counter",
    ),
    RuleInfo(
        "SIM003",
        "unordered-iteration",
        "set iteration order depends on hashing (salted for str); hot "
        "paths in switch/, engine/ and routing/ must iterate sorted()",
    ),
    RuleInfo(
        "SIM004",
        "adhoc-rng",
        "random.Random(expr) invents a seed outside the experiment seed "
        "tree; thread a stream in or fork a DeterministicRng instead",
    ),
    RuleInfo(
        "SIM005",
        "or-default",
        "`param or default` swallows falsy-but-valid values (0, [], "
        "empty RNG state); write `if param is None: ...`",
    ),
    RuleInfo(
        "SIM006",
        "mutable-default",
        "mutable default arguments alias state across calls and runs",
    ),
    RuleInfo(
        "SIM007",
        "float-equality",
        "float == / != in analysis metrics is representation-dependent; "
        "compare with math.isclose or an explicit tolerance",
    ),
    RuleInfo(
        "SIM008",
        "missing-docstring",
        "modules in engine/, switch/ and obs/ that declare __all__ are "
        "public API; the module, every exported def/class, and every "
        "public method of an exported class must carry a docstring",
    ),
    RuleInfo(
        "SIM009",
        "foreign-wake-state-write",
        "writing another component's wake-relevant state through a "
        "parameter bypasses the owner's wake pairing; call a method of "
        "the owner instead (wakecheck verifies the pairing itself)",
    ),
    RuleInfo(
        "SIM010",
        "impure-wake-probe",
        "next_active_cycle must be a pure read: the event kernel and "
        "verify_wake shadow mode may invoke it at any cycle, so RNG "
        "draws or state mutations there diverge the simulation",
    ),
)

RULE_IDS = frozenset(r.rule_id for r in RULES)

#: directories whose files are subject to SIM003 (hot simulation paths)
HOT_PATH_DIRS = frozenset({"switch", "engine", "routing"})

#: directories whose files are subject to SIM007
ANALYSIS_DIRS = frozenset({"analysis"})

#: directories whose ``__all__``-declaring modules are subject to SIM008
DOC_API_DIRS = frozenset({"engine", "switch", "obs"})

#: module stems exempt from SIM001/SIM004 (the one sanctioned RNG home)
RNG_HOME_STEMS = frozenset({"rng"})

#: module stem -> wall-clock callables it may use (SIM002 whitelist)
WALL_CLOCK_WHITELIST: dict[str, frozenset[str]] = {
    "runner": frozenset({"perf_counter"}),
    "parallel": frozenset({"perf_counter"}),
    # the perf-trajectory benchmark exists to measure wall-clock
    "bench_trajectory": frozenset({"perf_counter"}),
    # engine cross-validation reports the cycle-vs-flow speedup
    "crosscheck": frozenset({"perf_counter"}),
}

#: attribute names treated as wall-clock reads on the ``time`` module
_TIME_ATTRS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "clock", "time_ns",
     "monotonic_ns", "perf_counter_ns", "process_time_ns"}
)
#: attribute names treated as wall-clock reads on datetime/date objects
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: random-module attributes that are *not* global-RNG draws
_RANDOM_SAFE_ATTRS = frozenset({"Random", "SystemRandom"})

#: wake-relevant attribute names SIM009 protects from foreign writes.
#: Kept in sync with the registry wakecheck infers (see
#: docs/WAKE_CONTRACT.md) — these are the names whose mutation changes
#: a component's ``next_active_cycle`` answer.
_WAKE_STATE_ATTRS = frozenset(
    {"_queue", "pending", "sources", "replay", "retrieval_queue",
     "_paced_retransmits", "credits", "_blocked"}
)

#: container methods that mutate their receiver in place (SIM009/SIM010)
_MUTATOR_METHODS = frozenset(
    {"append", "appendleft", "extend", "extendleft", "insert", "add",
     "update", "pop", "popleft", "remove", "discard", "clear", "rotate",
     "setdefault", "sort", "reverse"}
)

#: name segments that identify an RNG receiver in SIM010
_RNG_SEGMENTS = frozenset({"rng", "_rng", "random"})

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit, addressable by file and position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


# ---------------------------------------------------------------------------
# suppression parsing
# ---------------------------------------------------------------------------


class _Suppressions:
    """Line-level and file-level ``# simlint:`` directives of one file."""

    def __init__(self, source: str) -> None:
        self.by_line: dict[int, frozenset[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            kind, id_list = match.groups()
            ids = frozenset(
                part.strip().upper()
                for part in id_list.split(",")
                if part.strip()
            )
            if kind == "disable-file":
                self.file_wide.update(ids)
            else:
                self.by_line[lineno] = ids

    def active(self, violation: Violation) -> bool:
        """True if ``violation`` is suppressed by a directive."""
        for ids in (self.file_wide, self.by_line.get(violation.line, ())):
            if "ALL" in ids or violation.rule_id in ids:
                return True
        return False


# ---------------------------------------------------------------------------
# per-file checker
# ---------------------------------------------------------------------------


def _call_name(node: ast.expr) -> str | None:
    """``foo`` for Name nodes, ``foo.bar`` for one-level attributes."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _module_all_names(tree: ast.Module) -> set[str] | None:
    """The string literals of a top-level ``__all__`` list/tuple
    assignment, or None when the module declares no ``__all__``."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    return {
                        elt.value
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    }
                return set()
    return None


class _FunctionScope:
    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        self.name = node.name
        # parameter names excluding the receiver (SIM009 roots)
        self.params: set[str] = {a.arg for a in positional + args.kwonlyargs}
        for star in (args.vararg, args.kwarg):
            if star is not None:
                self.params.add(star.arg)
        self.params -= {"self", "cls"}
        # parameters whose declared default is the literal None
        self.none_default_params: set[str] = set()
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if isinstance(default, ast.Constant) and default.value is None:
                self.none_default_params.add(arg.arg)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if isinstance(kw_default, ast.Constant) and kw_default.value is None:
                self.none_default_params.add(arg.arg)


class _Checker(ast.NodeVisitor):
    """Single-pass rule evaluation over one module's AST.

    A pre-pass (:meth:`_collect_set_bindings`) records names and ``self``
    attributes that are syntactically bound to set-typed expressions so
    SIM003 can flag ``for x in self.some_set`` even when the binding and
    the loop live in different methods.
    """

    def __init__(self, path: Path, tree: ast.Module) -> None:
        self.path = path
        self.rel = path.as_posix()
        self.stem = path.stem
        parts = frozenset(path.parts[:-1])
        self.in_hot_path = bool(parts & HOT_PATH_DIRS)
        self.in_analysis = bool(parts & ANALYSIS_DIRS)
        self.in_doc_api = bool(parts & DOC_API_DIRS)
        self.is_rng_home = self.stem in RNG_HOME_STEMS
        self.wall_clock_ok = WALL_CLOCK_WHITELIST.get(self.stem, frozenset())
        self.violations: list[Violation] = []
        self._scopes: list[_FunctionScope] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._set_bound: set[str] = set()
        self._collect_set_bindings(tree)
        self._check_docstrings(tree)

    # -- plumbing -------------------------------------------------------

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule_id,
                self.rel,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                message,
            )
        )

    # -- set-typed binding inference (SIM003 support) -------------------

    def _collect_set_bindings(self, tree: ast.Module) -> None:
        if not self.in_hot_path:
            return
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or not self._is_set_expr(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = _call_name(target)
                if name is not None:
                    self._set_bound.add(name)

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactically set-typed: displays, comprehensions, set()/
        frozenset() calls, set-operator combinations of those, and names
        recorded by the binding pre-pass or ending in ``_set``."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = _call_name(node.func)
            if callee in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        name = _call_name(node)
        if name is not None:
            bare = name.rsplit(".", 1)[-1]
            return name in self._set_bound or bare.endswith("_set")
        return False

    # -- scope tracking -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._scopes.append(_FunctionScope(node))
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._scopes.append(_FunctionScope(node))
        self.generic_visit(node)
        self._scopes.pop()

    # -- SIM001 / SIM002 / SIM004: calls --------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = _call_name(node.func)
        if callee is not None:
            self._check_random_call(node, callee)
            self._check_wall_clock(node, callee)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                self._check_foreign_wake_write(node.func.value, node)
                self._check_probe_mutation(
                    node.func.value, node, f"{node.func.attr}() call"
                )
            self._check_probe_rng(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, callee: str) -> None:
        if self.is_rng_home or not callee.startswith("random."):
            return
        attr = callee.split(".", 1)[1]
        if attr == "Random":
            self._flag(
                "SIM004",
                node,
                "ad-hoc random.Random(...) construction; thread an RNG "
                "stream in or fork a DeterministicRng",
            )
        elif attr not in _RANDOM_SAFE_ATTRS:
            self._flag(
                "SIM001",
                node,
                f"module-level random.{attr}() uses the shared global "
                "RNG; draw from a DeterministicRng stream",
            )

    def _check_wall_clock(self, node: ast.Call, callee: str) -> None:
        base, _, attr = callee.partition(".")
        if not attr:
            return
        is_time = base == "time" and attr in _TIME_ATTRS
        is_datetime = base in ("datetime", "date") and attr in _DATETIME_ATTRS
        if not (is_time or is_datetime):
            return
        if is_time and attr in self.wall_clock_ok:
            return
        self._flag(
            "SIM002",
            node,
            f"wall-clock call {callee}() in simulation code; timing "
            "belongs to the harness whitelist "
            f"({', '.join(sorted(WALL_CLOCK_WHITELIST))}: perf_counter)",
        )

    # -- SIM001 / SIM002: imports of the offending callables -------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and not self.is_rng_home:
            for alias in node.names:
                if alias.name not in _RANDOM_SAFE_ATTRS:
                    self._flag(
                        "SIM001",
                        node,
                        f"importing random.{alias.name} binds the shared "
                        "global RNG; import random.Random or use "
                        "DeterministicRng streams",
                    )
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS and alias.name not in self.wall_clock_ok:
                    self._flag(
                        "SIM002",
                        node,
                        f"importing time.{alias.name} into simulation "
                        "code; timing belongs to the harness",
                    )
        self.generic_visit(node)

    # -- SIM003: unordered iteration ------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_iters(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for gen in node.generators:
            self._check_unordered_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_iters
    visit_SetComp = _visit_comprehension_iters
    visit_DictComp = _visit_comprehension_iters
    visit_GeneratorExp = _visit_comprehension_iters

    def _check_unordered_iter(self, iter_node: ast.expr) -> None:
        if not self.in_hot_path:
            return
        # sorted(...) / a tuple or list copy of sorted(...) imposes order
        if isinstance(iter_node, ast.Call) and _call_name(iter_node.func) == "sorted":
            return
        if self._is_set_expr(iter_node):
            self._flag(
                "SIM003",
                iter_node,
                "iteration over a set in a hot simulation path; wrap the "
                "iterable in sorted() for a deterministic order",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("keys", "values", "items")
            and self._is_set_expr(iter_node.func.value)
        ):
            # dict views are insertion-ordered, but a view of a mapping
            # built straight from a set inherits the set's hash order
            self._flag(
                "SIM003",
                iter_node,
                "dict view over a set-derived mapping; sort the keys "
                "before building or iterating the mapping",
            )

    # -- SIM005: falsy-or defaulting ------------------------------------

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if (
            isinstance(node.op, ast.Or)
            and self._scopes
            and isinstance(node.values[0], ast.Name)
            and node.values[0].id in self._scopes[-1].none_default_params
            and self._in_value_position(node)
        ):
            self._flag(
                "SIM005",
                node,
                f"`{node.values[0].id} or ...` drops falsy-but-valid "
                "values of an optional parameter; use "
                f"`if {node.values[0].id} is None:`",
            )
        self.generic_visit(node)

    def _in_value_position(self, node: ast.BoolOp) -> bool:
        """True when the Or expression produces a value (assignment RHS,
        call argument, return) rather than serving as a condition."""
        parent = self._parents.get(node)
        if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return parent.value is node
        if isinstance(parent, ast.Return):
            return True
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(parent, ast.Call):
            return node in parent.args
        return False

    # -- SIM006: mutable defaults ---------------------------------------

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults: Iterable[ast.expr | None] = (
            list(node.args.defaults) + list(node.args.kw_defaults)
        )
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if isinstance(default, ast.Call):
                mutable = _call_name(default.func) in (
                    "list", "dict", "set", "bytearray", "collections.deque",
                    "deque",
                )
            if mutable:
                self._flag(
                    "SIM006",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the body",
                )

    # -- SIM008: public-API docstrings ----------------------------------

    def _check_docstrings(self, tree: ast.Module) -> None:
        """Modules under engine/, switch/ or obs/ that declare ``__all__``
        opt into the public-API contract: the module itself, every
        exported top-level def/class, and every public (non-underscore)
        method of an exported class must have a docstring."""
        if not self.in_doc_api:
            return
        exported = _module_all_names(tree)
        if exported is None:
            return
        if ast.get_docstring(tree) is None:
            self._flag(
                "SIM008",
                tree,
                "module declares __all__ but has no module docstring",
            )
        for node in tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name not in exported:
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            if ast.get_docstring(node) is None:
                self._flag(
                    "SIM008",
                    node,
                    f"exported {kind} {node.name} has no docstring",
                )
            if isinstance(node, ast.ClassDef):
                for member in node.body:
                    if not isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if member.name.startswith("_"):
                        continue  # private and dunder methods are exempt
                    if ast.get_docstring(member) is None:
                        self._flag(
                            "SIM008",
                            member,
                            f"public method {node.name}.{member.name} "
                            "has no docstring",
                        )

    # -- SIM009 / SIM010: wake-contract hygiene -------------------------

    @staticmethod
    def _receiver_chain(node: ast.expr) -> tuple[str | None, list[str]]:
        """Root name and attribute names (outermost last) of a dotted /
        indexed chain: ``comp.links[0].pending`` -> ("comp",
        ["links", "pending"])."""
        attrs: list[str] = []
        while True:
            if isinstance(node, ast.Attribute):
                attrs.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                break
        if isinstance(node, ast.Name):
            return node.id, attrs[::-1]
        return None, attrs[::-1]

    def _check_state_write(self, target: ast.expr) -> None:
        """Route one assignment target through SIM009 and SIM010."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_state_write(elt)
            return
        if isinstance(target, ast.Starred):
            self._check_state_write(target.value)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._check_foreign_wake_write(target, target)
            self._check_probe_mutation(target, target, "assignment")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_state_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_state_write(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_state_write(node.target)
        self.generic_visit(node)

    def _check_foreign_wake_write(
        self, receiver: ast.expr, site: ast.AST
    ) -> None:
        """SIM009: the receiver of a write/mutator is rooted at a function
        parameter (not ``self``) and ends on a wake-relevant attribute —
        foreign state is being poked past the owner's wake pairing."""
        if not self._scopes:
            return
        root, attrs = self._receiver_chain(receiver)
        if root is None or not attrs:
            return
        if root not in self._scopes[-1].params:
            return
        if attrs[-1] not in _WAKE_STATE_ATTRS:
            return
        self._flag(
            "SIM009",
            site,
            f"direct write to {root}.{'.'.join(attrs)} reaches another "
            "component's wake-relevant state; call a method of the owner "
            "so the mutation stays paired with its wake "
            "(docs/WAKE_CONTRACT.md)",
        )

    def _in_wake_probe(self) -> bool:
        return any(s.name == "next_active_cycle" for s in self._scopes)

    def _check_probe_mutation(
        self, receiver: ast.expr, site: ast.AST, verb: str
    ) -> None:
        """SIM010: a mutation inside ``next_active_cycle`` that touches
        object state (receiver chain crosses at least one attribute)."""
        if not self._in_wake_probe():
            return
        _, attrs = self._receiver_chain(receiver)
        if not attrs and not isinstance(receiver, ast.Subscript):
            return  # a purely local name: harmless scratch space
        self._flag(
            "SIM010",
            site,
            f"next_active_cycle mutates state ({verb}); the wake probe "
            "must be a pure read — the kernel and verify_wake may call "
            "it at any cycle",
        )

    def _check_probe_rng(self, node: ast.Call) -> None:
        if not self._in_wake_probe():
            return
        root, attrs = self._receiver_chain(node.func)
        segments = set(attrs[:-1]) | ({root} if root else set())
        if segments & _RNG_SEGMENTS:
            self._flag(
                "SIM010",
                node,
                "next_active_cycle draws from an RNG; the probe may run "
                "a different number of times per cycle across kernels, "
                "so any draw here diverges the simulation",
            )

    # -- SIM007: float equality -----------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.in_analysis and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(self._is_float_expr(operand) for operand in operands):
                self._flag(
                    "SIM007",
                    node,
                    "float == / != comparison in analysis code; use "
                    "math.isclose or an explicit tolerance",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_float_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return _Checker._is_float_expr(node.operand)
        if isinstance(node, ast.Call):
            return _call_name(node.func) in ("float", "math.sqrt", "math.nan")
        if isinstance(node, ast.Attribute):
            return _call_name(node) in ("math.nan", "math.inf", "np.nan", "numpy.nan")
        return False


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


class LintError(Exception):
    """A file could not be read or parsed."""


def lint_source(source: str, path: Path) -> list[Violation]:
    """Lint ``source`` as the contents of ``path`` (suppressions applied)."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
    checker = _Checker(path, tree)
    checker.visit(tree)
    suppressions = _Suppressions(source)
    kept = [v for v in checker.violations if not suppressions.active(v)]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return kept


def lint_file(path: Path) -> list[Violation]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: {exc}")
    return lint_source(source, path)


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise LintError(f"{path}: not a Python file or directory")


def lint_paths(paths: Sequence[Path]) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, files_checked)``; raises :class:`LintError`
    for unreadable or unparsable inputs.
    """
    violations: list[Violation] = []
    checked = 0
    for file_path in _iter_python_files(paths):
        violations.extend(lint_file(file_path))
        checked += 1
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, checked


def _render_text(violations: list[Violation], checked: int) -> str:
    lines = [v.render() for v in violations]
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    summary = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
    lines.append(
        f"simlint: {len(violations)} violation(s) in {checked} file(s)"
        + (f" [{summary}]" if summary else "")
    )
    return "\n".join(lines)


def _render_json(violations: list[Violation], checked: int) -> str:
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
    payload = {
        "schema_version": SCHEMA_VERSION,
        "files_checked": checked,
        "total": len(violations),
        "by_rule": by_rule,
        "violations": [v.to_json() for v in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_rule_table() -> str:
    lines = []
    for rule in RULES:
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.simlint",
        description="determinism & simulation-invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_table())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("simlint: error: no paths given", file=sys.stderr)
        return EXIT_ERROR

    try:
        violations, checked = lint_paths([Path(p) for p in args.paths])
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    renderer = _render_json if args.format == "json" else _render_text
    print(renderer(violations, checked))
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
