"""Developer tooling for the repro codebase.

Hosts :mod:`repro.devtools.simlint`, the AST-based determinism and
simulation-invariant linter that keeps the reproducibility contract
(byte-identical sweeps at any ``--jobs``; see ``docs/LINTING.md``)
machine-checked instead of review-checked, and
:mod:`repro.devtools.linkcheck`, the offline Markdown link checker run
by the CI docs job.
"""
