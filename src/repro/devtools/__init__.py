"""Developer tooling for the repro codebase.

Currently hosts :mod:`repro.devtools.simlint`, the AST-based determinism
and simulation-invariant linter that keeps the reproducibility contract
(byte-identical sweeps at any ``--jobs``; see ``docs/LINTING.md``)
machine-checked instead of review-checked.
"""
