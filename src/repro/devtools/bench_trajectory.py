"""Perf-trajectory benchmark artifact (``BENCH_<pr>.json``).

Each growth PR that touches the cycle kernel's hot path records where
the simulator's throughput stands: one JSON artifact with per-figure
wall-clock and simulated cycles per second on the ``tiny`` preset.  The
artifact is checked in at the repo root and CI regenerates it on every
push, failing when throughput regresses by more than the tolerance
against the checked-in baseline.

Wall-clock on two different hosts is not comparable, so every artifact
also embeds a *calibration*: the wall time of a fixed pure-Python busy
loop measured in the same process.  Comparisons normalise cycles/sec by
that calibration (``cps * calibration_seconds`` is a dimensionless
host-independent throughput score), which keeps the CI gate meaningful
on runners slower or faster than the machine that produced the
baseline.

Usage::

    python -m repro.devtools.bench_trajectory --out BENCH_6.json
    python -m repro.devtools.bench_trajectory --compare BENCH_6.json
    python -m repro.devtools.bench_trajectory --out BENCH_6.json \
        --compare BENCH_6.json --tolerance 0.2

Schema (``repro-bench/1``) — see ``docs/PERFORMANCE.md``::

    {
      "schema": "repro-bench/1",
      "preset": "tiny",
      "kernel": "event",
      "python": "3.12.3",
      "calibration_seconds": 0.93,
      "figures": {
        "fig5": {"wall_seconds": 41.2, "cycles": 123456,
                 "cycles_per_second": 2996.5, "points": 4},
        ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from typing import Any, Callable

from repro.engine.parallel import RunSpec, run_specs
from repro.experiments.common import preset_by_name, quicken

__all__ = ["emit", "compare", "main"]

SCHEMA = "repro-bench/1"

#: iterations of the calibration busy loop (about a second on a
#: 2 GHz core under CPython 3.12)
_CALIBRATION_ITERS = 10_000_000


def _calibrate() -> float:
    """Wall time of a fixed pure-Python loop, for host normalisation."""
    t0 = time.perf_counter()
    x = 0
    for i in range(_CALIBRATION_ITERS):
        x += i
    assert x  # keep the loop observable
    return time.perf_counter() - t0


def _fig5_specs(base) -> list[RunSpec]:
    from repro.experiments.fig5 import fig5_specs

    return fig5_specs(base, loads=(0.2, 0.5),
                      variants=("baseline", "stash100"))


def _fig7_specs(base) -> list[RunSpec]:
    from repro.experiments.fig7 import run_fig7

    def point(seed: int = 1):
        from repro.engine.parallel import Timed

        results = run_fig7(base, variants=("baseline",),
                           include_reference=False, seed=seed)
        # run_fig7 drives its own networks; cycle count is the series
        # span, which tracks total simulated cycles closely enough for a
        # throughput trend line
        total = int(max(r.time[-1] for r in results.values() if len(r.time)))
        return Timed(None, total)

    return [RunSpec(key=("fig7", "baseline"), fn=point, seed=1)]


def _fig9_specs(base) -> list[RunSpec]:
    from repro.experiments.fig9 import fig9_specs

    return fig9_specs(base, bursts_pkts=(1, 8),
                      variants=("baseline", "stash100"))


def _fig5_flow_specs(base) -> list[RunSpec]:
    """The same fig5 slice through the flow-level fastpath.  Its
    cycles/sec dwarfs the cycle kernel's by design; the artifact records
    it so the speedup claim in docs/FASTPATH.md stays measured, and the
    CI gate catches the fastpath itself regressing."""
    from repro.experiments.fig5 import fig5_specs

    return fig5_specs(base, loads=(0.2, 0.5),
                      variants=("baseline", "stash100"), engine="flow")


_FIGURES: dict[str, Callable[[Any], list[RunSpec]]] = {
    "fig5": _fig5_specs,
    "fig5_flow": _fig5_flow_specs,
    "fig7": _fig7_specs,
    "fig9": _fig9_specs,
}


def emit(kernel: str | None = None,
         figures: tuple[str, ...] | None = None) -> dict:
    """Run the benchmark slice and return the artifact dict."""
    base = quicken(preset_by_name("tiny"), 0.5)
    if kernel is not None:
        base = base.with_(sim=replace(base.sim, kernel=kernel))
    artifact: dict[str, Any] = {
        "schema": SCHEMA,
        "preset": "tiny",
        "kernel": base.sim.kernel,
        "python": platform.python_version(),
        "calibration_seconds": round(_calibrate(), 4),
        "figures": {},
    }
    for name in figures or tuple(_FIGURES):
        specs = _FIGURES[name](base)
        outcomes = run_specs(specs)
        wall = sum(o.wall_seconds for o in outcomes)
        cycles = sum(o.cycles or 0 for o in outcomes)
        artifact["figures"][name] = {
            "wall_seconds": round(wall, 2),
            "cycles": cycles,
            "cycles_per_second": round(cycles / wall, 1) if wall else 0.0,
            "points": len(outcomes),
        }
        print(f"[bench] {name}: {wall:.1f}s, {cycles} cycles "
              f"({cycles / wall if wall else 0:.0f} cyc/s)",
              file=sys.stderr)
    return artifact


def _score(artifact: dict, figure: str) -> float:
    """Host-normalised throughput score (bigger is faster)."""
    fig = artifact["figures"][figure]
    return fig["cycles_per_second"] * artifact["calibration_seconds"]


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when throughput is within tolerance)."""
    problems: list[str] = []
    for name, fig in baseline["figures"].items():
        if name not in current["figures"]:
            # a --figures subset run; only measured figures are gated
            print(f"[bench] {name}: not measured, skipping", file=sys.stderr)
            continue
        base_score = _score(baseline, name)
        cur_score = _score(current, name)
        if base_score <= 0:
            continue
        ratio = cur_score / base_score
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"[bench] {name}: normalised throughput ratio "
              f"{ratio:.2f}x vs baseline ({status})", file=sys.stderr)
        if ratio < 1.0 - tolerance:
            problems.append(
                f"{name}: normalised cycles/sec fell to {ratio:.2f}x of "
                f"the checked-in baseline (tolerance {1.0 - tolerance:.2f}x); "
                f"baseline {fig['cycles_per_second']} cyc/s * "
                f"{baseline['calibration_seconds']}s cal, current "
                f"{current['figures'][name]['cycles_per_second']} cyc/s * "
                f"{current['calibration_seconds']}s cal"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.bench_trajectory",
        description="Emit and/or compare the perf-trajectory artifact.",
    )
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the artifact JSON to FILE")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="compare a fresh run against BASELINE json; "
                        "exit 1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop "
                        "(default: 0.2 = fail below 0.8x baseline)")
    parser.add_argument("--kernel", default=None,
                        choices=("polling", "event"),
                        help="cycle kernel to benchmark (default: preset's)")
    parser.add_argument("--figures", default=None,
                        help="comma-separated subset of "
                        + ",".join(_FIGURES))
    args = parser.parse_args(argv)
    if args.out is None and args.compare is None:
        parser.error("nothing to do: pass --out and/or --compare")
    figures = tuple(args.figures.split(",")) if args.figures else None
    if figures:
        unknown = set(figures) - set(_FIGURES)
        if unknown:
            parser.error(f"unknown figures: {sorted(unknown)}")

    artifact = emit(kernel=args.kernel, figures=figures)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[bench] wrote {args.out}", file=sys.stderr)
    if args.compare:
        with open(args.compare, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare(baseline, artifact, args.tolerance)
        if problems:
            for problem in problems:
                print(f"[bench] {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
