"""Two-level fat-tree (leaf/spine) topology.

The paper motivates stashing with dragonfly numbers but notes that
"similar analyses can be conducted for ... the leaf switches in a
multi-level fat-tree" (Section I).  This topology provides that second
substrate: leaf switches carry short endpoint links (heavily
underutilized buffers -> large stash partitions) and long uplinks to the
spine (no stash), mirroring the dragonfly's endpoint/global split.

Leaves have ``p`` endpoint ports and one uplink per spine; spines have
one downlink per leaf.  Uplinks/downlinks are classed ``global``.
"""

from __future__ import annotations

from repro.topology.topology import PortSpec, Topology

__all__ = ["FatTreeTopology"]


class FatTreeTopology(Topology):
    def __init__(
        self,
        num_leaves: int,
        num_spines: int,
        p: int,
        num_ports: int | None = None,
        latency_endpoint: int = 2,
        latency_up: int = 30,
    ) -> None:
        super().__init__()
        if min(num_leaves, num_spines, p) < 1:
            raise ValueError("leaves, spines and p must be positive")
        self.num_leaves = num_leaves
        self.num_spines = num_spines
        self.p = p
        self.latency_endpoint = latency_endpoint
        self.latency_up = latency_up
        leaf_radix = p + num_spines
        spine_radix = num_leaves
        radix = max(leaf_radix, spine_radix)
        self.num_ports = num_ports if num_ports is not None else radix
        if self.num_ports < radix:
            raise ValueError(f"need {radix} ports, switch offers {self.num_ports}")
        # switches: leaves first [0, L), then spines [L, L+S)
        self.num_switches = num_leaves + num_spines
        self.num_nodes = num_leaves * p
        self.build()
        self.verify_wiring()

    def is_leaf(self, switch: int) -> bool:
        return switch < self.num_leaves

    def spine_id(self, switch: int) -> int:
        return switch - self.num_leaves

    def node_switch(self, node: int) -> int:
        return node // self.p

    def node_port(self, node: int) -> int:
        return node % self.p

    def uplink_port(self, leaf: int, spine: int) -> int:
        """Leaf port leading up to ``spine`` (spine index, not switch id)."""
        return self.p + spine

    def downlink_port(self, spine_switch: int, leaf: int) -> int:
        return leaf

    def build(self) -> None:
        ports: list[list[PortSpec]] = []
        for leaf in range(self.num_leaves):
            specs: list[PortSpec] = []
            for k in range(self.p):
                specs.append(
                    PortSpec(k, "endpoint", ("node", leaf * self.p + k),
                             self.latency_endpoint)
                )
            for spine in range(self.num_spines):
                peer = self.num_leaves + spine
                specs.append(
                    PortSpec(
                        self.uplink_port(leaf, spine),
                        "global",
                        ("switch", peer, self.downlink_port(peer, leaf)),
                        self.latency_up,
                    )
                )
            for extra in range(self.p + self.num_spines, self.num_ports):
                specs.append(PortSpec(extra, "unused", None, 0))
            ports.append(specs)
        for spine in range(self.num_spines):
            specs = []
            me = self.num_leaves + spine
            for leaf in range(self.num_leaves):
                specs.append(
                    PortSpec(
                        leaf,
                        "global",
                        ("switch", leaf, self.uplink_port(leaf, spine)),
                        self.latency_up,
                    )
                )
            for extra in range(self.num_leaves, self.num_ports):
                specs.append(PortSpec(extra, "unused", None, 0))
            ports.append(specs)
        self._ports = ports
