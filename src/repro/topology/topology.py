"""Topology abstraction shared by dragonfly, fat-tree, and testbenches.

A topology enumerates switches and, for each switch, a list of
:class:`PortSpec` entries describing what every port connects to.  Ports
are classified as ``endpoint`` / ``local`` / ``global`` / ``unused``;
the stashing switch derives its per-port stash fractions from these
classes (paper Table I and Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["PortSpec", "Topology"]

PortClass = Literal["endpoint", "local", "global", "unused"]


@dataclass(frozen=True)
class PortSpec:
    """One switch port: its link class, peer, and channel latency.

    ``peer`` is ``("node", node_id)`` for endpoint ports,
    ``("switch", switch_id, peer_port)`` for switch-to-switch links, and
    ``None`` for unused ports.
    """

    port: int
    link_class: PortClass
    peer: tuple | None
    latency: int

    def __post_init__(self) -> None:
        if self.link_class != "unused" and self.peer is None:
            raise ValueError(f"{self.link_class} port {self.port} must have a peer")
        if self.link_class != "unused" and self.latency < 1:
            raise ValueError("connected ports need latency >= 1")


class Topology:
    """Base class: concrete topologies fill the wiring tables."""

    num_switches: int
    num_nodes: int
    num_ports: int  # ports available per switch (>= used radix)

    def __init__(self) -> None:
        self._ports: list[list[PortSpec]] = []

    def build(self) -> None:
        """Populate ``self._ports``; called by subclasses at init."""
        raise NotImplementedError

    # -- wiring queries --------------------------------------------------

    def switch_ports(self, switch: int) -> list[PortSpec]:
        return self._ports[switch]

    def port_spec(self, switch: int, port: int) -> PortSpec:
        return self._ports[switch][port]

    def port_class(self, switch: int, port: int) -> PortClass:
        return self._ports[switch][port].link_class

    def end_ports(self, switch: int) -> list[int]:
        return [
            s.port for s in self._ports[switch] if s.link_class == "endpoint"
        ]

    def verify_wiring(self) -> None:
        """Every switch-to-switch link must be symmetric; every node must
        attach to exactly one port.  Raises on any inconsistency."""
        seen_nodes: dict[int, tuple[int, int]] = {}
        for s in range(self.num_switches):
            for spec in self._ports[s]:
                if spec.link_class == "unused":
                    continue
                assert spec.peer is not None
                # node attachments may carry a non-endpoint class override
                # (testbench topologies use this to vary stash fractions)
                if spec.peer[0] == "node":
                    _, node = spec.peer
                    if node in seen_nodes:
                        raise AssertionError(
                            f"node {node} attached twice: {seen_nodes[node]} "
                            f"and ({s}, {spec.port})"
                        )
                    seen_nodes[node] = (s, spec.port)
                else:
                    assert spec.peer is not None
                    _, peer_switch, peer_port = spec.peer
                    back = self._ports[peer_switch][peer_port]
                    if back.peer != ("switch", s, spec.port):
                        raise AssertionError(
                            f"asymmetric link ({s},{spec.port}) -> "
                            f"({peer_switch},{peer_port}) -> {back.peer}"
                        )
                    if back.latency != spec.latency:
                        raise AssertionError("link latency mismatch")
                    if back.link_class != spec.link_class:
                        raise AssertionError("link class mismatch")
        if len(seen_nodes) != self.num_nodes:
            raise AssertionError(
                f"{len(seen_nodes)} nodes wired, expected {self.num_nodes}"
            )

    # -- node placement ---------------------------------------------------

    def node_switch(self, node: int) -> int:
        raise NotImplementedError

    def node_port(self, node: int) -> int:
        """The switch port the node attaches to."""
        raise NotImplementedError
