"""Single-switch testbench topology.

All endpoints hang off one switch.  This is the workhorse for unit and
integration tests of the switch microarchitecture (tile arbitration,
stash datapaths, reliability bookkeeping) because simulations are fast
and every packet takes exactly one hop.

``link_classes`` optionally overrides the class of each endpoint port so
stash-fraction logic can be exercised (e.g. mark some ports "local" or
"global" to vary their partitions).
"""

from __future__ import annotations

from repro.topology.topology import PortSpec, Topology

__all__ = ["SingleSwitchTopology"]


class SingleSwitchTopology(Topology):
    def __init__(
        self,
        num_nodes: int,
        num_ports: int,
        latency: int = 2,
        link_classes: list[str] | None = None,
    ) -> None:
        super().__init__()
        if num_nodes > num_ports:
            raise ValueError("more nodes than switch ports")
        self.num_switches = 1
        self.num_nodes = num_nodes
        self.num_ports = num_ports
        self.latency = latency
        if link_classes is None:
            link_classes = ["endpoint"] * num_nodes
        self._classes = link_classes
        if len(self._classes) != num_nodes:
            raise ValueError("link_classes must cover every node")
        self.build()
        self.verify_wiring()

    def build(self) -> None:
        specs: list[PortSpec] = []
        for k in range(self.num_nodes):
            cls = self._classes[k]
            if cls not in ("endpoint", "local", "global"):
                raise ValueError(f"bad link class {cls!r}")
            specs.append(PortSpec(k, cls, ("node", k), self.latency))  # type: ignore[arg-type]
        for k in range(self.num_nodes, self.num_ports):
            specs.append(PortSpec(k, "unused", None, 0))
        self._ports = [specs]

    def node_switch(self, node: int) -> int:
        return 0

    def node_port(self, node: int) -> int:
        return node

    def end_ports(self, switch: int) -> list[int]:
        # every attached node counts as an end port regardless of the
        # class override used for stash-fraction testing
        return list(range(self.num_nodes))
