"""Canonical dragonfly topology (paper Section V).

Groups of ``a`` fully connected switches; each switch serves ``p``
endpoints and ``h`` global channels.  With the canonical group count
``g = a*h + 1`` every pair of groups shares exactly one global channel.
Sub-canonical group counts are supported by using only the first ``g-1``
global slots of each group (each pair still gets exactly one channel;
surplus global ports become ``unused``).

Wiring rule (symmetric by construction): group ``G``'s global slot ``m``
(slot ``m`` lives on switch ``m // h``, local slot ``m % h``) connects to
group ``(G + m + 1) mod g``, where it occupies slot ``g - 2 - m``.

Port layout per switch: ``[0, p)`` endpoints, ``[p, p+a-1)`` locals in
peer order (skipping self), ``[p+a-1, p+a-1+h)`` globals, remainder
unused.  The paper assigns symmetric ports randomly; the assignment is
immaterial to behaviour, so we keep it deterministic.
"""

from __future__ import annotations

from repro.engine.config import DragonflyParams
from repro.topology.topology import PortSpec, Topology

__all__ = ["DragonflyTopology"]


class DragonflyTopology(Topology):
    def __init__(self, params: DragonflyParams, num_ports: int | None = None) -> None:
        super().__init__()
        self.params = params
        self.p = params.p
        self.a = params.a
        self.h = params.h
        self.g = params.groups
        self.num_switches = self.a * self.g
        self.num_nodes = self.p * self.num_switches
        radix = params.switch_radix
        self.num_ports = num_ports if num_ports is not None else radix
        if self.num_ports < radix:
            raise ValueError(f"need {radix} ports, switch offers {self.num_ports}")
        # routing tables filled by build()
        self._route_to_group: list[dict[int, int]] = []
        self._global_owner: list[dict[int, int]] = []  # group -> {target: switch}
        self.build()
        self.verify_wiring()

    # -- identity helpers -------------------------------------------------

    def group_of(self, switch: int) -> int:
        return switch // self.a

    def pos_in_group(self, switch: int) -> int:
        return switch % self.a

    def node_switch(self, node: int) -> int:
        return node // self.p

    def node_port(self, node: int) -> int:
        return node % self.p

    def eject_port(self, switch: int, node: int) -> int:
        if self.node_switch(node) != switch:
            raise ValueError(f"node {node} not attached to switch {switch}")
        return self.node_port(node)

    def local_port(self, switch: int, peer: int) -> int:
        """Port on ``switch`` leading to same-group ``peer``."""
        if self.group_of(switch) != self.group_of(peer) or switch == peer:
            raise ValueError(f"{switch} and {peer} are not distinct group peers")
        i, j = self.pos_in_group(switch), self.pos_in_group(peer)
        return self.p + (j if j < i else j - 1)

    def global_port(self, switch: int, slot: int) -> int:
        return self.p + self.a - 1 + slot

    # -- wiring -----------------------------------------------------------

    def build(self) -> None:
        p, a, h, g = self.p, self.a, self.h, self.g
        lat_e = self.params.latency_endpoint
        lat_l = self.params.latency_local
        lat_g = self.params.latency_global
        used_slots = g - 1  # global slots wired per group (canonical: a*h)

        self._ports = []
        for s in range(self.num_switches):
            grp, pos = divmod(s, a)
            specs: list[PortSpec] = []
            for k in range(p):
                specs.append(PortSpec(k, "endpoint", ("node", s * p + k), lat_e))
            for j in range(a):
                if j == pos:
                    continue
                peer = grp * a + j
                port = self.local_port(s, peer)
                peer_port = self.local_port(peer, s)
                specs.append(PortSpec(port, "local", ("switch", peer, peer_port), lat_l))
            specs.sort(key=lambda spec: spec.port)
            for k in range(h):
                m = pos * h + k
                port = self.global_port(s, k)
                if m >= used_slots:
                    specs.append(PortSpec(port, "unused", None, 0))
                    continue
                target_group = (grp + m + 1) % g
                m_back = g - 2 - m
                peer = target_group * a + m_back // h
                peer_port = self.global_port(peer, m_back % h)
                specs.append(
                    PortSpec(port, "global", ("switch", peer, peer_port), lat_g)
                )
            for extra in range(p + a - 1 + h, self.num_ports):
                specs.append(PortSpec(extra, "unused", None, 0))
            self._ports.append(specs)

        self._build_routing_tables()

    def _build_routing_tables(self) -> None:
        """Per-switch map: destination group -> output port (minimal)."""
        a, h, g = self.a, self.h, self.g
        # which switch in each group owns the global link to each target
        self._global_owner = []
        for grp in range(g):
            owner: dict[int, int] = {}
            for m in range(g - 1):
                target = (grp + m + 1) % g
                owner[target] = grp * a + m // h
            self._global_owner.append(owner)

        self._route_to_group = []
        for s in range(self.num_switches):
            grp = self.group_of(s)
            table: dict[int, int] = {}
            for target in range(g):
                if target == grp:
                    continue
                gateway = self._global_owner[grp][target]
                if gateway == s:
                    m = [
                        m
                        for m in range(g - 1)
                        if (grp + m + 1) % g == target and grp * a + m // h == s
                    ][0]
                    table[target] = self.global_port(s, m % h)
                else:
                    table[target] = self.local_port(s, gateway)
            self._route_to_group.append(table)

    # -- routing queries ----------------------------------------------------

    def route_to_group(self, switch: int, group: int) -> int:
        """Minimal next output port from ``switch`` toward ``group``."""
        return self._route_to_group[switch][group]

    def gateway_switch(self, group: int, target_group: int) -> int:
        """The switch in ``group`` owning the global link to ``target_group``."""
        return self._global_owner[group][target_group]

    def has_global_to(self, switch: int, group: int) -> bool:
        return self.gateway_switch(self.group_of(switch), group) == switch
