"""Network topologies: canonical dragonfly, two-level fat-tree, and a
single-switch testbench.

A topology describes switches, their port assignments (endpoint / local /
global link classes with per-class latencies), and the wiring between
them; the network builder turns it into live channels, and the routers in
:mod:`repro.routing` consult its reachability tables.
"""

from repro.topology.topology import PortSpec, Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.single_switch import SingleSwitchTopology

__all__ = [
    "DragonflyTopology",
    "FatTreeTopology",
    "PortSpec",
    "SingleSwitchTopology",
    "Topology",
]
