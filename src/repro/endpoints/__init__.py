"""Endpoint (NIC) models: queue-pair send queues, message segmentation,
packet injection, ACK generation, and ECN window enforcement."""

from repro.endpoints.endpoint import Endpoint

__all__ = ["Endpoint"]
