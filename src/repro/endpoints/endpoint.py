"""The endpoint / NIC model (paper Section V).

Endpoints transmit messages through InfiniBand-style queue pairs: a
separate send queue per destination, with active queues arbitrating for
the injection channel per-packet round-robin.  Messages are segmented
into packets of at most ``max_packet_flits``; every delivered data packet
is acknowledged by a hardware-generated single-flit ACK carrying the
ECN bit copied from the data packet.

Injection-buffer VC plan: data packets enter the first-hop switch on
VC 0, ACKs on VC 1.  Separating them means a reliability-stashing stall
on the data queue (stash buffers exhausted, Section IV-A) can never
head-of-line-block the ACKs whose return is what frees the stash —
matching the paper's assumption that ACKs flow unconditionally.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.engine.channel import Channel, CreditChannel
from repro.obs.events import EventTrace
from repro.protocol.ecn import EcnWindows
from repro.protocol.ordering import ReorderBuffer
from repro.switch.damq import DamqMirror
from repro.switch.flit import Message, Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network import Network
    from repro.traffic.generators import TrafficSource

__all__ = ["Endpoint"]

DATA_INJECT_VC = 0
ACK_INJECT_VC = 1


class Endpoint:
    __slots__ = (
        "node",
        "net",
        "rng",
        "flit_out",
        "credit_in",
        "flit_in",
        "mirror",
        "obs",
        "send_queues",
        "_rr_dsts",
        "_rr_members",
        "ack_queue",
        "_streams",
        "_inject_rr",
        "ecn",
        "reorder",
        "acks_enabled",
        "_pending_acks",
        "sources",
        "flits_generated",
        "flits_injected",
        "flits_ejected",
        "packets_delivered",
        "packets_corrupted",
        "packets_reorder_dropped",
        "messages_posted",
    )

    def __init__(
        self,
        node: int,
        network: "Network",
        rng: random.Random,
    ) -> None:
        self.node = node
        self.net = network
        self.rng = rng

        # wiring (assigned by the network builder)
        self.flit_out: Channel | None = None
        self.credit_in: CreditChannel | None = None
        self.flit_in: Channel | None = None
        self.mirror: DamqMirror | None = None
        # event trace when obs tracing is enabled, else None (zero cost)
        self.obs: EventTrace | None = None

        self.send_queues: dict[int, deque[Packet]] = {}
        self._rr_dsts: deque[int] = deque()  # round-robin order of active queues
        self._rr_members: set[int] = set()
        self.ack_queue: deque[Packet] = deque()
        # one in-progress packet per injection VC: flits of the data and
        # ACK streams interleave on the channel (per-VC wormhole), so a
        # credit-stalled data packet can never block ACK injection
        self._streams: dict[int, list] = {}  # vc -> [pkt, next_idx]
        self._inject_rr = 0
        self.ecn = EcnWindows(network.config.ecn)
        ordering = network.config.ordering
        self.reorder: ReorderBuffer | None = (
            ReorderBuffer(ordering.buffer_flits) if ordering.enabled else None
        )
        self.acks_enabled = network.acks_enabled
        self._pending_acks: dict[int, tuple[int, int]] = {}  # pid -> (dst, size)
        self.sources: list[TrafficSource] = []

        self.flits_generated = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_delivered = 0
        self.packets_corrupted = 0
        self.packets_reorder_dropped = 0
        self.messages_posted = 0

    # ------------------------------------------------------------------
    # message posting (traffic generators and trace replay call this)
    # ------------------------------------------------------------------

    def post_message(
        self,
        dst: int,
        size_flits: int,
        cycle: int,
        tag: int = 0,
        on_complete: Callable[[Message, int], None] | None = None,
    ) -> Message:
        """Segment a message into packets and queue them on the
        destination's send queue (queue pair)."""
        net = self.net
        msg = net.alloc_message(self.node, dst, size_flits, cycle, tag)
        msg.on_complete = on_complete
        self.messages_posted += 1
        if dst == self.node:
            # self-sends bypass the network (loopback in the NIC)
            msg.packets_total = 1
            msg.packets_delivered = 1
            msg.complete_cycle = cycle
            if on_complete is not None:
                on_complete(msg, cycle)
            return msg

        max_pkt = net.config.switch.max_packet_flits
        queue = self.send_queues.get(dst)
        if queue is None:
            queue = deque()
            self.send_queues[dst] = queue
        remaining = size_flits
        seq = 0
        while remaining > 0:
            pkt_size = min(max_pkt, remaining)
            pkt = Packet(
                net.alloc_pid(),
                self.node,
                dst,
                pkt_size,
                PacketKind.DATA,
                birth_cycle=cycle,
                msg_id=msg.msg_id,
                seq=seq,
            )
            if dst not in self._rr_members:
                self._rr_members.add(dst)
                self._rr_dsts.append(dst)
            queue.append(pkt)
            seq += 1
            remaining -= pkt_size
        msg.packets_total = seq
        self.flits_generated += size_flits
        net.on_generated(size_flits)
        # external posters (trace replay, tests) may target a sleeping
        # endpoint; self-posts during our own step no-op in the wake list
        net.sim.wake_component(self, cycle)
        return msg

    @property
    def backlog_flits(self) -> int:
        return sum(p.size for q in self.send_queues.values() for p in q)

    @property
    def idle(self) -> bool:
        return (
            not self._streams
            and not self.ack_queue
            and not any(self.send_queues.values())
        )

    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        self._receive(cycle)
        for source in self.sources:
            source.generate(self, cycle)
        self.ecn.tick(cycle)
        self._inject(cycle)

    def next_active_cycle(self, cycle: int) -> int | None:
        """Wake-list contract (docs/PERFORMANCE.md): the next cycle our
        ``step`` could do anything, or None to sleep until an external
        wake.  Any queued work, a non-empty round-robin ring (its lazy
        stale-entry cleanup mutates arbitration order), or an ECN window
        in recovery (its tick is clocked on absolute cycles) keeps the
        endpoint stepping every cycle; otherwise the earliest of the
        sources' own schedules and the input channels' delivery
        deadlines bounds the sleep."""
        if (
            self._streams
            or self.ack_queue
            or self._rr_dsts
            or self.ecn.recovering
        ):
            return cycle + 1
        wake: int | None = None
        for source in self.sources:
            nac = getattr(source, "next_active_cycle", None)
            if nac is None:
                return cycle + 1  # unknown source: never skip it
            when = nac(cycle)
            if when is not None:
                if when <= cycle + 1:
                    return cycle + 1
                if wake is None or when < wake:
                    wake = when
        for ch in (self.flit_in, self.credit_in):
            if ch is not None:
                due = ch.next_deadline
                if due is not None:
                    if due <= cycle + 1:
                        return cycle + 1
                    if wake is None or due < wake:
                        wake = due
        return wake

    # -- receive side ----------------------------------------------------

    def _receive(self, cycle: int) -> None:
        ch = self.credit_in
        if ch is not None and self.mirror is not None:
            q = ch._queue
            if q and q[0][0] <= cycle:
                release = self.mirror.space.release
                while q and q[0][0] <= cycle:
                    vc, n = q.popleft()[1]
                    release(vc, n)
        ch = self.flit_in
        if ch is None:
            return
        q = ch._queue
        if not q or q[0][0] > cycle:
            return
        n_ejected = 0
        while q and q[0][0] <= cycle:
            _vc, flit = q.popleft()[1]
            n_ejected += 1
            if flit.tail:
                self._deliver(flit.pkt, cycle)
        self.flits_ejected += n_ejected

    def _deliver(self, pkt: Packet, cycle: int) -> None:
        net = self.net
        if pkt.kind == PacketKind.ACK:
            pending = self._pending_acks.pop(pkt.ack_for, None)
            if pending is not None:
                # positive or negative, the original packet has left the
                # network, so the window debit is released; switch-side
                # retransmissions are not window-accounted (the stash is
                # their pacing mechanism)
                dst, size = pending
                new_window = self.ecn.on_ack(dst, size, pkt.ack_ecn)
                if new_window is not None and self.obs is not None:
                    self.obs.emit(
                        cycle, "ecn.window_cut", -1, self.node, -1, -1,
                        new_window,
                    )
            net.on_ack_delivered(pkt, cycle)
            return

        corrupted = (
            net.error_rate > 0.0 and self.rng.random() < net.error_rate
        )
        deliverable = [pkt]
        accepted = True
        if not corrupted and self.reorder is not None:
            # order enforcement (Section IV-C): in-sequence packets (and
            # whatever they unblock) deliver; early arrivals are held in
            # the reorder buffer or, if it is full, dropped and NACKed so
            # the first-hop stash retransmits them
            accepted, deliverable = self.reorder.accept(pkt)
        if self.acks_enabled:
            ack = Packet(
                net.alloc_pid(),
                self.node,
                pkt.src,
                1,
                PacketKind.ACK,
                birth_cycle=cycle,
            )
            ack.ack_for = pkt.pid
            ack.ack_ecn = pkt.ecn
            ack.ack_positive = not corrupted and accepted
            self.ack_queue.append(ack)
        if corrupted:
            self.packets_corrupted += 1
            return
        if not accepted:
            self.packets_reorder_dropped += 1
            return
        for ready in deliverable:
            ready.eject_cycle = cycle
            self.packets_delivered += 1
            net.on_delivered(ready, cycle)
            if self.reorder is not None:
                msg = net.messages.get(ready.msg_id)
                if msg is not None and msg.delivered:
                    self.reorder.finish_message(ready.msg_id)

    # -- inject side -------------------------------------------------------

    def _inject(self, cycle: int) -> None:
        if self.flit_out is None:
            return
        streams = self._streams
        if ACK_INJECT_VC not in streams:
            self._start_next_ack(cycle)
        if DATA_INJECT_VC not in streams:
            self._start_next_data(cycle)
        if not streams:
            return
        assert self.mirror is not None
        # single-flit credit check, inlined from the mirror's accounting
        space = self.mirror.space
        committed = space.committed
        reserves = space.reserves
        shared_free = space._shared_used < space.shared_capacity
        eligible = [
            vc for vc in streams
            if shared_free or committed[vc] < reserves[vc]
        ]
        if not eligible:
            return
        # round-robin the channel between the active VC streams
        if len(eligible) == 1:
            vc = eligible[0]
        else:
            rr = self._inject_rr
            vc = min(eligible, key=lambda v: (v - rr) % 8)
        self._inject_rr = (vc + 1) % 8
        stream = streams[vc]
        pkt, idx = stream
        # inline debit_flit(vc): the credit check above guarantees space
        occ = committed[vc]
        committed[vc] = occ + 1
        if occ >= reserves[vc]:
            space._shared_used += 1
        total = space._total + 1
        space._total = total
        if total > space.peak_committed:
            space.peak_committed = total
        flit = pkt.flits[idx]
        self.flit_out.send((vc, flit), cycle)
        self.flits_injected += 1
        if flit.head and self.obs is not None:
            self.obs.emit(cycle, "flit.inject", -1, self.node, vc,
                          pkt.pid, pkt.size)
        if flit.tail:
            del streams[vc]
        else:
            stream[1] = idx + 1

    def _start_next_ack(self, cycle: int) -> None:
        """Hardware-generated ACKs (paper Section IV-A) ride their own
        injection VC, independent of the data queues."""
        if not self.ack_queue:
            return
        ack = self.ack_queue.popleft()
        self.net.router.prepare_injection(ack)
        ack.vc = ACK_INJECT_VC
        ack.inject_cycle = cycle
        self._streams[ACK_INJECT_VC] = [ack, 0]

    def _start_next_data(self, cycle: int) -> None:
        # per-packet round-robin over active queue pairs
        for _ in range(len(self._rr_dsts)):
            dst = self._rr_dsts[0]
            queue = self.send_queues.get(dst)
            if not queue:
                self._rr_dsts.popleft()
                self._rr_members.discard(dst)
                continue
            pkt = queue[0]
            if not self.ecn.can_send(dst, pkt.size):
                self._rr_dsts.rotate(-1)
                continue
            queue.popleft()
            self._rr_dsts.rotate(-1)
            self.ecn.on_inject(dst, pkt.size)
            self._pending_acks[pkt.pid] = (dst, pkt.size)
            self.net.router.prepare_injection(pkt)
            pkt.vc = DATA_INJECT_VC
            pkt.inject_cycle = cycle
            self._streams[DATA_INJECT_VC] = [pkt, 0]
            return
