"""Little's-law model of stash-capacity-limited saturation (Section VI-A).

With end-to-end reliability, an endpoint can have at most its share of
the switch's stash capacity outstanding.  The paper calculates: 25 %
capacity is ~60 KB per switch, ~12 KB per endpoint; at a 1.6 us round
trip and 10 GB/s links, Little's law bounds the sustainable injection
rate to 12 KB / 1.6 us = 7.5 GB/s = 75 % — "closely resembling the
simulation result" of ~78 %.
"""

from __future__ import annotations

from repro.engine.config import NetworkConfig

__all__ = ["stash_limited_injection_rate", "stash_per_endpoint_flits"]


def stash_per_endpoint_flits(config: NetworkConfig) -> float:
    """Average stash flits available per endpoint on one switch."""
    sw = config.switch
    st = config.stash
    df = config.dragonfly
    pooled = sw.input_buffer_flits + sw.output_buffer_flits
    per_switch = (
        df.p * st.frac_endpoint + (df.a - 1) * st.frac_local + df.h * st.frac_global
    ) * pooled * st.capacity_scale
    return per_switch / df.p


def stash_limited_injection_rate(
    stash_flits_per_endpoint: float, round_trip_cycles: float
) -> float:
    """Little's law: sustainable injection (flits/cycle/node) when at most
    ``stash_flits_per_endpoint`` may be outstanding over a round trip of
    ``round_trip_cycles``.  Capped at 1.0 (link rate)."""
    if round_trip_cycles <= 0:
        raise ValueError("round trip must be positive")
    return min(1.0, stash_flits_per_endpoint / round_trip_cycles)
