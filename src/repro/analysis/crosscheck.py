"""Cross-validation of the flow-level fastpath against the cycle kernel.

Runs the same :class:`~repro.scenario.ScenarioSpec` through both engines
on a family of small presets and reports the throughput/latency deltas
plus the wall-clock speedup.  This is the accuracy contract behind
``--engine flow``: the fluid model is trusted only where this harness
shows it tracking the cycle-accurate kernel (see docs/FASTPATH.md for
the known divergences outside that envelope).

Both engines consume the *identical* spec object — the harness asserts
the spec hashes match before comparing results, so a divergence is an
engine-model difference, never a scenario-construction one.

Usage::

    python -m repro.analysis.crosscheck            # full presets
    python -m repro.analysis.crosscheck --quick    # CI smoke (short runs)
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, replace

from repro.engine.base import EngineResult, get_engine
from repro.engine.config import (
    DragonflyParams,
    NetworkConfig,
    SimParams,
    StashParams,
    SwitchParams,
)
from repro.experiments.common import preset_by_name
from repro.scenario import (
    FatTreeTopologySpec,
    ScenarioSpec,
    SingleSwitchTopologySpec,
    UniformTraffic,
    reliability_scenario,
)

__all__ = [
    "CrossCheckRow",
    "crosscheck_presets",
    "format_crosscheck",
    "main",
    "run_crosscheck",
]

#: throughput agreement required of the fluid model on these presets
THROUGHPUT_TOLERANCE = 0.10


@dataclass(frozen=True)
class CrossCheckRow:
    preset: str
    spec_hash: str
    cycle_throughput: float
    flow_throughput: float
    cycle_latency: float
    flow_latency: float
    cycle_seconds: float
    flow_seconds: float

    @property
    def throughput_delta(self) -> float:
        """Signed relative error of the flow engine's accepted load."""
        if self.cycle_throughput <= 0:
            return 0.0
        return (
            self.flow_throughput - self.cycle_throughput
        ) / self.cycle_throughput

    @property
    def latency_ratio(self) -> float:
        if self.cycle_latency <= 0:
            return 1.0
        return self.flow_latency / self.cycle_latency

    @property
    def speedup(self) -> float:
        if self.flow_seconds <= 0:
            return float("inf")
        return self.cycle_seconds / self.flow_seconds

    @property
    def within_tolerance(self) -> bool:
        return abs(self.throughput_delta) <= THROUGHPUT_TOLERANCE


def _short(cfg: NetworkConfig, quick: bool) -> NetworkConfig:
    """CI-smoke windows.  The warmup must still cover the slowest
    queue-fill transient (the stash-bound point takes ~1.5k cycles to
    reach steady state) or the cycle *reference* is biased low and the
    comparison measures the transient, not the model."""
    if not quick:
        return cfg
    return cfg.with_(
        sim=replace(
            cfg.sim,
            warmup_cycles=1500,
            measure_cycles=4000,
            drain_cycles=12000,
        )
    )


def _micro_dragonfly() -> NetworkConfig:
    """A 6-node dragonfly (p=1, a=2, h=1) small enough that the cycle
    engine finishes in seconds — the stash-bound validation point.  At
    this scale the fluid queueing model tracks the cycle engine's
    latency closely, so the congestion-aware stash RTT (and therefore
    the Little's-law saturation level) is meaningful; see
    docs/FASTPATH.md for the tiny-preset caveat."""
    return NetworkConfig(
        switch=SwitchParams(
            num_ports=4,
            rows=2,
            cols=2,
            num_vcs=6,
            input_buffer_flits=96,
            output_buffer_flits=96,
            row_buffer_packets=4,
            col_buffer_packets=4,
            max_packet_flits=4,
            speedup=1.3,
            sideband_latency=2,
        ),
        dragonfly=DragonflyParams(
            p=1,
            a=2,
            h=1,
            latency_endpoint=1,
            latency_local=2,
            latency_global=8,
        ),
        stash=StashParams(frac_local=0.5),
        sim=SimParams(
            seed=7,
            warmup_cycles=2000,
            measure_cycles=8000,
            drain_cycles=30000,
            sample_period=25,
        ),
    )


def crosscheck_presets(
    quick: bool = False,
) -> list[tuple[str, ScenarioSpec]]:
    """The validation family: one preset per topology the fastpath
    models, at moderate load (the regime the fluid model is built for),
    plus one stash-bound point exercising the Little's-law pool."""
    tiny = _short(preset_by_name("tiny"), quick)
    micro = _short(_micro_dragonfly(), quick)
    load = 0.5
    presets = [
        (
            "single-switch",
            ScenarioSpec(
                config=tiny,
                topology=SingleSwitchTopologySpec(num_nodes=6),
                traffic=(UniformTraffic(rate=load),),
            ),
        ),
        (
            "dragonfly",
            ScenarioSpec(config=tiny, traffic=(UniformTraffic(rate=load),)),
        ),
        (
            "micro-stash25",
            reliability_scenario(
                micro, "stash25", traffic=(UniformTraffic(rate=0.8),)
            ),
        ),
        (
            "fat-tree",
            ScenarioSpec(
                config=tiny,
                topology=FatTreeTopologySpec(),
                traffic=(UniformTraffic(rate=0.3),),
            ),
        ),
    ]
    return presets


def _run_timed(engine_name: str, spec: ScenarioSpec) -> tuple[EngineResult, float]:
    engine = get_engine(engine_name)
    t0 = time.perf_counter()
    result = engine.run(spec)
    return result, time.perf_counter() - t0


def run_crosscheck(
    presets: list[tuple[str, ScenarioSpec]] | None = None,
    quick: bool = False,
    progress=None,
) -> list[CrossCheckRow]:
    if presets is None:
        presets = crosscheck_presets(quick)
    rows = []
    for name, spec in presets:
        cycle_spec, flow_spec = spec, spec
        assert cycle_spec.spec_hash() == flow_spec.spec_hash()
        cycle, cycle_s = _run_timed("cycle", cycle_spec)
        flow, flow_s = _run_timed("flow", flow_spec)
        row = CrossCheckRow(
            preset=name,
            spec_hash=spec.spec_hash()[:12],
            cycle_throughput=cycle.accepted_load,
            flow_throughput=flow.accepted_load,
            cycle_latency=cycle.avg_latency,
            flow_latency=flow.avg_latency,
            cycle_seconds=cycle_s,
            flow_seconds=flow_s,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows


def format_crosscheck(rows: list[CrossCheckRow]) -> str:
    lines = [
        "Engine cross-validation (cycle vs flow, identical specs)",
        "",
        f"{'preset':<18} {'hash':<13} {'cyc thr':>8} {'flow thr':>9} "
        f"{'delta':>7} {'cyc lat':>8} {'flow lat':>9} {'speedup':>8}",
    ]
    for r in rows:
        flag = "" if r.within_tolerance else "  <-- OUT OF TOLERANCE"
        lines.append(
            f"{r.preset:<18} {r.spec_hash:<13} {r.cycle_throughput:>8.3f} "
            f"{r.flow_throughput:>9.3f} {r.throughput_delta:>+7.1%} "
            f"{r.cycle_latency:>8.1f} {r.flow_latency:>9.1f} "
            f"{r.speedup:>7.0f}x{flag}"
        )
    worst = max((abs(r.throughput_delta) for r in rows), default=0.0)
    lines.append("")
    lines.append(
        f"worst throughput delta {worst:.1%} "
        f"(tolerance {THROUGHPUT_TOLERANCE:.0%})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.crosscheck",
        description="Validate the flow-level fastpath against the "
        "cycle-accurate kernel on small presets.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter cycle-engine windows (CI smoke)",
    )
    args = parser.parse_args(argv)

    def progress(row: CrossCheckRow) -> None:
        print(
            f"[crosscheck] {row.preset}: cycle {row.cycle_seconds:.1f}s, "
            f"flow {row.flow_seconds:.2f}s",
            file=sys.stderr,
        )

    rows = run_crosscheck(quick=args.quick, progress=progress)
    print(format_crosscheck(rows))
    return 0 if all(r.within_tolerance for r in rows) else 1


if __name__ == "__main__":
    sys.exit(main())
