"""Network instrumentation reports.

Aggregates the counters every component already maintains into a single
structured snapshot (and a human-readable rendering): per-class port
utilization, stash activity, protocol health (ECN cuts, link replays,
retransmissions, reorder drops), and conservation checks.  This replaces
the grep-the-log workflow of the original BookSim artifact.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.network import Network

__all__ = ["fmt_float", "format_report", "network_report"]


def fmt_float(value: float, spec: str = ".4f") -> str:
    """Format a metric for a table, rendering NaN as an explicit "n/a".

    Empty :class:`~repro.engine.stats.LatencyStats` and never-measured
    :class:`~repro.engine.stats.RateMeter` windows report NaN; tables
    must say so instead of printing a bare ``nan``.
    """
    if math.isnan(value):
        return "n/a"
    return format(value, spec)


def network_report(net: "Network") -> dict[str, Any]:
    """A structured snapshot of every subsystem's counters."""
    cycle = max(1, net.sim.cycle)
    eps = net.endpoints

    endpoints = {
        "messages_posted": sum(ep.messages_posted for ep in eps),
        "flits_generated": sum(ep.flits_generated for ep in eps),
        "flits_injected": sum(ep.flits_injected for ep in eps),
        "flits_ejected": sum(ep.flits_ejected for ep in eps),
        "packets_delivered": sum(ep.packets_delivered for ep in eps),
        "packets_corrupted": sum(ep.packets_corrupted for ep in eps),
        "reorder_drops": sum(ep.packets_reorder_dropped for ep in eps),
        "injection_rate": sum(ep.flits_injected for ep in eps)
        / (cycle * max(1, len(eps))),
    }

    switch_counters = {
        "flits_received": 0,
        "flits_sent": 0,
        "packets_marked": 0,
        "packets_diverted": 0,
        "copies_dispatched": 0,
        "stash_stalls": 0,
        "crossbar_flits": 0,
    }
    stash = {
        "capacity_flits": 0,
        "committed_flits": 0,
        "stored_total": 0,
        "deleted_total": 0,
        "retrieved_total": 0,
        "peak_committed": 0,
        "retransmits_issued": 0,
        "sideband_messages": 0,
    }
    link = {"replayed": 0, "nacks": 0, "discarded": 0, "accepted": 0}

    for sw in net.switches:
        for ip in sw.in_ports:
            switch_counters["flits_received"] += ip.flits_received
            switch_counters["flits_sent"] += ip.flits_sent
            switch_counters["packets_marked"] += ip.packets_marked
            switch_counters["packets_diverted"] += ip.packets_diverted
            switch_counters["copies_dispatched"] += ip.copies_dispatched
            switch_counters["stash_stalls"] += ip.stall_no_stash
            if ip.link_rx is not None:
                link["discarded"] += ip.link_rx.flits_discarded
                link["accepted"] += ip.link_rx.flits_accepted
        for op in sw.out_ports:
            if op.link_tx is not None:
                link["replayed"] += op.link_tx.flits_replayed
                link["nacks"] += op.link_tx.nacks_received
        for row in sw.tiles:
            for tile in row:
                switch_counters["crossbar_flits"] += tile.flits_switched
        if sw.stash_dir is not None:
            stash["capacity_flits"] += sw.stash_dir.total_capacity()
            stash["committed_flits"] += sw.stash_dir.total_committed()
            for part in sw.stash_dir.partitions:
                stash["stored_total"] += part.stored_total
                stash["deleted_total"] += part.deleted_total
                stash["retrieved_total"] += part.retrieved_total
                stash["peak_committed"] += part.peak_committed
            stash["retransmits_issued"] += getattr(
                sw, "retransmits_issued", 0
            )
        if sw.sideband is not None:
            stash["sideband_messages"] += sw.sideband.sent_total

    ecn = {
        "window_cuts": sum(ep.ecn.window_cuts for ep in eps),
        "ecn_acks": sum(ep.ecn.ecn_acks for ep in eps),
        "throttled_destinations": sum(
            ep.ecn.throttled_destinations for ep in eps
        ),
    }

    messages = net.messages.values()
    conservation = {
        "messages_delivered": sum(1 for m in messages if m.delivered),
        "messages_total": len(net.messages),
        "in_flight_flits": sum(sw.inflight for sw in net.switches),
    }

    return {
        "cycle": net.sim.cycle,
        "endpoints": endpoints,
        "switches": switch_counters,
        "stash": stash,
        "ecn": ecn,
        "link": link,
        "conservation": conservation,
    }


def format_report(report: dict[str, Any]) -> str:
    lines = [f"network report @ cycle {report['cycle']}"]
    for section in ("endpoints", "switches", "stash", "ecn", "link",
                    "conservation"):
        body = report[section]
        if not any(body.values()):
            continue
        lines.append(f"  [{section}]")
        for key, value in body.items():
            if isinstance(value, float):
                lines.append(f"    {key:<24} {fmt_float(value)}")
            else:
                lines.append(f"    {key:<24} {value}")
    return "\n".join(lines)
