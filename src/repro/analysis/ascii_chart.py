"""Terminal line charts for the experiment runner.

The paper's artifact post-processed BookSim statistics with MATLAB; the
runner renders the same series as compact ASCII charts so figures can be
eyeballed straight from the console.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_chart", "multi_series_chart"]


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if not (math.isnan(v) or math.isinf(v))]


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A single-series scatter/line chart on a character grid."""
    return multi_series_chart({label or "y": (xs, ys)}, width, height)


def multi_series_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Overlay several (x, y) series; each gets a distinct glyph."""
    if not series:
        raise ValueError("no series to plot")
    glyphs = "*o+x#@%&"
    all_x = _finite([x for xs, _ in series.values() for x in xs])
    all_y = _finite([y for _, ys in series.values() for y in ys])
    if not all_x or not all_y:
        return "(no finite data)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, (xs, ys)), glyph in zip(series.items(), glyphs):
        legend.append(f"{glyph}={name}")
        for x, y in zip(xs, ys):
            if math.isnan(x) or math.isnan(y):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = [f"{y_hi:>10.4g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_lo:<.4g}" + " " * max(1, width - 16) + f"{x_hi:>.4g}"
    )
    lines.append(" " * 12 + "  ".join(legend))
    return "\n".join(lines)
