"""Post-processing helpers shared by the experiment harness."""

from __future__ import annotations

import math

__all__ = ["normalized_runtimes", "saturation_load"]


def normalized_runtimes(
    runtimes: dict[str, dict[str, float]], baseline: str = "baseline"
) -> dict[str, dict[str, float]]:
    """Fig. 6 normalization: per app, every variant's execution time over
    the baseline's."""
    out: dict[str, dict[str, float]] = {}
    for app, by_variant in runtimes.items():
        base = by_variant.get(baseline)
        if base is None or base <= 0:
            raise ValueError(f"no baseline runtime for app {app!r}")
        out[app] = {v: t / base for v, t in by_variant.items()}
    return out


def saturation_load(
    points: list[tuple[float, float]], efficiency: float = 0.95
) -> float:
    """Estimate the saturation point from (offered, accepted) pairs: the
    highest offered load at which accepted >= efficiency * offered."""
    sat = math.nan
    for offered, accepted in sorted(points):
        if offered > 0 and accepted >= efficiency * offered:
            sat = offered
    return sat
