"""Analytic models and post-processing: Table I buffer underutilization,
the Little's-law saturation model of Section VI-A, and metric helpers."""

from repro.analysis.table1 import (
    LinkClassRow,
    buffer_underutilization,
    dragonfly_link_table,
    paper_table1,
)
from repro.analysis.littles_law import (
    stash_limited_injection_rate,
    stash_per_endpoint_flits,
)
from repro.analysis.metrics import normalized_runtimes, saturation_load
from repro.analysis.ascii_chart import line_chart, multi_series_chart
from repro.analysis.obsview import (
    format_counters,
    load_trace,
    merged_counters,
    timeline_chart,
    trace_lines,
    write_trace,
)
from repro.analysis.report import format_report, network_report

__all__ = [
    "LinkClassRow",
    "buffer_underutilization",
    "dragonfly_link_table",
    "format_counters",
    "format_report",
    "line_chart",
    "load_trace",
    "merged_counters",
    "multi_series_chart",
    "network_report",
    "normalized_runtimes",
    "paper_table1",
    "saturation_load",
    "stash_limited_injection_rate",
    "stash_per_endpoint_flits",
    "timeline_chart",
    "trace_lines",
    "write_trace",
]
