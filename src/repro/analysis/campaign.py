"""Campaign report consumer: tables and CDFs from a result store.

Reads every point of a :class:`~repro.campaign.spec.Campaign` back out
of a :class:`~repro.campaign.store.ResultStore` and renders the
per-variant view the sweep was run for: per-point rows (offered /
accepted / latency percentiles), a per-variant percentile summary of
the latency distribution across the grid, and an ASCII CDF overlay.

The report is a pure function of (campaign, store contents): rows
follow campaign expansion order, and every number comes from verified
store entries — so report bytes are identical however the store was
produced (serial, ``--jobs N``, sharded-and-merged, or resumed after a
kill), which is exactly the property CI's campaign smoke job diffs.
"""

from __future__ import annotations

from repro.analysis.ascii_chart import multi_series_chart
from repro.campaign.spec import Campaign, CampaignPoint, expand_campaign
from repro.campaign.store import ResultStore
from repro.engine.base import EngineResult

__all__ = [
    "CampaignReportError",
    "campaign_rows",
    "format_campaign_report",
    "rank_percentile",
]


class CampaignReportError(RuntimeError):
    """The store is missing (or serves corrupt) entries for the
    campaign; the message lists the unreadable points."""


def campaign_rows(
    campaign: Campaign, store: ResultStore
) -> list[tuple[CampaignPoint, EngineResult]]:
    """Every campaign point paired with its stored result, in expansion
    order.  Raises :class:`CampaignReportError` naming any point whose
    entry is missing or corrupt (a partial store has no consistent
    report; run the campaign to completion first)."""
    rows: list[tuple[CampaignPoint, EngineResult]] = []
    missing: list[str] = []
    for point in expand_campaign(campaign):
        entry = store.get(point.store_key())
        if entry is None:
            missing.append(
                f"  point {point.index} {point.key!r} "
                f"({point.spec.spec_hash()[:12]}.{point.engine})"
            )
        else:
            rows.append((point, entry.result))
    if missing:
        raise CampaignReportError(
            f"store {store.root} is missing {len(missing)} of "
            f"{len(missing) + len(rows)} entries for campaign "
            f"{campaign.name!r}:\n" + "\n".join(missing)
        )
    return rows


def rank_percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list.

    >>> rank_percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    >>> rank_percentile([1.0, 2.0, 3.0, 4.0], 99)
    4.0
    """
    if not sorted_values:
        return float("nan")
    rank = max(1, -(-int(pct) * len(sorted_values) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _fmt(value: float) -> str:
    return "n/a" if value != value else f"{value:.1f}"


def format_campaign_report(
    campaign: Campaign,
    rows: list[tuple[CampaignPoint, EngineResult]],
) -> str:
    """Render the campaign's per-variant tables and latency CDF."""
    variants: list[str] = []
    by_variant: dict[str, list[tuple[CampaignPoint, EngineResult]]] = {}
    for point, result in rows:
        variant = str(point.key[1]) if len(point.key) > 1 else "all"
        if variant not in by_variant:
            variants.append(variant)
            by_variant[variant] = []
        by_variant[variant].append((point, result))

    has_victim = bool(rows) and all(
        any(name == "victim" for name, _stats in result.groups)
        for _point, result in rows
    )

    lines = [
        f"Campaign report — {campaign.name}",
        f"sweep {campaign.sweep} · engine {campaign.engine} · preset "
        f"{campaign.preset} · {len(rows)} points · campaign "
        f"{campaign.campaign_hash()[:12]}",
        "",
        f"{'variant':<10} {'seed':>5} {'x':>8} {'offered':>8} "
        f"{'accepted':>9} {'avg lat':>8} {'p90':>8} {'p99':>8}"
        + (f" {'victim p90':>11}" if has_victim else ""),
    ]
    for variant in variants:
        for point, result in by_variant[variant]:
            axis = point.key[2] if len(point.key) > 2 else ""
            row = (
                f"{variant:<10} {point.sweep_seed:>5} {axis!s:>8} "
                f"{result.offered_load:>8.3f} {result.accepted_load:>9.3f} "
                f"{_fmt(result.avg_latency):>8} "
                f"{_fmt(result.p90_latency):>8} "
                f"{_fmt(result.p99_latency):>8}"
            )
            if has_victim:
                row += f" {_fmt(result.group('victim').p90):>11}"
            lines.append(row)
        lines.append("")

    lines.append(
        "per-variant latency percentiles (avg-latency distribution "
        "across grid points)"
    )
    lines.append(
        f"{'variant':<10} {'n':>4} {'min':>8} {'p50':>8} {'p90':>8} "
        f"{'p99':>8} {'max':>8}"
    )
    for variant in variants:
        lats = sorted(
            r.avg_latency
            for _p, r in by_variant[variant]
            if r.avg_latency == r.avg_latency
        )
        if not lats:
            lines.append(f"{variant:<10} {0:>4} " + " ".join(["     n/a"] * 5))
            continue
        lines.append(
            f"{variant:<10} {len(lats):>4} {lats[0]:>8.1f} "
            f"{rank_percentile(lats, 50):>8.1f} "
            f"{rank_percentile(lats, 90):>8.1f} "
            f"{rank_percentile(lats, 99):>8.1f} {lats[-1]:>8.1f}"
        )

    series = {}
    for variant in variants:
        lats = sorted(
            r.avg_latency
            for _p, r in by_variant[variant]
            if r.avg_latency == r.avg_latency
        )
        if lats:
            series[variant] = (
                lats,
                [(i + 1) / len(lats) for i in range(len(lats))],
            )
    if series:
        lines.append("")
        lines.append("avg-latency CDF (x: cycles, y: fraction of points)")
        lines.append(multi_series_chart(series))
    return "\n".join(lines)
