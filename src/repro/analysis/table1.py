"""Table I: link-length asymmetry and port-buffer underutilization.

The paper's argument in one table: port buffers are sized for the longest
supported link (100 m at 100 Gbps in the Omni-Path example), but in a
dragonfly only the inter-group links need that much; endpoint and
intra-group links leave 99 % and 95 % of their port buffering idle.
Weighting by the port-class mix gives ~72 % of all port buffering unused.

``paper_table1`` reproduces the published numbers exactly;
``dragonfly_link_table`` computes the same quantity from any simulated
configuration's channel latencies and buffer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import DragonflyParams, SwitchParams, rtt_buffer_flits

__all__ = [
    "LinkClassRow",
    "buffer_underutilization",
    "dragonfly_link_table",
    "paper_table1",
]


@dataclass(frozen=True)
class LinkClassRow:
    """One row of Table I."""

    link_type: str
    length: str
    pct_ports: float
    underutilized: float  # fraction of the port's buffering left idle


def buffer_underutilization(rows: list[LinkClassRow]) -> float:
    """The weighted total the paper quotes as ~72 %."""
    total_pct = sum(r.pct_ports for r in rows)
    if abs(total_pct - 100.0) > 1e-6:
        raise ValueError(f"port percentages sum to {total_pct}, expected 100")
    return sum(r.pct_ports / 100.0 * r.underutilized for r in rows)


def paper_table1() -> list[LinkClassRow]:
    """The published Table I (canonical dragonfly on 100 m-rated ports)."""
    return [
        LinkClassRow("Endpoint", "< 1m", 25.0, 0.99),
        LinkClassRow("Intra-group", "< 5m", 50.0, 0.95),
        LinkClassRow("Inter-group", "< 100m", 25.0, 0.0),
    ]


def dragonfly_link_table(
    dragonfly: DragonflyParams, switch: SwitchParams, slack: int = 16
) -> list[LinkClassRow]:
    """Table I recomputed for a simulated configuration: the buffering a
    link class actually needs is one credit round trip; everything above
    that in the symmetric port buffer is idle."""
    radix = dragonfly.switch_radix
    provided = switch.input_buffer_flits + switch.output_buffer_flits

    def row(name: str, latency: int, ports: int) -> LinkClassRow:
        needed = 2 * rtt_buffer_flits(latency, slack)  # input + output side
        idle = max(0.0, 1.0 - needed / provided)
        return LinkClassRow(
            name, f"{latency} cyc", 100.0 * ports / radix, idle
        )

    return [
        row("Endpoint", dragonfly.latency_endpoint, dragonfly.p),
        row("Intra-group", dragonfly.latency_local, dragonfly.a - 1),
        row("Inter-group", dragonfly.latency_global, dragonfly.h),
    ]
