"""Consumers for :mod:`repro.obs` output: merged counters, trace files,
and occupancy-timeline charts.

The observability layer produces picklable :class:`~repro.obs.ObsCapture`
values (one per network) in a deterministic order; this module turns
them into the user-facing artifacts — a merged counter listing, a JSONL
trace file, a CSV trace, and ASCII timeline charts — without ever
re-touching the simulation.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.ascii_chart import multi_series_chart
from repro.obs.counters import merge_snapshots
from repro.obs.events import SCHEMA_FIELDS, trace_csv_lines
from repro.obs.observer import ObsCapture, merge_entries
from repro.obs.timeline import Timeline

__all__ = [
    "format_counters",
    "load_trace",
    "merged_counters",
    "timeline_chart",
    "trace_lines",
    "write_trace",
]


def merged_counters(captures: Sequence[ObsCapture]) -> dict:
    """Merge every capture's counter snapshot into one (see
    :func:`repro.obs.merge_snapshots`: counters sum, ``peak_`` gauges
    max, histogram buckets sum)."""
    return merge_snapshots([cap.counters for cap in captures])


def format_counters(counters: dict) -> str:
    """Render a merged counter snapshot as aligned, name-sorted lines.

    >>> print(format_counters({"engine.sim.cycles": 12, "a.b.peak_x": 3}))
    a.b.peak_x           3
    engine.sim.cycles   12
    """
    if not counters:
        return "(no counters)"
    names = sorted(counters)
    name_w = max(len(n) for n in names)
    rows = []
    for name in names:
        value = counters[name]
        if isinstance(value, dict):  # histogram: {"edges": ..., "buckets": ...}
            rows.append(f"{name:<{name_w}}  {json.dumps(value, sort_keys=True)}")
        else:
            rows.append(f"{name:<{name_w}}  {value:>{3}}")
    return "\n".join(rows)


def trace_lines(captures: Sequence[ObsCapture]) -> list[str]:
    """JSONL lines (header first) for captures already in deterministic
    order; run ``i`` in the trace is ``captures[i]``."""
    return merge_entries([(i, cap) for i, cap in enumerate(captures)])


def write_trace(path: str, captures: Sequence[ObsCapture],
                fmt: str = "jsonl") -> int:
    """Write a merged trace file; returns the number of event records.

    ``fmt`` is ``"jsonl"`` (schema header line + one JSON object per
    event) or ``"csv"`` (header row of :data:`SCHEMA_FIELDS` prefixed
    with ``run``).  Both orders are deterministic for any ``--jobs N``.
    """
    if fmt == "jsonl":
        lines = trace_lines(captures)
        count = len(lines) - 1  # header
    elif fmt == "csv":
        lines = trace_csv_lines(
            [(i, list(cap.records)) for i, cap in enumerate(captures)]
        )
        count = len(lines) - 1
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write("\n".join(lines) + "\n")
    return count


def load_trace(path: str) -> tuple[dict, list[dict]]:
    """Read a JSONL trace back: (header dict, list of event dicts).

    Events come back keyed by ``("run",) + SCHEMA_FIELDS``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("schema") != "repro.obs.trace":
            raise ValueError(f"{path} is not a repro.obs trace")
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events


def timeline_chart(tl: Timeline, names: Sequence[str] | None = None,
                   width: int = 60, height: int = 12) -> str:
    """Render tracked :class:`~repro.obs.Timeline` series as one ASCII
    chart (cycle on x, tracked value on y, one glyph per series)."""
    picked = list(names) if names is not None else list(tl.names)
    if not picked:
        raise ValueError("timeline has no tracked series")
    series = {name: (tl.cycles, tl.series(name)) for name in picked}
    return multi_series_chart(series, width=width, height=height)
