"""Network assembly: topology + switches + endpoints + channels + stats.

:class:`Network` is the top-level simulation object and the main public
entry point of the library:

>>> from repro import Network, tiny_preset
>>> net = Network(tiny_preset())
>>> net.add_uniform_traffic(rate=0.3)
>>> result = net.run_standard()
>>> result.avg_latency  # doctest: +SKIP

It builds the configured dragonfly (or any supplied topology/router),
instantiates baseline or stashing switches according to the config, wires
flit and credit channels with per-link-class latencies, drives the
measurement phases (warmup / measure / drain), and aggregates statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.endpoints.endpoint import Endpoint
from repro.engine.channel import Channel, CreditChannel
from repro.engine.config import NetworkConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.engine.stats import LatencyStats, RateMeter
from repro.obs.events import EventTrace
from repro.obs.observer import NetworkObserver
from repro.routing import make_dragonfly_router
from repro.routing.routing import Router
from repro.routing.single_switch_routing import SingleSwitchRouter
from repro.switch.damq import DamqMirror
from repro.switch.flit import Message, Packet
from repro.switch.stashing_switch import StashingSwitch
from repro.switch.tiled_switch import TiledSwitch
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.single_switch import SingleSwitchTopology
from repro.topology.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.traffic.generators import BernoulliSource, TrafficSource

__all__ = ["Network", "RunResult"]


@dataclass
class RunResult:
    """Aggregated results of one standard run."""

    offered_load: float
    accepted_load: float
    avg_latency: float
    p90_latency: float
    p99_latency: float
    max_latency: float
    packets_measured: int
    group_latency: dict[str, LatencyStats] = field(default_factory=dict)

    def group(self, name: str) -> LatencyStats:
        return self.group_latency[name]


class Network:
    def __init__(
        self,
        config: NetworkConfig,
        topology: Topology | None = None,
        router: Router | None = None,
        routing_mode: str = "par",
        acks_enabled: bool = True,
    ) -> None:
        self.config = config
        self.rng = DeterministicRng(config.sim.seed)
        self.acks_enabled = acks_enabled
        self.error_rate = config.reliability.error_rate

        if topology is None:
            topology = DragonflyTopology(config.dragonfly, config.switch.num_ports)
        self.topology = topology

        if router is None:
            if isinstance(topology, DragonflyTopology):
                router = make_dragonfly_router(
                    topology, self.rng.stream("routing"), routing_mode
                )
            elif isinstance(topology, SingleSwitchTopology):
                router = SingleSwitchRouter(topology)
            else:
                raise ValueError(
                    "a router must be supplied for this topology type"
                )
        self.router = router
        if router.num_vcs_required > config.switch.num_vcs:
            raise ValueError(
                f"router needs {router.num_vcs_required} VCs, switch has "
                f"{config.switch.num_vcs}"
            )

        self._next_pid = 0
        self._next_msg = 0
        self.messages: dict[int, Message] = {}

        self.sim = Simulator(
            kernel=config.sim.kernel,
            verify_wake=config.sim.verify_wake,
        )
        self.switches = self._build_switches()
        self.endpoints = [
            Endpoint(n, self, self.rng.stream(f"endpoint:{n}"))
            for n in range(topology.num_nodes)
        ]
        self._wire()
        for ep in self.endpoints:
            self.sim.add(ep)
        for sw in self.switches:
            self.sim.add(sw)
        self._bind_wakes()

        # statistics
        self.latency = LatencyStats()
        self.inflight_latency = LatencyStats()
        self.group_latency: dict[str, LatencyStats] = {}
        self._group_nodes: dict[str, frozenset[int]] = {}
        self.accepted = RateMeter()
        self.offered = RateMeter()
        self._meas_start: int | None = None
        self._meas_end: int | None = None
        self._meas_born = 0
        self._meas_delivered = 0
        self.total_data_packets_delivered = 0
        self.on_packet_delivered_hooks: list[Callable[[Packet, int], None]] = []
        # scenario bookkeeping: aggressor/victim partitions attached by
        # repro.scenario.spec.apply_traffic (empty for plain traffic)
        self.built_scenarios: list[Any] = []

        # observability (repro.obs): both stay None unless enabled in the
        # config, so the emit guards in the hot paths cost one attribute
        # check and the counters cost nothing until captured
        self.obs: NetworkObserver | None = None
        self._trace: EventTrace | None = None
        if config.obs.enabled:
            self.obs = NetworkObserver(config.obs)
            self.obs.attach(self)
            trace = self.obs.trace
            if trace is not None:
                self._trace = trace
                for sw in self.switches:
                    sw.obs = trace
                    for ip in sw.in_ports:
                        ip.obs = trace
                    for op in sw.out_ports:
                        op.obs = trace
                for ep in self.endpoints:
                    ep.obs = trace

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_switches(self) -> list[TiledSwitch]:
        cfg = self.config
        switches: list[TiledSwitch] = []
        for s in range(self.topology.num_switches):
            specs = self.topology.switch_ports(s)
            rng = self.rng.stream(f"switch:{s}")
            if cfg.stash.enabled:
                sw: TiledSwitch = StashingSwitch(
                    s,
                    cfg.switch,
                    self.router,
                    specs,
                    rng,
                    stash=cfg.stash,
                    reliability=cfg.reliability,
                    ecn=cfg.ecn,
                    alloc_pid=self.alloc_pid,
                )
            else:
                sw = TiledSwitch(
                    s, cfg.switch, self.router, specs, rng,
                    alloc_pid=self.alloc_pid, ecn=cfg.ecn,
                )
            switches.append(sw)
        return switches

    def _wire(self) -> None:
        total_vcs = self.switches[0].total_vcs
        for s, sw in enumerate(self.switches):
            for spec in self.topology.switch_ports(s):
                if spec.link_class == "unused":
                    continue
                if spec.link_class == "endpoint":
                    assert spec.peer is not None
                    _, node = spec.peer
                    ep = self.endpoints[node]
                    ip = sw.in_ports[spec.port]
                    op = sw.out_ports[spec.port]
                    inj = Channel(spec.latency, f"inj:{node}")
                    inj_credit = CreditChannel(spec.latency, f"injcr:{node}")
                    ej = Channel(spec.latency, f"ej:{node}")
                    ep.flit_out = inj
                    ip.flit_in = inj
                    ip.credit_out = inj_credit
                    ep.credit_in = inj_credit
                    op.flit_out = ej
                    ep.flit_in = ej
                    ep.mirror = DamqMirror(
                        total_vcs, ip.damq.capacity, ip.damq.space.reserves
                    )
                    op.mirror = None  # endpoints always sink
                    op.retention = 2 * spec.latency + 4
                else:
                    assert spec.peer is not None
                    _, peer, peer_port = spec.peer
                    if (peer, peer_port) < (s, spec.port):
                        continue  # wire each link once, from the lower end
                    self._wire_switch_link(
                        s, spec.port, peer, peer_port, spec.latency, total_vcs
                    )

    def _wire_switch_link(
        self, a: int, pa: int, b: int, pb: int, latency: int, total_vcs: int
    ) -> None:
        link = self.config.link
        for (sx, px), (sy, py) in (((a, pa), (b, pb)), ((b, pb), (a, pa))):
            out = self.switches[sx].out_ports[px]
            inp = self.switches[sy].in_ports[py]
            flit_ch = Channel(latency, f"l:{sx}.{px}->{sy}.{py}")
            credit_ch = CreditChannel(latency, f"c:{sy}.{py}->{sx}.{px}")
            out.flit_out = flit_ch
            inp.flit_in = flit_ch
            inp.credit_out = credit_ch
            out.credit_in = credit_ch
            out.mirror = DamqMirror(
                total_vcs, inp.damq.capacity, inp.damq.space.reserves
            )
            out.retention = 2 * latency + 4
            if link.enabled:
                from repro.protocol.link import LinkReceiver, LinkSender

                out.link_tx = LinkSender(
                    link, self.rng.stream(f"link:{sx}.{px}")
                )
                inp.link_rx = LinkReceiver(link)

    def _bind_wakes(self) -> None:
        """Register every channel's consumer with the simulator wake
        list: each send then schedules the consumer for the delivery
        cycle, which is what lets the event kernel put idle components
        to sleep without missing arrivals (docs/PERFORMANCE.md)."""
        sim = self.sim
        for ep in self.endpoints:
            idx = sim.index_of(ep)
            assert idx is not None
            for ch in (ep.flit_in, ep.credit_in):
                if ch is not None:
                    ch.bind_wake(sim, idx)
        for sw in self.switches:
            idx = sim.index_of(sw)
            assert idx is not None
            for ip in sw.in_ports:
                if ip.flit_in is not None:
                    ip.flit_in.bind_wake(sim, idx)
            for op in sw.out_ports:
                if op.credit_in is not None:
                    op.credit_in.bind_wake(sim, idx)

    # ------------------------------------------------------------------
    # allocation and delivery callbacks
    # ------------------------------------------------------------------

    def alloc_pid(self) -> int:
        self._next_pid += 1
        return self._next_pid

    def alloc_message(
        self, src: int, dst: int, size: int, cycle: int, tag: int
    ) -> Message:
        self._next_msg += 1
        msg = Message(self._next_msg, src, dst, size, cycle, tag)
        self.messages[msg.msg_id] = msg
        return msg

    def on_generated(self, flits: int) -> None:
        self.offered.record(flits)

    def on_delivered(self, pkt: Packet, cycle: int) -> None:
        """A data packet's tail ejected uncorrupted at its destination."""
        self.total_data_packets_delivered += 1
        self.accepted.record(pkt.size)
        if self._meas_start is not None and pkt.birth_cycle >= self._meas_start:
            if self._meas_end is None or pkt.birth_cycle < self._meas_end:
                self._record_latency(pkt, cycle)
        msg = self.messages.get(pkt.msg_id)
        if msg is not None:
            msg.packets_delivered += 1
            if msg.delivered and msg.complete_cycle < 0:
                msg.complete_cycle = cycle
                if msg.on_complete is not None:
                    msg.on_complete(msg, cycle)
        for hook in self.on_packet_delivered_hooks:
            hook(pkt, cycle)
        if self._trace is not None:
            self._trace.emit(cycle, "packet.deliver", -1, pkt.dst, -1,
                             pkt.pid, cycle - pkt.birth_cycle)

    def _record_latency(self, pkt: Packet, cycle: int) -> None:
        self._meas_delivered += 1
        latency = cycle - pkt.birth_cycle
        self.latency.record(latency)
        if pkt.inject_cycle >= 0:
            self.inflight_latency.record(cycle - pkt.inject_cycle)
        src = pkt.src
        for name, nodes in self._group_nodes.items():
            if src in nodes:
                self.group_latency[name].record(latency)

    def on_ack_delivered(self, pkt: Packet, cycle: int) -> None:
        pass  # hook point; ACK stats are derivable from endpoint counters

    # ------------------------------------------------------------------
    # traffic helpers
    # ------------------------------------------------------------------

    def add_source(
        self, source: "TrafficSource", nodes: Iterable[int] | None = None
    ) -> None:
        """Attach a traffic source to ``nodes`` (default: all)."""
        targets: Iterable[int] = (
            range(len(self.endpoints)) if nodes is None else nodes
        )
        for n in targets:
            ep = self.endpoints[n]
            ep.sources.append(source)
            # a sleeping endpoint must re-evaluate next_active_cycle now
            # that it has a new source to poll
            self.sim.wake_component(ep, self.sim.cycle)

    def add_uniform_traffic(
        self, rate: float, msg_flits: int | None = None,
        nodes: Iterable[int] | None = None, start: int = 0,
        stop: int | None = None,
    ) -> "BernoulliSource":
        from repro.traffic.generators import BernoulliSource
        from repro.traffic.patterns import uniform_random

        if msg_flits is None:
            msg_flits = self.config.switch.max_packet_flits
        src = BernoulliSource(
            rate=rate,
            msg_flits=msg_flits,
            pattern=uniform_random(self.topology.num_nodes),
            start=start,
            stop=stop,
        )
        self.add_source(src, nodes)
        return src

    def track_group(self, name: str, nodes: Iterable[int]) -> None:
        """Collect a separate latency distribution for packets sourced by
        ``nodes`` (e.g. victim vs aggressor traffic)."""
        self._group_nodes[name] = frozenset(nodes)
        self.group_latency[name] = LatencyStats()

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------

    def open_measurement(self) -> None:
        cycle = self.sim.cycle
        self._meas_start = cycle
        self._meas_end = None
        self.accepted.open_window(cycle)
        self.offered.open_window(cycle)

    def close_measurement(self) -> None:
        cycle = self.sim.cycle
        self._meas_end = cycle
        self.accepted.close_window(cycle)
        self.offered.close_window(cycle)

    def run(self, cycles: int) -> None:
        self.sim.run(cycles)

    def run_standard(self, drain: bool = True) -> RunResult:
        """Warmup, measure, then (optionally) drain measured packets."""
        sim_cfg = self.config.sim
        self.sim.run(sim_cfg.warmup_cycles)
        self.open_measurement()
        self.sim.run(sim_cfg.measure_cycles)
        born = self._meas_born_estimate()
        self.close_measurement()
        if drain:
            self.sim.run_until(
                lambda: self._meas_delivered >= born or self.quiescent(),
                sim_cfg.drain_cycles,
            )
        return self.result()

    def _meas_born_estimate(self) -> int:
        # exact count of data packets born in the window is tracked via
        # messages created in the window
        start = self._meas_start or 0
        return sum(
            m.packets_total
            for m in self.messages.values()
            if m.create_cycle >= start and m.src != m.dst
        )

    def quiescent(self) -> bool:
        return all(ep.idle for ep in self.endpoints) and all(
            sw.quiescent for sw in self.switches
        )

    def drain(self, max_cycles: int | None = None) -> bool:
        """Run until the whole network is empty (trace replay end)."""
        limit = max_cycles if max_cycles is not None else self.config.sim.drain_cycles
        return self.sim.run_until(self.quiescent, limit)

    def result(self) -> RunResult:
        nodes = max(1, len(self.endpoints))
        return RunResult(
            offered_load=_per_node(self.offered.rate(), nodes),
            accepted_load=_per_node(self.accepted.rate(), nodes),
            avg_latency=self.latency.mean,
            p90_latency=self.latency.percentile(90),
            p99_latency=self.latency.percentile(99),
            max_latency=self.latency.max,
            packets_measured=self.latency.count,
            group_latency=dict(self.group_latency),
        )

    # -- probes -------------------------------------------------------------

    def stash_utilization(self, switch: int | None = None) -> float:
        """Fraction of stash capacity in use (one switch or network-wide)."""
        targets = (
            [self.switches[switch]] if switch is not None else self.switches
        )
        cap = used = 0
        for sw in targets:
            if sw.stash_dir is None:
                continue
            cap += sw.stash_dir.total_capacity()
            used += sw.stash_dir.total_committed()
        return used / cap if cap else 0.0


def _per_node(rate: float, nodes: int) -> float:
    return rate / nodes if not math.isnan(rate) else math.nan
