"""Routing algorithms and deadlock-avoidance VC ladders.

The paper routes its dragonfly with "PAR6/2 progressive adaptive routing
using six VCs to prevent routing deadlock" (Garcia et al.); minimal and
Valiant routers are provided as baselines and for tests.
"""

from repro.routing.routing import Router, VcLadder
from repro.routing.dragonfly_routing import (
    DragonflyMinimalRouter,
    DragonflyParRouter,
    DragonflyValiantRouter,
    make_dragonfly_router,
)
from repro.routing.fattree_routing import FatTreeRouter
from repro.routing.single_switch_routing import SingleSwitchRouter

__all__ = [
    "DragonflyMinimalRouter",
    "DragonflyParRouter",
    "DragonflyValiantRouter",
    "FatTreeRouter",
    "Router",
    "SingleSwitchRouter",
    "VcLadder",
    "make_dragonfly_router",
]
