"""Fat-tree routing: adaptive up, deterministic down.

Up/down routing in a two-level tree is acyclic, so two VCs (0 up, 1
down) are more than deadlock-safe; the uplink is chosen adaptively by
least congestion with a round-robin tie-break seeded per packet.
"""

from __future__ import annotations

import random

from repro.routing.routing import Router, RoutingContext
from repro.switch.flit import Packet
from repro.topology.fattree import FatTreeTopology

__all__ = ["FatTreeRouter"]


class FatTreeRouter(Router):
    num_vcs_required = 2

    def __init__(self, topo: FatTreeTopology, rng: random.Random) -> None:
        self.topo = topo
        self.rng = rng

    def route(self, ctx: RoutingContext, in_port: int, packet: Packet) -> tuple[int, int]:
        topo = self.topo
        s = ctx.switch_id
        dst_switch = topo.node_switch(packet.dst)
        if topo.is_leaf(s):
            if s == dst_switch:
                return topo.node_port(packet.dst), packet.vc
            # adaptive uplink: least congested, random tie-break
            start = self.rng.randrange(topo.num_spines)
            best_port = -1
            best_q = None
            for k in range(topo.num_spines):
                spine = (start + k) % topo.num_spines
                port = topo.uplink_port(s, spine)
                q = ctx.output_congestion(port)
                if best_q is None or q < best_q:
                    best_q = q
                    best_port = port
            return best_port, 0
        # spine: deterministic downlink, VC 1
        return topo.downlink_port(s, dst_switch), 1
