"""Trivial routing for the single-switch testbench: eject everywhere."""

from __future__ import annotations

from repro.routing.routing import Router, RoutingContext
from repro.switch.flit import Packet
from repro.topology.single_switch import SingleSwitchTopology

__all__ = ["SingleSwitchRouter"]


class SingleSwitchRouter(Router):
    num_vcs_required = 1

    def __init__(self, topo: SingleSwitchTopology) -> None:
        self.topo = topo

    def route(self, ctx: RoutingContext, in_port: int, packet: Packet) -> tuple[int, int]:
        return self.topo.node_port(packet.dst), packet.vc
