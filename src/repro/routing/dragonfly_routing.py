"""Dragonfly routing: minimal, Valiant, and progressive adaptive (PAR).

PAR (Garcia et al., the paper's choice) routes minimally by default but
may divert to a Valiant intermediate group while the packet is still in
its source group, re-evaluating at each source-group switch: the packet
diverts when the minimal output's queue looks worse than twice the
non-minimal candidate's (the factor 2 reflects the roughly doubled path
length).  Once a global channel is taken the decision is committed.
"""

from __future__ import annotations

import random

from repro.routing.routing import Router, RoutingContext, VcLadder
from repro.switch.flit import Packet
from repro.topology.dragonfly import DragonflyTopology

__all__ = [
    "DragonflyMinimalRouter",
    "DragonflyParRouter",
    "DragonflyValiantRouter",
    "make_dragonfly_router",
]


class _DragonflyRouterBase(Router):
    num_vcs_required = 6

    def __init__(self, topo: DragonflyTopology) -> None:
        self.topo = topo
        self.ladder = VcLadder("LLGLGL")

    def _hop(self, packet: Packet, out_port: int, switch: int) -> tuple[int, int]:
        """Assign the ladder VC for a switch-to-switch hop and update the
        packet's ladder pointer."""
        cls = self.topo.port_class(switch, out_port)
        hop_type = "G" if cls == "global" else "L"
        vc, packet.route_ptr = self.ladder.next_vc(packet.route_ptr, hop_type)
        if cls == "global":
            packet.route_committed = True
        return out_port, vc

    def _minimal(self, ctx: RoutingContext, packet: Packet) -> tuple[int, int]:
        s = ctx.switch_id
        topo = self.topo
        dst_switch = topo.node_switch(packet.dst)
        if s == dst_switch:
            return topo.eject_port(s, packet.dst), packet.vc
        if topo.group_of(s) == topo.group_of(dst_switch):
            return self._hop(packet, topo.local_port(s, dst_switch), s)
        out = topo.route_to_group(s, topo.group_of(dst_switch))
        return self._hop(packet, out, s)


class DragonflyMinimalRouter(_DragonflyRouterBase):
    """MIN: always the direct l-g-l path."""

    def route(self, ctx: RoutingContext, in_port: int, packet: Packet) -> tuple[int, int]:
        return self._minimal(ctx, packet)


class _ValiantMixin(_DragonflyRouterBase):
    def __init__(self, topo: DragonflyTopology, rng: random.Random) -> None:
        super().__init__(topo)
        self.rng = rng

    def _pick_mid_group(self, src_group: int, dst_group: int) -> int:
        g = self.topo.g
        choices = g - 2  # exclude source and destination groups
        if choices <= 0:
            return dst_group  # two-group network: Valiant degenerates to MIN
        pick = self.rng.randrange(choices)
        for grp in range(g):
            if grp in (src_group, dst_group):
                continue
            if pick == 0:
                return grp
            pick -= 1
        raise AssertionError("unreachable")

    def _toward_group(
        self, ctx: RoutingContext, packet: Packet, group: int
    ) -> tuple[int, int]:
        s = ctx.switch_id
        return self._hop(packet, self.topo.route_to_group(s, group), s)


class DragonflyValiantRouter(_ValiantMixin):
    """VAL: always through a random intermediate group (uniform load)."""

    def route(self, ctx: RoutingContext, in_port: int, packet: Packet) -> tuple[int, int]:
        topo = self.topo
        s = ctx.switch_id
        dst_group = topo.group_of(topo.node_switch(packet.dst))
        here = topo.group_of(s)
        if packet.mid_group == -1 and not packet.route_committed:
            src_group = here
            if src_group == dst_group:
                return self._minimal(ctx, packet)
            packet.nonminimal = True
            packet.mid_group = self._pick_mid_group(src_group, dst_group)
        if packet.mid_group >= 0 and here == packet.mid_group:
            packet.mid_group = -2  # intermediate group reached; go minimal
        if packet.mid_group >= 0 and here != dst_group:
            return self._toward_group(ctx, packet, packet.mid_group)
        return self._minimal(ctx, packet)


class DragonflyParRouter(_ValiantMixin):
    """PAR6/2: progressive adaptive routing with six VCs (paper Section V).

    ``bias`` is the path-length penalty applied to the non-minimal
    candidate; ``threshold`` (flits) suppresses diversion under light
    load.
    """

    def __init__(
        self,
        topo: DragonflyTopology,
        rng: random.Random,
        bias: int = 2,
        threshold: int = 4,
    ) -> None:
        super().__init__(topo, rng)
        self.bias = bias
        self.threshold = threshold
        self.diversions = 0

    def route(self, ctx: RoutingContext, in_port: int, packet: Packet) -> tuple[int, int]:
        topo = self.topo
        s = ctx.switch_id
        dst_switch = topo.node_switch(packet.dst)
        dst_group = topo.group_of(dst_switch)
        here = topo.group_of(s)

        if packet.nonminimal and packet.mid_group >= 0 and here == packet.mid_group:
            packet.mid_group = -2  # reached the intermediate group

        if packet.route_committed or here == dst_group:
            if packet.nonminimal and packet.mid_group >= 0 and here != dst_group:
                return self._toward_group(ctx, packet, packet.mid_group)
            return self._minimal(ctx, packet)

        if packet.nonminimal:
            return self._toward_group(ctx, packet, packet.mid_group)

        # Uncommitted, minimal, still in the source group: evaluate the
        # adaptive decision, but only while the ladder still has a local
        # hop available before the first global (positions 0 and 1).
        if here == dst_group or packet.route_ptr > 1:
            return self._minimal(ctx, packet)
        if topo.g < 3:
            return self._minimal(ctx, packet)

        min_port = topo.route_to_group(s, dst_group)
        mid_group = self._pick_mid_group(here, dst_group)
        nonmin_port = topo.route_to_group(s, mid_group)
        if nonmin_port == min_port:
            return self._minimal(ctx, packet)
        q_min = ctx.output_congestion(min_port)
        q_nonmin = ctx.output_congestion(nonmin_port)
        if q_min > self.bias * q_nonmin + self.threshold:
            self.diversions += 1
            packet.nonminimal = True
            packet.mid_group = mid_group
            return self._hop(packet, nonmin_port, s)
        return self._hop(packet, min_port, s)


def make_dragonfly_router(
    topo: DragonflyTopology, rng: random.Random, mode: str = "par"
) -> _DragonflyRouterBase:
    """Factory: ``mode`` in {"min", "val", "par"}."""
    if mode == "min":
        return DragonflyMinimalRouter(topo)
    if mode == "val":
        return DragonflyValiantRouter(topo, rng)
    if mode == "par":
        return DragonflyParRouter(topo, rng)
    raise ValueError(f"unknown dragonfly routing mode {mode!r}")
