"""Router interface and the hop-type VC ladder.

Deadlock avoidance follows the standard dragonfly discipline: the VC
index assigned to each hop strictly increases along any legal path, so
the channel-dependency graph is acyclic and every chain terminates at an
always-sinking ejection port.  The maximal PAR path is

    L  L  G  L  G  L          (VCs 0 1 2 3 4 5)

— a minimal-attempt local hop, a diversion local hop to the Valiant
gateway, the global to the intermediate group, a local hop there, the
global to the destination group, and a final local hop.  Any realizable
minimal / Valiant / PAR path is a subsequence of this, and
:class:`VcLadder` assigns each actual hop the next matching position.
Six VCs therefore suffice, matching the paper's "PAR6/2 ... using six
VCs".
"""

from __future__ import annotations

from typing import Protocol

from repro.switch.flit import Packet

__all__ = ["Router", "RoutingContext", "VcLadder"]


class RoutingContext(Protocol):
    """What a router may ask of the switch evaluating the route."""

    switch_id: int

    def output_congestion(self, port: int) -> int:
        """Flits committed on the path out of ``port`` (queue-depth proxy
        used by adaptive decisions)."""
        ...


class VcLadder:
    """Assigns hop VCs along a fixed hop-type sequence."""

    def __init__(self, sequence: str = "LLGLGL") -> None:
        if not sequence or any(c not in "LG" for c in sequence):
            raise ValueError("ladder sequence must be non-empty over {L, G}")
        self.sequence = sequence

    @property
    def num_vcs(self) -> int:
        return len(self.sequence)

    def next_vc(self, ptr: int, hop_type: str) -> tuple[int, int]:
        """VC for a hop of ``hop_type`` given ladder position ``ptr``;
        returns (vc, new_ptr).  Raises if the path exceeds its budget,
        which would indicate a routing bug."""
        for pos in range(ptr, len(self.sequence)):
            if self.sequence[pos] == hop_type:
                return pos, pos + 1
        raise RuntimeError(
            f"no {hop_type} hop available at ladder position {ptr} "
            f"(sequence {self.sequence}); illegal path"
        )

    def can_take(self, ptr: int, hop_type: str) -> bool:
        return hop_type in self.sequence[ptr:]


class Router:
    """Base router: subclasses implement :meth:`route`.

    ``route`` is invoked exactly once per packet per switch, when the
    packet's head flit reaches the front of its input VC queue.  It
    returns ``(out_port, next_vc)``; for ejection ports ``next_vc`` is
    ignored by the datapath.
    """

    #: VCs this algorithm requires of the switch datapath.
    num_vcs_required: int = 1

    def route(
        self, ctx: RoutingContext, in_port: int, packet: Packet
    ) -> tuple[int, int]:
        raise NotImplementedError

    def prepare_injection(self, packet: Packet) -> None:
        """Initialize per-packet routing state at the source NIC."""
        packet.vc = 0
        packet.route_ptr = 0
        packet.nonminimal = False
        packet.mid_group = -1
        packet.route_committed = False
