"""The paper's primary contribution: stashing storage built from idle
port-buffer memory.

* :mod:`repro.core.banked_buffer` — two-bank interleaved port memory
  supporting simultaneous normal + stash access (Figure 4).
* :mod:`repro.core.stash` — per-port stash partitions and the switch-wide
  stash pool with join-shortest-queue placement (Section III-A/C).
* :mod:`repro.core.sideband` — the dedicated bookkeeping network carrying
  location / delete / retransmit messages (Section IV-A).
* :mod:`repro.core.reliability` — the end-to-end retransmission tracker
  hosted at first-hop end ports (Section IV-A).
"""

from repro.core.banked_buffer import BankedBuffer, BufferAccess
from repro.core.reliability import EndToEndTracker, TrackerRecord
from repro.core.sideband import SidebandMessage, SidebandNetwork
from repro.core.stash import StashPartition

__all__ = [
    "BankedBuffer",
    "BufferAccess",
    "EndToEndTracker",
    "SidebandMessage",
    "SidebandNetwork",
    "StashPartition",
    "TrackerRecord",
]
