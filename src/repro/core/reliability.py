"""End-to-end retransmission tracker (paper Section IV-A).

Each *end port* (a first-hop switch input connected directly to an
endpoint) keeps a management data structure tracking every injected data
packet: where its stash copy landed (reported asynchronously by a
location message) and whether its ACK has returned.  The two events race;
the tracker resolves all four orderings exactly as the paper describes:

* location then positive ACK  -> send delete;
* location then negative ACK  -> send retransmit;
* positive ACK then location  -> normal completion proceeds immediately,
  the later location is answered with a delete;
* negative ACK then location  -> retransmit processing waits for the
  location message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sideband import SidebandKind, SidebandMessage

__all__ = ["EndToEndTracker", "TrackerRecord"]


@dataclass
class TrackerRecord:
    pid: int
    size_flits: int
    stash_port: int = -1
    location: int = -1
    ack_seen: bool = False
    ack_positive: bool = True

    @property
    def has_location(self) -> bool:
        return self.stash_port >= 0


class EndToEndTracker:
    """Outstanding-packet bookkeeping for one end port."""

    def __init__(self, port: int) -> None:
        self.port = port
        self._records: dict[int, TrackerRecord] = {}
        self.acks_before_location = 0
        self.deletes_sent = 0
        self.retransmits_sent = 0

    @property
    def outstanding(self) -> int:
        return len(self._records)

    @property
    def outstanding_flits(self) -> int:
        return sum(r.size_flits for r in self._records.values())

    def track(self, pid: int, size_flits: int) -> None:
        """Register a packet whose stash copy was dispatched."""
        if pid in self._records:
            raise RuntimeError(f"packet {pid} already tracked at port {self.port}")
        self._records[pid] = TrackerRecord(pid=pid, size_flits=size_flits)

    def is_tracked(self, pid: int) -> bool:
        return pid in self._records

    def on_location(
        self, pid: int, stash_port: int, location: int
    ) -> SidebandMessage | None:
        """Handle a location message; may immediately resolve a pending ACK."""
        record = self._records.get(pid)
        if record is None:
            raise RuntimeError(f"location for unknown packet {pid}")
        record.stash_port = stash_port
        record.location = location
        if record.ack_seen:
            return self._resolve(record)
        return None

    def on_ack(self, pid: int, positive: bool) -> SidebandMessage | None:
        """Handle the end-to-end ACK observed egressing to the endpoint."""
        record = self._records.get(pid)
        if record is None:
            # ACK for an untracked packet (e.g. a retransmission clone that
            # was re-tracked under a new pid, or baseline traffic).
            return None
        record.ack_seen = True
        record.ack_positive = positive
        if record.has_location:
            return self._resolve(record)
        self.acks_before_location += 1
        return None

    def _resolve(self, record: TrackerRecord) -> SidebandMessage:
        del self._records[record.pid]
        if record.ack_positive:
            self.deletes_sent += 1
            kind = SidebandKind.DELETE
        else:
            self.retransmits_sent += 1
            kind = SidebandKind.RETRANSMIT
        return SidebandMessage(
            kind=kind,
            dest_port=record.stash_port,
            pid=record.pid,
            stash_port=record.stash_port,
            location=record.location,
            origin_port=self.port,
        )
