"""Per-port stash partitions and the switch-wide stash directory.

Each stashing-switch port virtually partitions its input + output buffer
memory into a small normal portion and a large stash portion managed as a
single pool (paper Figure 3).  The pool supports the three management
operations of Section III-C — store, retrieve, delete — plus FIFO order
for the congestion use case (Section IV-B).

Unlike the flit-granular normal partitions, stash space is committed at
head-flit time for the *whole* packet (a stored packet must fit — the
partition is storage, not a through-buffer) and released page-aligned
per the two-bank memory model, so a partition can never admit a packet
it cannot finish storing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.banked_buffer import PAGE_FLITS
from repro.switch.flit import Packet

__all__ = ["StashDirectory", "StashJob", "StashPartition"]


@dataclass(frozen=True)
class StashJob:
    """Transit metadata for flits on the storage (S) VC.

    Carried alongside each S-path flit instead of being written onto the
    packet, because a reliability *copy* shares its Packet object with
    the original that keeps traveling the network: the copy's purpose
    and origin must not race the original's per-hop routing state.

    ``purpose`` is "copy" (end-to-end reliability duplicate, Section
    IV-A) or "divert" (congestion-stashed packet, Section IV-B);
    ``origin_port`` is the end port whose tracker expects the location
    message (copies only).
    """

    purpose: str
    packet: Packet
    origin_port: int = -1

    def __post_init__(self) -> None:
        if self.purpose not in ("copy", "divert"):
            raise ValueError(f"unknown stash purpose {self.purpose!r}")
        if self.purpose == "copy" and self.origin_port < 0:
            raise ValueError("reliability copies must carry their origin port")


def _pages(flits: int) -> int:
    """Flits rounded up to the two-flit page granularity."""
    return -(-flits // PAGE_FLITS) * PAGE_FLITS


class StashPartition:
    """The stash pool of one port.

    ``capacity_flits`` is the pooled stash storage carved from the port's
    input and output buffers (e.g. 7/8 of both for an endpoint port).
    A capacity of zero models ports statically excluded from stashing
    (global ports in the paper's dragonfly).
    """

    __slots__ = (
        "port",
        "capacity",
        "_committed",
        "_stored_pages",
        "_entries",
        "_fifo",
        "_next_location",
        "_dir",
        "_dir_col",
        "stored_total",
        "deleted_total",
        "retrieved_total",
        "peak_committed",
    )

    def __init__(self, port: int, capacity_flits: int) -> None:
        if capacity_flits < 0:
            raise ValueError("stash capacity must be non-negative")
        self.port = port
        self.capacity = (capacity_flits // PAGE_FLITS) * PAGE_FLITS
        self._committed = 0
        # pages of committed space actually holding stored packets; the
        # gap to _committed is space reserved for packets still in flight
        self._stored_pages = 0
        self._entries: dict[int, Packet] = {}
        self._fifo: deque[Packet] = deque()
        self._next_location = 0
        # owning directory and column (set by StashDirectory) so commits
        # and releases maintain the per-column free-space totals in O(1)
        self._dir: "StashDirectory | None" = None
        self._dir_col = -1
        self.stored_total = 0
        self.deleted_total = 0
        self.retrieved_total = 0
        self.peak_committed = 0

    # -- capacity ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def committed_flits(self) -> int:
        return self._committed

    def free_flits(self) -> int:
        return self.capacity - self._committed

    def can_admit(self, flits: int) -> bool:
        return self.enabled and _pages(flits) <= self.free_flits()

    def commit(self, flits: int) -> None:
        """Reserve space for an inbound packet (head-flit time)."""
        pages = _pages(flits)
        if pages > self.free_flits():
            raise RuntimeError(
                f"stash partition of port {self.port} overflow: "
                f"{pages} > {self.free_flits()}"
            )
        self._committed += pages
        if self._dir is not None:
            self._dir.col_free[self._dir_col] -= pages
        self.peak_committed = max(self.peak_committed, self._committed)

    def _release(self, flits: int) -> None:
        pages = _pages(flits)
        if pages > self._committed:
            raise RuntimeError("stash release exceeds committed space")
        self._committed -= pages
        if self._dir is not None:
            self._dir.col_free[self._dir_col] += pages

    def _check_store(self, flits: int) -> int:
        """Validate that a packet landing in the partition fits inside
        space previously reserved via :meth:`commit` (a store without a
        matching commit would let stored packets exceed the two-bank
        memory's real capacity).  Returns the packet's page footprint."""
        pages = _pages(flits)
        if self._stored_pages + pages > self._committed:
            raise RuntimeError(
                f"store of {pages} pages on port {self.port} without a "
                f"matching commit: {self._stored_pages} stored of "
                f"{self._committed} committed"
            )
        return pages

    def occupancy_fraction(self) -> float:
        return self._committed / self.capacity if self.capacity else 0.0

    # -- store / retrieve / delete (Section III-C) ---------------------

    def store(self, packet: Packet) -> int:
        """Record a fully arrived packet; space must already be committed.
        Returns the location index reported in the location message."""
        self._stored_pages += self._check_store(packet.size)
        location = self._next_location
        self._next_location += 1
        self._entries[location] = packet
        self.stored_total += 1
        return location

    def delete(self, location: int) -> None:
        packet = self._entries.pop(location)
        self._stored_pages -= _pages(packet.size)
        self._release(packet.size)
        self.deleted_total += 1

    def retrieve(self, location: int) -> Packet:
        """Remove and return a stored packet for retransmission.  Space is
        released when the packet has been read out (caller's duty via the
        R-VC datapath); we release immediately since the read-out buffer
        space is accounted by the R VC buffers downstream."""
        packet = self._entries.pop(location)
        self._stored_pages -= _pages(packet.size)
        self._release(packet.size)
        self.retrieved_total += 1
        return packet

    def get(self, location: int) -> Packet | None:
        return self._entries.get(location)

    # -- FIFO order for congestion stashing (Section IV-B) -------------

    def push_fifo(self, packet: Packet) -> None:
        """Queue a fully arrived congestion-stashed packet for retrieval;
        space must already be committed."""
        self._stored_pages += self._check_store(packet.size)
        self._fifo.append(packet)
        self.stored_total += 1

    def front_fifo(self) -> Packet | None:
        return self._fifo[0] if self._fifo else None

    def pop_fifo(self) -> Packet:
        packet = self._fifo.popleft()
        self._stored_pages -= _pages(packet.size)
        self._release(packet.size)
        self.retrieved_total += 1
        return packet

    @property
    def fifo_depth(self) -> int:
        return len(self._fifo)

    @property
    def empty(self) -> bool:
        return not self._entries and not self._fifo and self._committed == 0


class StashDirectory:
    """Switch-level view of all port partitions.

    Supports the join-shortest-queue placement of Section III-A: ports
    with no stash capacity are statically omitted, and rankings use free
    stash space (the on-chip proxy for "storage VC credits available").
    """

    def __init__(self, partitions: list[StashPartition], cols: int, tile_outputs: int):
        self.partitions = partitions
        self.cols = cols
        self.tile_outputs = tile_outputs
        self._ports_by_col: list[list[int]] = [
            [
                p
                for p in range(len(partitions))
                if p // tile_outputs == c and partitions[p].enabled
            ]
            for c in range(cols)
        ]
        # running free-flit total per column, maintained by the member
        # partitions on commit/release (the JSQ column choice reads this
        # every head flit, so it must not be a sum over partitions)
        self.col_free: list[int] = [
            sum(partitions[p].free_flits() for p in ports)
            for ports in self._ports_by_col
        ]
        for c, ports in enumerate(self._ports_by_col):
            for p in ports:
                partitions[p]._dir = self
                partitions[p]._dir_col = c

    def ports_in_column(self, col: int) -> list[int]:
        """Stash-capable ports reachable through column ``col``."""
        return self._ports_by_col[col]

    def column_free_flits(self, col: int) -> int:
        return self.col_free[col]

    def total_capacity(self) -> int:
        return sum(p.capacity for p in self.partitions)

    def total_committed(self) -> int:
        return sum(p.committed_flits for p in self.partitions)

    def utilization(self) -> float:
        cap = self.total_capacity()
        return self.total_committed() / cap if cap else 0.0

    def stash_columns(self) -> list[int]:
        """Columns containing at least one stash-capable port."""
        return [c for c in range(self.cols) if self._ports_by_col[c]]
