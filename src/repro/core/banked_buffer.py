"""Two-bank interleaved port memory (paper Figure 4, Section III-B).

A port buffer must serve four logical ports once stashing is added: the
normal read/write pair plus a stash read/write pair.  Rather than a
4-ported or double-clocked RAM, the paper divides the memory into two
banks holding even and odd flit offsets; a multi-flit access alternates
banks, so up to four sequential accesses can be in flight as long as no
two target the same bank in the same cycle.  Write sequences remember
which bank they started on (one bit per packet); reads start in a
non-conflicting order.

This module is a functional model of that memory: it allocates flit
storage at two-flit page granularity on either side of a movable
partition point and schedules per-cycle accesses with bank-conflict
arbitration.  The cycle-level switch model uses it for capacity
bookkeeping and the tests use it to validate the isolation claims; the
conflict scheduler demonstrates that the paper's four-port access pattern
sustains full throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BankedBuffer", "BufferAccess"]

PAGE_FLITS = 2  # one even + one odd slot; the paper's partition granularity


@dataclass
class BufferAccess:
    """An in-progress sequential access (read or write) of ``length`` flits.

    ``start_bank`` is the bank of the first flit (0 = even, 1 = odd); the
    access touches ``(start_bank + progress) % 2`` each active cycle.
    """

    port: str  # "normal_read" | "normal_write" | "stash_read" | "stash_write"
    length: int
    start_bank: int = 0
    progress: int = 0
    stalls: int = 0

    @property
    def done(self) -> bool:
        return self.progress >= self.length

    @property
    def current_bank(self) -> int:
        return (self.start_bank + self.progress) % 2


class BankedBuffer:
    """Even/odd interleaved flit memory with a normal/stash partition.

    Parameters
    ----------
    capacity_flits:
        Total memory size; rounded **down** to a whole number of pages.
    stash_flits:
        Flits assigned to the stash partition, rounded down to pages.
        The normal partition gets the remainder.
    """

    def __init__(self, capacity_flits: int, stash_flits: int = 0) -> None:
        if capacity_flits < PAGE_FLITS:
            raise ValueError("buffer must hold at least one page")
        if not 0 <= stash_flits <= capacity_flits:
            raise ValueError("stash partition exceeds buffer capacity")
        self.capacity = (capacity_flits // PAGE_FLITS) * PAGE_FLITS
        self.stash_capacity = (stash_flits // PAGE_FLITS) * PAGE_FLITS
        self.normal_capacity = self.capacity - self.stash_capacity
        self._normal_used = 0
        self._stash_used = 0
        self._active: list[BufferAccess] = []

    # ------------------------------------------------------------------
    # capacity bookkeeping (pages allocated per partition)
    # ------------------------------------------------------------------

    def normal_free(self) -> int:
        return self.normal_capacity - self._normal_used

    def stash_free(self) -> int:
        return self.stash_capacity - self._stash_used

    def allocate(self, partition: str, flits: int) -> None:
        """Reserve ``flits`` (rounded up to pages) in a partition."""
        pages = -(-flits // PAGE_FLITS) * PAGE_FLITS
        if partition == "normal":
            if pages > self.normal_free():
                raise RuntimeError("normal partition overflow")
            self._normal_used += pages
        elif partition == "stash":
            if pages > self.stash_free():
                raise RuntimeError("stash partition overflow")
            self._stash_used += pages
        else:
            raise ValueError(f"unknown partition {partition!r}")

    def free(self, partition: str, flits: int) -> None:
        pages = -(-flits // PAGE_FLITS) * PAGE_FLITS
        if partition == "normal":
            if pages > self._normal_used:
                raise RuntimeError("freeing more than allocated (normal)")
            self._normal_used -= pages
        elif partition == "stash":
            if pages > self._stash_used:
                raise RuntimeError("freeing more than allocated (stash)")
            self._stash_used -= pages
        else:
            raise ValueError(f"unknown partition {partition!r}")

    def repartition(self, stash_flits: int) -> None:
        """Move the partition point (allowed only when stash side is empty,
        as when a switch is reconfigured for a different topology role)."""
        if self._stash_used:
            raise RuntimeError("cannot repartition with stashed data present")
        pages = (stash_flits // PAGE_FLITS) * PAGE_FLITS
        if pages > self.capacity - self._normal_used:
            raise RuntimeError("new stash partition would overlap live data")
        self.stash_capacity = pages
        self.normal_capacity = self.capacity - pages

    # ------------------------------------------------------------------
    # per-cycle bank-conflict scheduling
    # ------------------------------------------------------------------

    def begin_access(self, port: str, length: int) -> BufferAccess:
        """Start a sequential access.  Writes pick the start bank that
        avoids conflict with accesses already in flight this cycle
        (the paper: "write sequences can simply avoid one another");
        reads likewise start on the free bank when possible."""
        if length < 1:
            raise ValueError("access length must be positive")
        if any(a.port == port and not a.done for a in self._active):
            raise RuntimeError(f"port {port!r} already has an access in flight")
        busy_banks = {a.current_bank for a in self._active if not a.done}
        start_bank = 1 if 0 in busy_banks and 1 not in busy_banks else 0
        access = BufferAccess(port=port, length=length, start_bank=start_bank)
        self._active.append(access)
        return access

    def tick(self) -> dict[str, bool]:
        """Advance one memory cycle.  Each bank serves at most one access;
        ties resolve in begin order (oldest first).  Returns which ports
        advanced this cycle."""
        served_banks: set[int] = set()
        advanced: dict[str, bool] = {}
        for access in self._active:
            if access.done:
                continue
            bank = access.current_bank
            if bank in served_banks:
                access.stalls += 1
                advanced[access.port] = False
            else:
                served_banks.add(bank)
                access.progress += 1
                advanced[access.port] = True
        self._active = [a for a in self._active if not a.done]
        return advanced

    @property
    def active_accesses(self) -> int:
        return len(self._active)
