"""The dedicated side-band bookkeeping network inside a stashing switch.

End-to-end reliability needs small metadata messages between end ports
and stash buffers scattered around the chip: *location* messages
(stash buffer -> originating end port, carrying the buffer index),
*delete* messages (end port -> stash buffer, on positive ACK) and
*retransmit* messages (end port -> stash buffer, on negative ACK).  The
paper models "a simple dedicated network to handle these side-band
communications" (Section IV-A); we model it as a fixed-latency delivery
fabric internal to one switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.engine.channel import Channel

__all__ = ["SidebandKind", "SidebandMessage", "SidebandNetwork"]


class SidebandKind(IntEnum):
    LOCATION = 0
    DELETE = 1
    RETRANSMIT = 2


@dataclass(frozen=True)
class SidebandMessage:
    """A few bytes of metadata: packet tracking index, ports, location."""

    kind: SidebandKind
    dest_port: int
    pid: int
    stash_port: int
    location: int
    #: originating end port (used by RETRANSMIT so the re-sent packet's
    #: new stash copy reports back to the right tracker)
    origin_port: int = -1


class SidebandNetwork:
    """Fixed-latency all-to-all delivery between the ports of one switch."""

    def __init__(self, num_ports: int, latency: int) -> None:
        if latency < 1:
            raise ValueError("side-band latency must be at least one cycle")
        self.num_ports = num_ports
        self._channel: Channel[SidebandMessage] = Channel(latency, "sideband")
        self.sent_total = 0

    def send(self, msg: SidebandMessage, cycle: int) -> None:
        if not 0 <= msg.dest_port < self.num_ports:
            raise ValueError(f"side-band destination {msg.dest_port} out of range")
        self._channel.send(msg, cycle)
        self.sent_total += 1

    def deliver_ready(self, cycle: int) -> list[SidebandMessage]:
        """All messages arriving this cycle, in send order."""
        return list(self._channel.recv_ready(cycle))

    @property
    def in_flight(self) -> int:
        return len(self._channel)

    @property
    def next_deadline(self) -> int | None:
        """Delivery cycle of the oldest in-flight message, or None."""
        return self._channel.next_deadline
