"""Engine-agnostic scenario declarations.

A :class:`ScenarioSpec` is everything an experiment point needs — the
network configuration, the stash/reliability/ECN variant, the topology,
the traffic, and the measurement phases — expressed as plain frozen
dataclasses with no reference to any simulation engine.  Both engines
consume it:

* the cycle-accurate engine (:class:`repro.engine.base.CycleEngine`)
  materialises it into a :class:`repro.network.Network` via
  :func:`build_network`;
* the flow-level fastpath (:class:`repro.engine.fastpath.FlowEngine`)
  reads the same spec and solves a fluid model over the same topology.

Because the spec is pure data it is picklable (so sweeps fan out over
the process pool unchanged) and content-hashable (:meth:`ScenarioSpec.
spec_hash`), which is what lets cross-validation assert that both
engines ran *the same* scenario.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Union

from repro.engine.config import NetworkConfig, ReliabilityParams, StashParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.network import Network
    from repro.topology.topology import Topology

__all__ = [
    "CONGESTION_VARIANTS",
    "RELIABILITY_VARIANTS",
    "DragonflyTopologySpec",
    "FatTreeTopologySpec",
    "HotspotTraffic",
    "ScenarioSpec",
    "SingleSwitchTopologySpec",
    "TopologySpec",
    "TrafficSpec",
    "UniformAggressorTraffic",
    "UniformTraffic",
    "build_network",
    "build_topology",
    "congestion_scenario",
    "reliability_scenario",
]

#: variant name -> stash capacity scale (None = no stashing).  Section
#: VI-A compares baseline and stashing at 100 % / 50 % / 25 % capacity.
RELIABILITY_VARIANTS: dict[str, float | None] = {
    "baseline": None,
    "stash100": 1.0,
    "stash50": 0.5,
    "stash25": 0.25,
}

#: Section VI-B compares the ECN baseline against ECN + stashing.
CONGESTION_VARIANTS: dict[str, float | None] = {
    "baseline": None,
    "stash100": 1.0,
    "stash50": 0.5,
}


# ----------------------------------------------------------------------
# topology specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DragonflyTopologySpec:
    """The config's dragonfly section; no extra parameters needed."""

    kind: str = "dragonfly"


@dataclass(frozen=True)
class SingleSwitchTopologySpec:
    """All endpoints on one switch (the testbench workhorse)."""

    num_nodes: int
    latency: int = 2
    kind: str = "single_switch"


@dataclass(frozen=True)
class FatTreeTopologySpec:
    """Two-level leaf/spine fat-tree (Section IV-A's second substrate).

    ``min_ports``/``rows``/``cols`` describe how the switch section is
    widened when the configured radix is too small for the tree.
    """

    num_leaves: int = 7
    num_spines: int = 2
    p: int = 3
    min_ports: int = 9
    rows: int = 3
    cols: int = 3
    kind: str = "fattree"


TopologySpec = Union[
    DragonflyTopologySpec, SingleSwitchTopologySpec, FatTreeTopologySpec
]


# ----------------------------------------------------------------------
# traffic specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UniformTraffic:
    """Bernoulli uniform-random injection on every node.

    ``msg_flits=None`` uses the switch's max packet size (one packet per
    message), matching :meth:`Network.add_uniform_traffic`.
    """

    rate: float
    msg_flits: int | None = None
    start: int = 0
    stop: int | None = None
    kind: str = "uniform"


@dataclass(frozen=True)
class HotspotTraffic:
    """Fig. 7/8 scenario: hotspot aggressors over a uniform victim."""

    victim_rate: float = 0.4
    oversubscription: int = 4
    num_hotspots: int | None = None
    aggressor_start: int = 0
    aggressor_stop: int | None = None
    kind: str = "hotspot"


@dataclass(frozen=True)
class UniformAggressorTraffic:
    """Fig. 9 scenario: half victims, half max-rate burst aggressors."""

    burst_flits: int
    victim_rate: float = 0.4
    kind: str = "uniform_aggressor"


TrafficSpec = Union[UniformTraffic, HotspotTraffic, UniformAggressorTraffic]


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified experiment point, engine-agnostic.

    ``variant_kind`` selects how ``stash_scale`` is applied to the
    config: ``"reliability"`` (Section VI-A: ACK'd end-to-end
    retransmission from first-hop stash copies), ``"congestion"``
    (Section VI-B: ECN always on, stashing absorbs HoL blocking), or
    ``"plain"`` (config used as-is).  ``seed`` overrides the config's
    RNG seed when set — this is the slot the sweep executor's
    per-point derived seed lands in (:mod:`repro.engine.parallel`).
    """

    config: NetworkConfig
    variant_kind: str = "plain"
    variant: str = "baseline"
    topology: TopologySpec = DragonflyTopologySpec()
    routing_mode: str = "par"
    traffic: tuple[TrafficSpec, ...] = ()
    drain: bool = True
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.variant_kind not in ("plain", "reliability", "congestion"):
            raise ValueError(
                f"unknown variant_kind {self.variant_kind!r}; choose "
                "plain, reliability, or congestion"
            )
        if self.variant_kind == "reliability":
            if self.variant not in RELIABILITY_VARIANTS:
                raise ValueError(f"unknown reliability variant {self.variant!r}")
        if self.variant_kind == "congestion":
            if self.variant not in CONGESTION_VARIANTS:
                raise ValueError(f"unknown congestion variant {self.variant!r}")

    # -- derivation helpers ------------------------------------------------

    def with_seed(self, seed: int | None) -> "ScenarioSpec":
        """A copy with the per-run seed slot filled (or cleared)."""
        return replace(self, seed=seed)

    @property
    def stash_scale(self) -> float | None:
        """The variant's stash capacity scale (None = no stashing)."""
        if self.variant_kind == "reliability":
            return RELIABILITY_VARIANTS[self.variant]
        if self.variant_kind == "congestion":
            return CONGESTION_VARIANTS[self.variant]
        return self.config.stash.capacity_scale if self.config.stash.enabled else None

    def resolved_config(self) -> NetworkConfig:
        """The concrete :class:`NetworkConfig` after applying the seed
        override and the stash/reliability/ECN variant."""
        from dataclasses import replace as drep

        cfg = self.config
        if self.seed is not None:
            cfg = cfg.with_(sim=drep(cfg.sim, seed=self.seed))
        if self.variant_kind == "plain":
            return cfg
        scale = self.stash_scale
        if self.variant_kind == "reliability":
            if scale is None:
                return cfg.with_(
                    stash=StashParams(enabled=False),
                    reliability=ReliabilityParams(enabled=False),
                )
            return cfg.with_(
                stash=drep(cfg.stash, enabled=True, capacity_scale=scale),
                reliability=ReliabilityParams(enabled=True),
            )
        # congestion: ECN always on; stashing variants also stash
        # HoL-blocked packets while notification converges
        ecn = drep(cfg.ecn, enabled=True, stash_on_congestion=scale is not None)
        if scale is None:
            return cfg.with_(stash=StashParams(enabled=False), ecn=ecn)
        return cfg.with_(
            stash=drep(cfg.stash, enabled=True, capacity_scale=scale),
            ecn=ecn,
        )

    def spec_hash(self) -> str:
        """Stable content hash of the scenario.

        Identical for identical specs across processes, hosts, and
        engines — the cross-validation key that proves both engines ran
        the same scenario.
        """
        payload = {
            "config": asdict(self.config),
            "variant_kind": self.variant_kind,
            "variant": self.variant,
            "topology": asdict(self.topology),
            "routing_mode": self.routing_mode,
            "traffic": [asdict(t) for t in self.traffic],
            "drain": self.drain,
            "seed": self.seed,
        }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def reliability_scenario(
    base: NetworkConfig,
    variant: str,
    traffic: tuple[TrafficSpec, ...] = (),
    topology: TopologySpec | None = None,
    drain: bool = True,
) -> ScenarioSpec:
    """A Section VI-A scenario: ACKs on, stash variant applied."""
    return ScenarioSpec(
        config=base,
        variant_kind="reliability",
        variant=variant,
        topology=topology if topology is not None else DragonflyTopologySpec(),
        traffic=traffic,
        drain=drain,
    )


def congestion_scenario(
    base: NetworkConfig,
    variant: str,
    traffic: tuple[TrafficSpec, ...] = (),
    topology: TopologySpec | None = None,
    drain: bool = True,
) -> ScenarioSpec:
    """A Section VI-B scenario: ECN on, stash variant applied."""
    return ScenarioSpec(
        config=base,
        variant_kind="congestion",
        variant=variant,
        topology=topology if topology is not None else DragonflyTopologySpec(),
        traffic=traffic,
        drain=drain,
    )


# ----------------------------------------------------------------------
# materialisation (shared by both engines)
# ----------------------------------------------------------------------


def build_topology(
    spec: ScenarioSpec, cfg: NetworkConfig
) -> tuple["Topology | None", NetworkConfig]:
    """Construct the spec's topology object (None = let Network build
    the config's dragonfly itself) and the possibly-widened config.

    The fat-tree branch reproduces the historical experiment setup: the
    tree is built with at least ``min_ports`` ports and the switch
    section is re-tiled to match when the configured radix is smaller.
    """
    topo_spec = spec.topology
    if isinstance(topo_spec, DragonflyTopologySpec):
        return None, cfg
    if isinstance(topo_spec, SingleSwitchTopologySpec):
        from repro.topology.single_switch import SingleSwitchTopology

        topo = SingleSwitchTopology(
            num_nodes=topo_spec.num_nodes,
            num_ports=cfg.switch.num_ports,
            latency=topo_spec.latency,
        )
        return topo, cfg
    if isinstance(topo_spec, FatTreeTopologySpec):
        from dataclasses import replace as drep

        from repro.topology.fattree import FatTreeTopology

        topo = FatTreeTopology(
            num_leaves=topo_spec.num_leaves,
            num_spines=topo_spec.num_spines,
            p=topo_spec.p,
            num_ports=max(cfg.switch.num_ports, topo_spec.min_ports),
            latency_endpoint=cfg.dragonfly.latency_endpoint,
            latency_up=cfg.dragonfly.latency_global // 2,
        )
        if topo.num_ports != cfg.switch.num_ports:
            cfg = cfg.with_(
                switch=drep(
                    cfg.switch,
                    num_ports=topo.num_ports,
                    rows=topo_spec.rows,
                    cols=topo_spec.cols,
                )
            )
        return topo, cfg
    raise TypeError(f"unknown topology spec {topo_spec!r}")


def apply_traffic(net: "Network", spec: ScenarioSpec) -> None:
    """Attach the spec's declarative traffic to a built network."""
    for traffic in spec.traffic:
        if isinstance(traffic, UniformTraffic):
            net.add_uniform_traffic(
                rate=traffic.rate,
                msg_flits=traffic.msg_flits,
                start=traffic.start,
                stop=traffic.stop,
            )
        elif isinstance(traffic, HotspotTraffic):
            from repro.traffic.aggressor import hotspot_scenario

            net.built_scenarios.append(
                hotspot_scenario(
                    net,
                    victim_rate=traffic.victim_rate,
                    oversubscription=traffic.oversubscription,
                    num_hotspots=traffic.num_hotspots,
                    aggressor_start=traffic.aggressor_start,
                    aggressor_stop=traffic.aggressor_stop,
                )
            )
        elif isinstance(traffic, UniformAggressorTraffic):
            from repro.traffic.aggressor import uniform_aggressor_scenario

            net.built_scenarios.append(
                uniform_aggressor_scenario(
                    net,
                    burst_flits=traffic.burst_flits,
                    victim_rate=traffic.victim_rate,
                )
            )
        else:
            raise TypeError(f"unknown traffic spec {traffic!r}")


def build_network(spec: ScenarioSpec) -> "Network":
    """Materialise a scenario into a cycle-accurate :class:`Network`.

    The construction sequence (config resolution, topology, router,
    traffic attachment) reproduces the historical per-experiment
    builders exactly, so ``--engine cycle`` output is byte-identical to
    the pre-ScenarioSpec code (tests/test_engine_identity.py).
    """
    from repro.network import Network

    cfg = spec.resolved_config()
    topo, cfg = build_topology(spec, cfg)
    router = None
    if isinstance(spec.topology, FatTreeTopologySpec):
        from repro.engine.rng import DeterministicRng
        from repro.routing.fattree_routing import FatTreeRouter

        assert topo is not None
        router = FatTreeRouter(
            topo, DeterministicRng(cfg.sim.seed).stream("fattree-routing")
        )
    net = Network(
        cfg,
        topology=topo,
        router=router,
        routing_mode=spec.routing_mode,
        acks_enabled=True,
    )
    apply_traffic(net, spec)
    return net
