"""Declarative, engine-agnostic experiment scenarios (ScenarioSpec).

See :mod:`repro.scenario.spec` for the data model and
:mod:`repro.engine.base` for the engines that consume it.
"""

from repro.scenario.spec import (
    CONGESTION_VARIANTS,
    RELIABILITY_VARIANTS,
    DragonflyTopologySpec,
    FatTreeTopologySpec,
    HotspotTraffic,
    ScenarioSpec,
    SingleSwitchTopologySpec,
    TopologySpec,
    TrafficSpec,
    UniformAggressorTraffic,
    UniformTraffic,
    build_network,
    build_topology,
    congestion_scenario,
    reliability_scenario,
)

__all__ = [
    "CONGESTION_VARIANTS",
    "RELIABILITY_VARIANTS",
    "DragonflyTopologySpec",
    "FatTreeTopologySpec",
    "HotspotTraffic",
    "ScenarioSpec",
    "SingleSwitchTopologySpec",
    "TopologySpec",
    "TrafficSpec",
    "UniformAggressorTraffic",
    "UniformTraffic",
    "build_network",
    "build_topology",
    "congestion_scenario",
    "reliability_scenario",
]
