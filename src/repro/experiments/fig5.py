"""Figure 5: performance impact of stashing for end-to-end reliability
under uniform-random traffic.

5a: average network latency vs offered load; 5b: offered vs accepted
throughput — for the baseline and stashing networks at 100 % / 50 % /
25 % capacity.  Expected shape (paper Section VI-A): stash 100 % and
50 % track the baseline; 25 % saturates early at roughly the Little's-law
bound.

Runs on either engine (``engine="cycle"`` or ``"flow"``); the flow
fastpath reproduces the throughput curves within the tolerances in
docs/FASTPATH.md at a small fraction of the cycle engine's cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec
from repro.experiments.common import (
    RELIABILITY_VARIANTS,
    SweepEntry,
    collect_by_variant,
    preset_by_name,
    run_sweep,
    sweep_specs,
)
from repro.scenario import UniformTraffic, reliability_scenario

__all__ = [
    "Fig5Point",
    "campaign_entries",
    "fig5_entries",
    "fig5_specs",
    "format_fig5",
    "run_fig5",
]

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Fig5Point:
    offered: float
    accepted: float
    avg_latency: float
    p99_latency: float


def fig5_entries(
    base: NetworkConfig,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    msg_flits: int | None = None,
) -> list[SweepEntry]:
    """One scenario per (variant, load) sweep point."""
    return [
        SweepEntry(
            key=(variant, load),
            label=f"fig5:{variant}:{load!r}",
            spec=reliability_scenario(
                base,
                variant,
                traffic=(UniformTraffic(rate=load, msg_flits=msg_flits),),
            ),
        )
        for variant in variants
        for load in loads
    ]


def campaign_entries(base: NetworkConfig, axes: dict) -> list[SweepEntry]:
    """Campaign-file binding (``sweep = "fig5"``; docs/CAMPAIGNS.md).

    Accepted ``[axes]`` keys: ``variants``, ``loads``, ``msg_flits``.
    Loads are coerced to float so a campaign file's ``1`` and the
    interactive runner's ``1.0`` produce identical labels (and
    therefore identical derived seeds).
    """
    known = {"variants", "loads", "msg_flits"}
    unknown = sorted(set(axes) - known)
    if unknown:
        raise ValueError(
            f"fig5 campaigns accept axes {sorted(known)}; unknown {unknown}"
        )
    return fig5_entries(
        base,
        loads=tuple(float(x) for x in axes.get("loads", DEFAULT_LOADS)),
        variants=tuple(axes.get("variants", tuple(RELIABILITY_VARIANTS))),
        msg_flits=axes.get("msg_flits"),
    )


def fig5_specs(
    base: NetworkConfig,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    msg_flits: int | None = None,
    seed: int = 1,
    engine: str = "cycle",
) -> list[RunSpec]:
    """One executor spec per (variant, load) sweep point."""
    return sweep_specs(
        fig5_entries(base, loads, variants, msg_flits), seed, engine
    )


def run_fig5(
    base: NetworkConfig | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    msg_flits: int | None = None,
    seed: int = 1,
    jobs: int = 1,
    engine: str = "cycle",
    progress=None,
) -> dict[str, list[Fig5Point]]:
    if base is None:
        base = preset_by_name("tiny")
    outcomes = run_sweep(
        fig5_entries(base, loads, variants, msg_flits),
        seed=seed, engine=engine, jobs=jobs, progress=progress,
    )
    return collect_by_variant(
        outcomes,
        variants,
        value=lambda r: Fig5Point(
            offered=r.offered_load,
            accepted=r.accepted_load,
            avg_latency=r.avg_latency,
            p99_latency=r.p99_latency,
        ),
    )


def format_fig5(results: dict[str, list[Fig5Point]]) -> str:
    from repro.analysis.ascii_chart import multi_series_chart

    lines = [
        "Figure 5 — reliability stashing under uniform-random traffic",
        "",
        "(a) latency vs offered load        (b) offered vs accepted",
        f"{'variant':<10} {'offered':>8} {'accepted':>9} {'avg lat':>8} {'p99':>8}",
    ]
    for variant, points in results.items():
        for p in points:
            lines.append(
                f"{variant:<10} {p.offered:>8.3f} {p.accepted:>9.3f} "
                f"{p.avg_latency:>8.1f} {p.p99_latency:>8.1f}"
            )
        lines.append("")
    lines.append("(b) offered vs accepted throughput:")
    lines.append(
        multi_series_chart(
            {
                variant: (
                    [p.offered for p in points],
                    [p.accepted for p in points],
                )
                for variant, points in results.items()
            }
        )
    )
    return "\n".join(lines)
