"""Figure 5: performance impact of stashing for end-to-end reliability
under uniform-random traffic.

5a: average network latency vs offered load; 5b: offered vs accepted
throughput — for the baseline and stashing networks at 100 % / 50 % /
25 % capacity.  Expected shape (paper Section VI-A): stash 100 % and
50 % track the baseline; 25 % saturates early at roughly the Little's-law
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.experiments.common import (
    RELIABILITY_VARIANTS,
    preset_by_name,
    reliability_network,
)

__all__ = ["Fig5Point", "fig5_specs", "format_fig5", "run_fig5"]

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Fig5Point:
    offered: float
    accepted: float
    avg_latency: float
    p99_latency: float


def _fig5_point(
    base: NetworkConfig,
    variant: str,
    load: float,
    msg_flits: int | None,
    seed: int,
) -> Timed:
    net = reliability_network(base, variant, seed=seed)
    net.add_uniform_traffic(rate=load, msg_flits=msg_flits)
    res = net.run_standard()
    point = Fig5Point(
        offered=res.offered_load,
        accepted=res.accepted_load,
        avg_latency=res.avg_latency,
        p99_latency=res.p99_latency,
    )
    return Timed(point, net.sim.cycle)


def fig5_specs(
    base: NetworkConfig,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    msg_flits: int | None = None,
    seed: int = 1,
) -> list[RunSpec]:
    """One spec per (variant, load) sweep point."""
    return [
        RunSpec(
            key=(variant, load),
            fn=_fig5_point,
            args=(base, variant, load, msg_flits),
            seed=derive_run_seed(seed, f"fig5:{variant}:{load!r}"),
        )
        for variant in variants
        for load in loads
    ]


def run_fig5(
    base: NetworkConfig | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    msg_flits: int | None = None,
    seed: int = 1,
    jobs: int = 1,
    progress=None,
) -> dict[str, list[Fig5Point]]:
    if base is None:
        base = preset_by_name("tiny")
    specs = fig5_specs(base, loads, variants, msg_flits, seed)
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    results: dict[str, list[Fig5Point]] = {v: [] for v in variants}
    for outcome in outcomes:
        results[outcome.key[0]].append(outcome.value)
    return results


def format_fig5(results: dict[str, list[Fig5Point]]) -> str:
    from repro.analysis.ascii_chart import multi_series_chart

    lines = [
        "Figure 5 — reliability stashing under uniform-random traffic",
        "",
        "(a) latency vs offered load        (b) offered vs accepted",
        f"{'variant':<10} {'offered':>8} {'accepted':>9} {'avg lat':>8} {'p99':>8}",
    ]
    for variant, points in results.items():
        for p in points:
            lines.append(
                f"{variant:<10} {p.offered:>8.3f} {p.accepted:>9.3f} "
                f"{p.avg_latency:>8.1f} {p.p99_latency:>8.1f}"
            )
        lines.append("")
    lines.append("(b) offered vs accepted throughput:")
    lines.append(
        multi_series_chart(
            {
                variant: (
                    [p.offered for p in points],
                    [p.accepted for p in points],
                )
                for variant, points in results.items()
            }
        )
    )
    return "\n".join(lines)
