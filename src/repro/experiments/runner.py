"""Command-line experiment runner.

Usage::

    repro-experiments table1
    repro-experiments fig5 --preset tiny --quick
    repro-experiments all --quick
    python -m repro.experiments.runner fig7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import preset_by_name, quicken

__all__ = ["main"]

EXPERIMENTS = (
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation",
    "occupancy",
    "fattree",
)


def _run_one(name: str, base, quick: bool) -> str:
    if name == "table1":
        from repro.experiments.tables import format_table1, run_table1

        return format_table1(run_table1(base))
    if name == "table2":
        from repro.experiments.tables import format_table2, run_table2

        return format_table2(run_table2())
    if name == "fig5":
        from repro.experiments.fig5 import format_fig5, run_fig5

        loads = (0.2, 0.5, 0.8) if quick else (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)
        return format_fig5(run_fig5(base, loads=loads))
    if name == "fig6":
        from repro.experiments.fig6 import format_fig6, run_fig6

        apps = ("BIGFFT", "MiniFE") if quick else None
        kwargs = {"apps": apps} if apps else {}
        return format_fig6(run_fig6(base, **kwargs))
    if name == "fig7":
        from repro.experiments.fig7 import format_fig7, run_fig7

        return format_fig7(run_fig7(base))
    if name == "fig8":
        from repro.experiments.fig8 import format_fig8, run_fig8

        return format_fig8(run_fig8(base))
    if name == "fig9":
        from repro.experiments.fig9 import format_fig9, run_fig9

        bursts = (1, 8, 32) if quick else (1, 2, 4, 8, 16, 32, 64)
        return format_fig9(run_fig9(base, bursts_pkts=bursts))
    if name == "occupancy":
        from repro.experiments.occupancy import (
            format_occupancy,
            run_occupancy_census,
        )

        return format_occupancy(run_occupancy_census(base))
    if name == "fattree":
        from repro.experiments.fattree_exp import (
            format_fattree,
            run_fattree_reliability,
        )

        loads = (0.3,) if quick else (0.3, 0.7)
        return format_fattree(run_fattree_reliability(base, loads=loads))
    if name == "ablation":
        from repro.experiments.ablations import (
            format_ablations,
            run_littles_law_check,
            run_placement_ablation,
            run_speedup_ablation,
        )

        speedups = (1.0, 1.3) if quick else (1.0, 1.15, 1.3, 1.5)
        return format_ablations(
            run_speedup_ablation(base, speedups=speedups),
            run_placement_ablation(base),
            run_littles_law_check(base),
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="network scale (default: tiny; 'paper' is very slow in Python)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter windows and sparser sweeps",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the preset's RNG seed",
    )
    args = parser.parse_args(argv)

    base = preset_by_name(args.preset)
    if args.quick:
        base = quicken(base, 0.5)
    if args.seed is not None:
        from dataclasses import replace

        base = base.with_(sim=replace(base.sim, seed=args.seed))

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        t0 = time.time()
        print(f"=== {name} (preset={args.preset}) ===")
        print(_run_one(name, base, args.quick))
        print(f"--- {name} done in {time.time() - t0:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
