"""Command-line experiment runner.

Usage::

    repro-experiments table1
    repro-experiments fig5 --preset tiny --quick
    repro-experiments fig5 --quick --jobs 4
    repro-experiments all --quick
    python -m repro.experiments.runner fig7

``--jobs N`` runs each experiment's independent sweep points across N
worker processes.  Results are bit-identical for any N (every point
carries a pre-derived seed; see :mod:`repro.engine.parallel`), so the
flag only changes wall-clock time.  Progress lines go to stderr; stdout
carries exactly the formatted tables/figures.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import preset_by_name, quicken

__all__ = ["main"]

EXPERIMENTS = (
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation",
    "occupancy",
    "fattree",
)


def _progress_printer(name: str):
    """A run_specs progress callback reporting per-point timing on
    stderr (stdout must stay byte-identical across --jobs values)."""

    def progress(done: int, total: int, outcome) -> None:
        cps = outcome.cycles_per_second
        cps_txt = f", {cps:.0f} cyc/s" if cps else ""
        print(
            f"[{name} {done}/{total}] {outcome.key!r} "
            f"({outcome.wall_seconds:.1f}s{cps_txt})",
            file=sys.stderr,
        )

    return progress


#: experiments that accept an ``engine=`` argument; everything else
#: probes the switch microarchitecture or transient behavior and is
#: cycle-only (see docs/FASTPATH.md)
ENGINE_AWARE = ("fig5", "fig9", "fattree")


def _run_one(name: str, base, quick: bool, jobs: int = 1,
             engine: str = "cycle") -> str:
    progress = _progress_printer(name)
    if engine != "cycle" and name not in ENGINE_AWARE:
        from repro.engine.base import EngineUnsupported

        raise EngineUnsupported(
            f"experiment {name!r} is cycle-only: it measures transients or "
            "per-packet behaviour, which the steady-state fluid fastpath "
            "cannot represent (a time-stepped fluid mode would be needed; "
            f"see docs/FASTPATH.md). --engine {engine} supports "
            f"{', '.join(ENGINE_AWARE)}"
        )
    if name == "table1":
        from repro.experiments.tables import format_table1, run_table1

        return format_table1(run_table1(base))
    if name == "table2":
        from repro.experiments.tables import format_table2, run_table2

        return format_table2(run_table2(jobs=jobs, progress=progress))
    if name == "fig5":
        from repro.experiments.fig5 import format_fig5, run_fig5

        loads = (0.2, 0.5, 0.8) if quick else (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)
        return format_fig5(
            run_fig5(base, loads=loads, jobs=jobs, progress=progress,
                     engine=engine)
        )
    if name == "fig6":
        from repro.experiments.fig6 import format_fig6, run_fig6

        apps = ("BIGFFT", "MiniFE") if quick else None
        kwargs = {"apps": apps} if apps else {}
        return format_fig6(
            run_fig6(base, jobs=jobs, progress=progress, **kwargs)
        )
    if name == "fig7":
        from repro.experiments.fig7 import format_fig7, run_fig7

        return format_fig7(run_fig7(base))
    if name == "fig8":
        from repro.experiments.fig8 import format_fig8, run_fig8

        return format_fig8(run_fig8(base))
    if name == "fig9":
        from repro.experiments.fig9 import format_fig9, run_fig9

        bursts = (1, 8, 32) if quick else (1, 2, 4, 8, 16, 32, 64)
        return format_fig9(
            run_fig9(base, bursts_pkts=bursts, jobs=jobs, progress=progress,
                     engine=engine)
        )
    if name == "occupancy":
        from repro.experiments.occupancy import (
            format_occupancy,
            run_occupancy_census,
        )

        return format_occupancy(
            run_occupancy_census(base, jobs=jobs, progress=progress)
        )
    if name == "fattree":
        from repro.experiments.fattree_exp import (
            format_fattree,
            run_fattree_reliability,
        )

        loads = (0.3,) if quick else (0.3, 0.7)
        return format_fattree(
            run_fattree_reliability(
                base, loads=loads, jobs=jobs, progress=progress,
                engine=engine,
            )
        )
    if name == "ablation":
        from repro.experiments.ablations import (
            format_ablations,
            run_littles_law_check,
            run_placement_ablation,
            run_speedup_ablation,
        )

        speedups = (1.0, 1.3) if quick else (1.0, 1.15, 1.3, 1.5)
        return format_ablations(
            run_speedup_ablation(
                base, speedups=speedups, jobs=jobs, progress=progress
            ),
            run_placement_ablation(base, jobs=jobs, progress=progress),
            run_littles_law_check(base, jobs=jobs, progress=progress),
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="network scale (default: tiny; 'paper' is very slow in Python)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter windows and sparser sweeps",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the preset's RNG seed",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep points (default: 1 = serial; "
        "results are bit-identical for any N)",
    )
    parser.add_argument(
        "--engine",
        default="cycle",
        choices=("cycle", "flow"),
        help="simulation engine: 'cycle' (cycle-accurate, default) or "
        "'flow' (flow-level fastpath; fig5/fig9/fattree only)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("polling", "event"),
        help="cycle-loop kernel (default: the preset's, normally "
        "'event'; results are bit-identical for either)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect repro.obs counters and print the merged snapshot "
        "after each experiment",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a merged JSONL event trace (repro.obs schema) to "
        "FILE; byte-identical for any --jobs value",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.engine != "cycle":
        wanted = (
            EXPERIMENTS if args.experiment == "all" else (args.experiment,)
        )
        bad = [n for n in wanted if n not in ENGINE_AWARE]
        if bad:
            parser.error(
                f"--engine {args.engine} supports {', '.join(ENGINE_AWARE)}; "
                f"{', '.join(bad)} are cycle-only: they measure transients "
                "or per-packet behaviour, which the steady-state fluid "
                "fastpath cannot represent (a time-stepped fluid mode would "
                "be needed; see docs/FASTPATH.md)"
            )

    base = preset_by_name(args.preset)
    if args.quick:
        base = quicken(base, 0.5)
    if args.seed is not None:
        from dataclasses import replace

        base = base.with_(sim=replace(base.sim, seed=args.seed))
    if args.kernel is not None:
        from dataclasses import replace

        base = base.with_(sim=replace(base.sim, kernel=args.kernel))

    obs_on = args.metrics or args.trace is not None
    if obs_on:
        from repro.engine.config import ObsParams

        base = base.with_(
            obs=ObsParams(enabled=True, trace=args.trace is not None)
        )

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    captures = []
    for name in names:
        t0 = time.perf_counter()
        print(f"=== {name} (preset={args.preset}) ===")
        print(_run_one(name, base, args.quick, jobs=args.jobs,
                       engine=args.engine))
        print()
        # wall-clock varies run to run; keep stdout deterministic
        print(f"--- {name} done in {time.perf_counter() - t0:.1f}s ---",
              file=sys.stderr)
        if obs_on:
            captures.extend(_drain_captures())

    if args.metrics and captures:
        from repro.analysis.obsview import format_counters, merged_counters

        print("=== metrics (merged) ===")
        print(format_counters(merged_counters(captures)))
        print()
    if args.trace is not None:
        from repro.analysis.obsview import write_trace

        records = write_trace(args.trace, captures)
        print(f"wrote {records} trace records from {len(captures)} run(s) "
              f"to {args.trace}", file=sys.stderr)
    return 0


def _drain_captures() -> list:
    """Collect captures from sweep points (in (sweep, index) order) and
    any networks the experiment built outside a sweep (in construction
    order) — the same order for any ``--jobs`` value."""
    from repro.engine.parallel import drain_run_log
    from repro.obs.observer import take_captures

    return drain_run_log() + take_captures()


if __name__ == "__main__":
    sys.exit(main())
