"""Dynamic buffer-occupancy census: Table I measured, not just derived.

Table I *derives* buffer underutilization from link lengths; this
experiment *measures* it: run the baseline symmetric-port network under
realistic load, sample every port's committed input + output occupancy,
and report the peak per link class.  The fraction of the symmetric
buffer never touched is the stashable headroom — the empirical basis of
the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.experiments.common import preset_by_name
from repro.obs.timeline import Timeline
from repro.scenario import ScenarioSpec, UniformTraffic
from repro.scenario.spec import build_network

__all__ = [
    "OccupancyRow",
    "format_occupancy",
    "occupancy_specs",
    "run_occupancy_census",
]


@dataclass(frozen=True)
class OccupancyRow:
    link_class: str
    ports: int
    capacity_flits: int  # input + output per port
    peak_flits: int
    mean_peak_flits: float

    @property
    def idle_fraction(self) -> float:
        """Fraction of the port's buffering never used even at peak."""
        return 1.0 - self.peak_flits / self.capacity_flits


def _census_point(
    base: NetworkConfig,
    load: float,
    sample_period: int,
    seed: int,
) -> Timed:
    # baseline: full symmetric buffers everywhere (plain variant)
    spec = ScenarioSpec(
        config=base, traffic=(UniformTraffic(rate=load),)
    ).with_seed(seed)
    net = build_network(spec)

    topo = net.topology
    classes = ("endpoint", "local", "global")
    # one Timeline tracker per active (switch, port): committed input +
    # output occupancy, sampled every sample_period cycles
    port_class: dict[tuple[int, int], str] = {}
    tl = Timeline(sample_period)
    for s in range(topo.num_switches):
        for spec in topo.switch_ports(s):
            if spec.link_class in classes:
                p = spec.port
                port_class[(s, p)] = spec.link_class
                ip, op = net.switches[s].in_ports[p], net.switches[s].out_ports[p]
                tl.track(
                    f"occ.{s}.{p}",
                    lambda ip=ip, op=op: (
                        ip.damq.total_committed + op.out_damq.total_committed
                    ),
                )
    tl.install(net.sim)
    net.sim.run(base.sim.warmup_cycles + base.sim.measure_cycles)

    capacity = base.switch.input_buffer_flits + base.switch.output_buffer_flits
    rows = []
    for cls in classes:
        peaks = [
            tl.peak(f"occ.{s}.{p}")
            for (s, p), c in port_class.items()
            if c == cls
        ]
        if not peaks:
            continue
        rows.append(
            OccupancyRow(
                link_class=cls,
                ports=len(peaks),
                capacity_flits=capacity,
                peak_flits=max(peaks),
                mean_peak_flits=sum(peaks) / len(peaks),
            )
        )
    return Timed(rows, net.sim.cycle)


def occupancy_specs(
    base: NetworkConfig,
    load: float = 0.6,
    seed: int = 1,
    sample_period: int = 20,
) -> list[RunSpec]:
    """The census is a single simulation, expressed as one run spec so
    it schedules uniformly alongside the other sweeps."""
    return [
        RunSpec(
            key=("census", load),
            fn=_census_point,
            args=(base, load, sample_period),
            seed=derive_run_seed(seed, f"occupancy:{load!r}"),
        )
    ]


def run_occupancy_census(
    base: NetworkConfig | None = None,
    load: float = 0.6,
    seed: int = 1,
    sample_period: int = 20,
    jobs: int = 1,
    progress=None,
) -> list[OccupancyRow]:
    if base is None:
        base = preset_by_name("tiny")
    specs = occupancy_specs(base, load, seed, sample_period)
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    return outcomes[0].value


def format_occupancy(rows: list[OccupancyRow], load: float = 0.6) -> str:
    lines = [
        f"Measured buffer occupancy census (baseline network, load {load})",
        "",
        f"{'class':<10} {'ports':>6} {'capacity':>9} {'peak':>6} "
        f"{'mean peak':>10} {'idle at peak':>13}",
    ]
    for r in rows:
        lines.append(
            f"{r.link_class:<10} {r.ports:>6} {r.capacity_flits:>9} "
            f"{r.peak_flits:>6} {r.mean_peak_flits:>10.1f} "
            f"{r.idle_fraction:>12.0%}"
        )
    lines.append("")
    lines.append(
        "idle-at-peak is the stashable headroom Table I derives from link "
        "lengths — here measured under traffic."
    )
    return "\n".join(lines)
