"""Figure 6: MPI application-trace execution time, normalized to the
baseline network without stashing/retransmission.

Expected shape (paper Section VI-A): the four light traces (AMR, MiniFE,
MultiGrid, AMG) are ~1.0 at every stash capacity; the bandwidth-bound
traces (BIGFFT, FillBoundary) degrade only at 25 % capacity; stashing
occasionally *beats* baseline on congestion-prone traces because the
stash bound makes endpoints self-pacing.
"""

from __future__ import annotations

from repro.analysis.metrics import normalized_runtimes
from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.experiments.common import (
    RELIABILITY_VARIANTS,
    preset_by_name,
    reliability_network,
)
from repro.trace import build_app, run_trace
from repro.trace.apps import APP_REGISTRY

__all__ = ["fig6_specs", "format_fig6", "run_fig6"]

DEFAULT_APPS = tuple(APP_REGISTRY)


def _fig6_point(
    base: NetworkConfig,
    app: str,
    variant: str,
    size_scale: int,
    iterations: int,
    max_cycles: int,
    seed: int,
) -> Timed:
    net = reliability_network(base, variant, seed=seed)
    prog = build_app(
        app, net.topology.num_nodes, size_scale=size_scale,
        iterations=iterations,
    )
    runtime = float(run_trace(net, prog, max_cycles))
    return Timed(runtime, net.sim.cycle)


def fig6_specs(
    base: NetworkConfig,
    apps: tuple[str, ...] = DEFAULT_APPS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    size_scale: int = 4,
    iterations: int = 1,
    seed: int = 1,
    max_cycles: int = 2_000_000,
) -> list[RunSpec]:
    """One spec per (app, variant) trace replay."""
    return [
        RunSpec(
            key=(app, variant),
            fn=_fig6_point,
            args=(base, app, variant, size_scale, iterations, max_cycles),
            seed=derive_run_seed(seed, f"fig6:{app}:{variant}"),
        )
        for app in apps
        for variant in variants
    ]


def run_fig6(
    base: NetworkConfig | None = None,
    apps: tuple[str, ...] = DEFAULT_APPS,
    variants: tuple[str, ...] = tuple(RELIABILITY_VARIANTS),
    size_scale: int = 4,
    iterations: int = 1,
    seed: int = 1,
    max_cycles: int = 2_000_000,
    jobs: int = 1,
    progress=None,
) -> dict[str, dict[str, float]]:
    """Returns app -> variant -> execution cycles (absolute)."""
    if base is None:
        base = preset_by_name("tiny")
    specs = fig6_specs(
        base, apps, variants, size_scale, iterations, seed, max_cycles
    )
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    runtimes: dict[str, dict[str, float]] = {app: {} for app in apps}
    for outcome in outcomes:
        app, variant = outcome.key
        runtimes[app][variant] = outcome.value
    return runtimes


def format_fig6(runtimes: dict[str, dict[str, float]]) -> str:
    norm = normalized_runtimes(runtimes)
    variants = list(next(iter(runtimes.values())))
    header = f"{'app':<13}" + "".join(f"{v:>10}" for v in variants)
    lines = [
        "Figure 6 — normalized application-trace execution time",
        "",
        header,
    ]
    for app, by_variant in norm.items():
        lines.append(
            f"{app:<13}" + "".join(f"{by_variant[v]:>10.3f}" for v in variants)
        )
    return "\n".join(lines)
