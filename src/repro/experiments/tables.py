"""Tables I and II.

Table I is analytic (link asymmetry -> buffer underutilization); Table II
is the inventory of application traces, reproduced here with the metadata
of our synthetic generators plus their measured op/flit counts.
"""

from __future__ import annotations

from repro.analysis.table1 import (
    buffer_underutilization,
    dragonfly_link_table,
    paper_table1,
)
from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, run_specs
from repro.experiments.common import preset_by_name
from repro.trace.apps import APP_REGISTRY, build_app

__all__ = [
    "format_table1",
    "format_table2",
    "run_table1",
    "run_table2",
    "table2_specs",
]


def run_table1(base: NetworkConfig | None = None) -> dict:
    if base is None:
        base = preset_by_name("tiny")
    paper_rows = paper_table1()
    sim_rows = dragonfly_link_table(base.dragonfly, base.switch)
    return {
        "paper_rows": paper_rows,
        "paper_total": buffer_underutilization(paper_rows),
        "sim_rows": sim_rows,
        "sim_total": buffer_underutilization(sim_rows),
    }


def format_table1(result: dict) -> str:
    lines = [
        "Table I — asymmetry of links in a canonical dragonfly switch",
        "",
        f"{'Link Type':<13} {'Length':>9} {'% Ports':>8} {'Underutilized':>14}",
    ]
    for row in result["paper_rows"]:
        lines.append(
            f"{row.link_type:<13} {row.length:>9} {row.pct_ports:>8.0f} "
            f"{row.underutilized:>13.0%}"
        )
    lines.append(f"weighted total (paper quotes ~72%): {result['paper_total']:.1%}")
    lines.append("")
    lines.append("recomputed for the simulated configuration:")
    for row in result["sim_rows"]:
        lines.append(
            f"{row.link_type:<13} {row.length:>9} {row.pct_ports:>8.1f} "
            f"{row.underutilized:>13.0%}"
        )
    lines.append(f"weighted total: {result['sim_total']:.1%}")
    return "\n".join(lines)


def _table2_row(name: str, ranks: int, size_scale: int) -> dict:
    spec = APP_REGISTRY[name]
    prog = build_app(name, ranks, size_scale=size_scale, iterations=1)
    return {
        "name": name,
        "description": spec.description,
        "load_class": spec.load_class,
        "ranks": ranks,
        "ops": prog.total_ops,
        "send_flits": prog.total_send_flits,
    }


def table2_specs(ranks: int = 42, size_scale: int = 4) -> list[RunSpec]:
    """One spec per application trace (deterministic builds: no seed)."""
    return [
        RunSpec(key=name, fn=_table2_row, args=(name, ranks, size_scale))
        for name in APP_REGISTRY
    ]


def run_table2(
    ranks: int = 42, size_scale: int = 4, jobs: int = 1, progress=None
) -> list[dict]:
    outcomes = run_specs(
        table2_specs(ranks, size_scale), jobs=jobs, progress=progress
    )
    return [o.value for o in outcomes]


def format_table2(rows: list[dict]) -> str:
    lines = [
        "Table II — application traces (synthetic DesignForward analogues)",
        "",
        f"{'Application':<13} {'class':<10} {'ranks':>6} {'ops':>7} {'flits':>8}  description",
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<13} {r['load_class']:<10} {r['ranks']:>6} "
            f"{r['ops']:>7} {r['send_flits']:>8}  {r['description']}"
        )
    return "\n".join(lines)
