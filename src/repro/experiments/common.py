"""Shared experiment plumbing: presets, scenario sweeps, and variants.

The paper compares four networks in the reliability study (Section VI-A)
— baseline (no stashing, unlimited outstanding packets) and stashing at
100 % / 50 % / 25 % capacity — and three in the congestion study
(Section VI-B): ECN baseline, ECN + stashing at 100 % and 50 %.  The
variant tables live in :mod:`repro.scenario.spec` (re-exported here for
compatibility) so both engines resolve them identically.

Every sweep-style experiment (fig5, fig9, fattree, ablations) builds a
list of :class:`SweepEntry` — a stable key, the seed-derivation label,
and an engine-agnostic :class:`~repro.scenario.ScenarioSpec` — and runs
it through :func:`run_sweep`.  The harness owns the boilerplate the
figure scripts used to duplicate: per-point seed derivation, RunSpec
construction, executor fan-out, and collection by variant.  Labels are
byte-compatible with the pre-harness scripts, so derived seeds (and
therefore all cycle-engine output) are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

from repro.engine.base import get_engine
from repro.engine.config import NetworkConfig
from repro.engine.parallel import (
    RunOutcome,
    RunSpec,
    Timed,
    derive_run_seed,
    run_specs,
)
from repro.scenario.spec import (
    CONGESTION_VARIANTS,
    RELIABILITY_VARIANTS,
    ScenarioSpec,
    congestion_scenario,
    reliability_scenario,
)

__all__ = [
    "CONGESTION_VARIANTS",
    "RELIABILITY_VARIANTS",
    "SweepEntry",
    "collect_by_variant",
    "congestion_network",
    "preset_by_name",
    "quicken",
    "reliability_network",
    "run_sweep",
    "scenario_point",
    "sweep_specs",
]


def preset_by_name(name: str) -> NetworkConfig:
    from repro.engine.config import paper_preset, small_preset, tiny_preset

    presets = {"tiny": tiny_preset, "small": small_preset, "paper": paper_preset}
    if name not in presets:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(presets)}")
    return presets[name]()


def quicken(config: NetworkConfig, factor: float) -> NetworkConfig:
    """Scale measurement windows by ``factor`` (<1 shortens runs; used by
    the benchmark harness to keep wall-clock bounded)."""
    sim = config.sim
    return config.with_(
        sim=replace(
            sim,
            warmup_cycles=max(200, int(sim.warmup_cycles * factor)),
            measure_cycles=max(500, int(sim.measure_cycles * factor)),
            drain_cycles=max(1000, int(sim.drain_cycles * factor)),
        )
    )


# ----------------------------------------------------------------------
# scenario-backed network builders (Section VI-A / VI-B)
# ----------------------------------------------------------------------


def reliability_network(base: NetworkConfig, variant: str, seed: int | None = None):
    """A Section VI-A network: ACKs always on; stashing variants add
    first-hop end-to-end retransmission storage.

    Materialised through the scenario layer so every caller —
    experiments, trace replay, tests — shares one construction path.
    """
    from repro.scenario.spec import build_network

    return build_network(reliability_scenario(base, variant).with_seed(seed))


def congestion_network(base: NetworkConfig, variant: str, seed: int | None = None):
    """A Section VI-B network: ECN always on; stashing variants also
    stash HoL-blocked packets while congestion notification converges."""
    from repro.scenario.spec import build_network

    return build_network(congestion_scenario(base, variant).with_seed(seed))


# ----------------------------------------------------------------------
# the shared sweep harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepEntry:
    """One sweep point: a stable result key, the seed-derivation label
    (must match the historical per-experiment label format exactly —
    seeds, and therefore results, depend on it), and the scenario."""

    key: Any
    label: str
    spec: ScenarioSpec


def scenario_point(
    spec: ScenarioSpec, engine: str = "cycle", seed: int | None = None
) -> Timed:
    """Run one scenario on the named engine (module-level, so sweep
    specs pickle by reference into pool workers)."""
    result = get_engine(engine).run(spec.with_seed(seed))
    return Timed(result, result.cycles)


def sweep_specs(
    entries: Iterable[SweepEntry], seed: int = 1, engine: str = "cycle"
) -> list[RunSpec]:
    """Lower sweep entries to executor run specs with derived seeds."""
    return [
        RunSpec(
            key=entry.key,
            fn=scenario_point,
            args=(entry.spec, engine),
            seed=derive_run_seed(seed, entry.label),
        )
        for entry in entries
    ]


def run_sweep(
    entries: Iterable[SweepEntry],
    seed: int = 1,
    engine: str = "cycle",
    jobs: int = 1,
    progress: Callable[[int, int, RunOutcome], None] | None = None,
) -> list[RunOutcome]:
    """Run every entry on ``engine`` and return outcomes in entry order.

    Deterministic for any ``jobs`` value on both engines: the cycle
    engine via per-point derived seeds, the flow engine because it is a
    pure function of the spec.
    """
    return run_specs(sweep_specs(entries, seed, engine), jobs=jobs,
                     progress=progress)


def collect_by_variant(
    outcomes: Iterable[RunOutcome],
    variants: Sequence[str],
    value: Callable[[Any], Any] = lambda v: v,
) -> dict[str, list[Any]]:
    """Group outcome values by the leading element of their key, in
    outcome order — the collection loop every figure script repeated."""
    results: dict[str, list[Any]] = {v: [] for v in variants}
    for outcome in outcomes:
        results[outcome.key[0]].append(value(outcome.value))
    return results
