"""Shared experiment plumbing: network variants and presets.

The paper compares four networks in the reliability study (Section VI-A)
— baseline (no stashing, unlimited outstanding packets) and stashing at
100 % / 50 % / 25 % capacity — and three in the congestion study
(Section VI-B): ECN baseline, ECN + stashing at 100 % and 50 %.
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine.config import NetworkConfig, StashParams, ReliabilityParams
from repro.network import Network

__all__ = [
    "CONGESTION_VARIANTS",
    "RELIABILITY_VARIANTS",
    "congestion_network",
    "preset_by_name",
    "quicken",
    "reliability_network",
]

#: variant name -> stash capacity scale (None = no stashing)
RELIABILITY_VARIANTS: dict[str, float | None] = {
    "baseline": None,
    "stash100": 1.0,
    "stash50": 0.5,
    "stash25": 0.25,
}

CONGESTION_VARIANTS: dict[str, float | None] = {
    "baseline": None,
    "stash100": 1.0,
    "stash50": 0.5,
}


def preset_by_name(name: str) -> NetworkConfig:
    from repro.engine.config import paper_preset, small_preset, tiny_preset

    presets = {"tiny": tiny_preset, "small": small_preset, "paper": paper_preset}
    if name not in presets:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(presets)}")
    return presets[name]()


def quicken(config: NetworkConfig, factor: float) -> NetworkConfig:
    """Scale measurement windows by ``factor`` (<1 shortens runs; used by
    the benchmark harness to keep wall-clock bounded)."""
    sim = config.sim
    return config.with_(
        sim=replace(
            sim,
            warmup_cycles=max(200, int(sim.warmup_cycles * factor)),
            measure_cycles=max(500, int(sim.measure_cycles * factor)),
            drain_cycles=max(1000, int(sim.drain_cycles * factor)),
        )
    )


def reliability_network(
    base: NetworkConfig, variant: str, seed: int | None = None
) -> Network:
    """A Section VI-A network: ACKs always on; stashing variants add
    first-hop end-to-end retransmission storage."""
    scale = RELIABILITY_VARIANTS[variant]
    cfg = base
    if seed is not None:
        cfg = cfg.with_(sim=replace(cfg.sim, seed=seed))
    if scale is None:
        cfg = cfg.with_(
            stash=StashParams(enabled=False),
            reliability=ReliabilityParams(enabled=False),
        )
    else:
        cfg = cfg.with_(
            stash=replace(cfg.stash, enabled=True, capacity_scale=scale),
            reliability=ReliabilityParams(enabled=True),
        )
    return Network(cfg, acks_enabled=True)


def congestion_network(
    base: NetworkConfig, variant: str, seed: int | None = None
) -> Network:
    """A Section VI-B network: ECN always on; stashing variants also
    stash HoL-blocked packets while congestion notification converges."""
    scale = CONGESTION_VARIANTS[variant]
    cfg = base
    if seed is not None:
        cfg = cfg.with_(sim=replace(cfg.sim, seed=seed))
    ecn = replace(cfg.ecn, enabled=True, stash_on_congestion=scale is not None)
    if scale is None:
        cfg = cfg.with_(stash=StashParams(enabled=False), ecn=ecn)
    else:
        cfg = cfg.with_(
            stash=replace(cfg.stash, enabled=True, capacity_scale=scale),
            ecn=ecn,
        )
    return Network(cfg, acks_enabled=True)
