"""Figure 7: network transient response to the onset of congestion.

A uniform-random victim shares the network with hotspot aggressors that
activate partway through the run.  7a plots the victim's average latency
over time; 7b the victim's inverse-cumulative latency distribution, with
a no-aggressor baseline as reference.

Expected shape (paper Section VI-B): the ECN baseline's victim latency
spikes during the transient and its ICDF grows a long tail; stashing
absorbs the transient (higher capacity -> flatter time series, shorter
tail).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.config import NetworkConfig
from repro.engine.stats import TimeSeries
from repro.experiments.common import CONGESTION_VARIANTS, preset_by_name
from repro.scenario import HotspotTraffic, congestion_scenario
from repro.scenario.spec import build_network

__all__ = ["Fig7Result", "format_fig7", "run_fig7"]


@dataclass
class Fig7Result:
    """Per-variant victim series + distribution."""

    time: np.ndarray
    avg_latency: np.ndarray
    icdf_latency: np.ndarray
    icdf_fraction: np.ndarray
    mean_latency: float
    p99_latency: float
    max_latency: float


def run_fig7(
    base: NetworkConfig | None = None,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    include_reference: bool = True,
    victim_rate: float = 0.4,
    onset_fraction: float = 0.2,
    seed: int = 1,
    total_cycles: int | None = None,
) -> dict[str, Fig7Result]:
    if base is None:
        base = preset_by_name("tiny")
    sim = base.sim
    if total_cycles is None:
        total_cycles = sim.warmup_cycles + sim.measure_cycles
    total = total_cycles
    onset = sim.warmup_cycles + int(
        onset_fraction * (total - sim.warmup_cycles)
    )

    results: dict[str, Fig7Result] = {}
    runs = list(variants) + (["reference"] if include_reference else [])
    for name in runs:
        variant = "baseline" if name == "reference" else name
        spec = congestion_scenario(
            base,
            variant,
            traffic=(
                HotspotTraffic(
                    victim_rate=victim_rate,
                    aggressor_start=onset if name != "reference" else 10**9,
                ),
            ),
        ).with_seed(seed)
        net = build_network(spec)
        scenario = net.built_scenarios[0]
        victims = frozenset(scenario.victim_nodes)
        series = TimeSeries(period=max(1, sim.sample_period))

        def on_delivered(pkt, cycle, _victims=victims, _series=series):
            if pkt.src in _victims:
                _series.record(cycle, cycle - pkt.birth_cycle)

        net.on_packet_delivered_hooks.append(on_delivered)
        net.sim.run(sim.warmup_cycles)
        net.open_measurement()
        net.sim.run(total - sim.warmup_cycles)
        net.close_measurement()

        t, lat = series.series()
        stats = net.group_latency["victim"]
        x, frac = stats.inverse_cdf()
        results[name] = Fig7Result(
            time=t,
            avg_latency=lat,
            icdf_latency=x,
            icdf_fraction=frac,
            mean_latency=stats.mean,
            p99_latency=stats.percentile(99),
            max_latency=stats.max,
        )
    return results


def format_fig7(results: dict[str, Fig7Result]) -> str:
    lines = [
        "Figure 7 — victim response to congestion onset",
        "",
        f"{'variant':<11} {'mean lat':>9} {'p99 lat':>9} {'max lat':>9}",
    ]
    for name, res in results.items():
        lines.append(
            f"{name:<11} {res.mean_latency:>9.1f} {res.p99_latency:>9.1f} "
            f"{res.max_latency:>9.0f}"
        )
    lines.append("")
    lines.append("(a) victim avg latency over time:")
    from repro.analysis.ascii_chart import multi_series_chart

    series = {
        name: (res.time, res.avg_latency)
        for name, res in results.items()
        if res.time.size
    }
    if series:
        lines.append(multi_series_chart(series))
    lines.append("")
    lines.append("(b) victim inverse-cumulative latency distribution:")
    icdf = {
        name: (res.icdf_latency, res.icdf_fraction)
        for name, res in results.items()
        if res.icdf_latency.size
    }
    if icdf:
        lines.append(multi_series_chart(icdf))
    return "\n".join(lines)
