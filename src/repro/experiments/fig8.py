"""Figure 8: stash-buffer usage at a hotspot switch during a congestion
event.

Probes one switch attached to a hotspot destination while the Fig. 7
scenario plays out: the aggressor's offered (post-window) injection load
and the switch's stash-buffer utilization, sampled over time.

Expected shape (paper Section VI-B): at aggressor onset the offered load
shoots up and stash utilization follows; ECN feedback then throttles the
sources, utilization stays high through the transient, and once ECN
converges the stash drains to near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.config import NetworkConfig
from repro.experiments.common import preset_by_name
from repro.scenario import HotspotTraffic, congestion_scenario
from repro.scenario.spec import build_network

__all__ = ["Fig8Result", "format_fig8", "run_fig8"]


@dataclass
class Fig8Result:
    time: np.ndarray
    aggressor_load: np.ndarray  # flits/cycle injected by aggressor sources
    stash_utilization: np.ndarray  # fraction of hotspot-switch stash in use
    hotspot_switch: int
    peak_utilization: float


def run_fig8(
    base: NetworkConfig | None = None,
    variant: str = "stash100",
    victim_rate: float = 0.4,
    onset_fraction: float = 0.1,
    offset_fraction: float = 0.25,
    seed: int = 1,
    total_cycles: int | None = None,
) -> Fig8Result:
    """The aggressor event occupies [onset, offset) of the post-warmup
    window.  Because the aggressor is open-loop, its NIC backlog keeps
    the hotspot congested for ~(oversubscription - 1) times the event
    duration after it stops; the default fractions leave enough run time
    for the stash to drain back to near zero (the tail of the paper's
    Fig. 8)."""
    if base is None:
        base = preset_by_name("tiny")
    sim = base.sim
    if total_cycles is None:
        total_cycles = sim.warmup_cycles + sim.measure_cycles
    total = total_cycles
    onset = sim.warmup_cycles + int(onset_fraction * (total - sim.warmup_cycles))
    offset = sim.warmup_cycles + int(offset_fraction * (total - sim.warmup_cycles))

    spec = congestion_scenario(
        base,
        variant,
        traffic=(
            HotspotTraffic(
                victim_rate=victim_rate,
                aggressor_start=onset,
                aggressor_stop=offset,
            ),
        ),
    ).with_seed(seed)
    net = build_network(spec)
    scenario = net.built_scenarios[0]
    hotspot_node = scenario.hotspot_nodes[0]
    hotspot_switch = net.topology.node_switch(hotspot_node)  # type: ignore[attr-defined]
    aggr_eps = [net.endpoints[n] for n in scenario.aggressor_nodes]

    times: list[float] = []
    loads: list[float] = []
    utils: list[float] = []
    state = {"last_cycle": 0, "last_flits": 0}
    period = max(1, sim.sample_period)

    def probe(cycle: int) -> None:
        flits = sum(ep.flits_injected for ep in aggr_eps)
        dt = cycle - state["last_cycle"]
        if dt > 0:
            times.append(cycle)
            loads.append((flits - state["last_flits"]) / dt)
            utils.append(net.stash_utilization(hotspot_switch))
        state["last_cycle"] = cycle
        state["last_flits"] = flits

    net.sim.add_sampler(period, probe)
    net.sim.run(total)

    util_arr = np.asarray(utils)
    return Fig8Result(
        time=np.asarray(times, dtype=float),
        aggressor_load=np.asarray(loads),
        stash_utilization=util_arr,
        hotspot_switch=hotspot_switch,
        peak_utilization=float(util_arr.max()) if util_arr.size else 0.0,
    )


def format_fig8(result: Fig8Result) -> str:
    lines = [
        "Figure 8 — stash usage during a congestion event "
        f"(hotspot switch {result.hotspot_switch})",
        "",
        f"{'time':>8} {'aggr flits/cyc':>15} {'stash util':>11}",
    ]
    stride = max(1, len(result.time) // 24)
    for t, load, util in zip(
        result.time[::stride],
        result.aggressor_load[::stride],
        result.stash_utilization[::stride],
    ):
        bar = "#" * int(util * 40)
        lines.append(f"{int(t):>8} {load:>15.2f} {util:>11.3f} {bar}")
    lines.append(f"\npeak stash utilization: {result.peak_utilization:.3f}")
    return "\n".join(lines)
