"""Ablations of the stashing switch's design choices (DESIGN.md AB1/AB2)
plus the Little's-law cross-check of Section VI-A (A1).

* **speedup** — the paper adds a 1.3x internal overclock to cover the
  retrieval path's extra row-bus demand (Section III-A).  Sweep the
  speedup under reliability stashing at high load to show how much the
  margin buys.
* **placement** — join-shortest-queue stash placement vs uniform random
  (Section III-A's choice vs the naive alternative), measured by stash
  stall counts and latency at high load.
* **littles_law** — predicted vs simulated saturation for the
  capacity-restricted network.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.littles_law import (
    stash_limited_injection_rate,
    stash_per_endpoint_flits,
)
from repro.engine.config import NetworkConfig, ReliabilityParams
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.experiments.common import preset_by_name, reliability_network
from repro.network import Network

__all__ = [
    "format_ablations",
    "run_littles_law_check",
    "run_placement_ablation",
    "run_speedup_ablation",
]


def _with_seed(cfg: NetworkConfig, seed: int | None) -> NetworkConfig:
    if seed is None:
        return cfg
    return cfg.with_(sim=replace(cfg.sim, seed=seed))


def _reliability_net(
    base: NetworkConfig, seed: int | None = None, **stash_overrides
) -> Network:
    cfg = _with_seed(base, seed).with_(
        stash=replace(base.stash, enabled=True, **stash_overrides),
        reliability=ReliabilityParams(enabled=True),
    )
    return Network(cfg)


def _speedup_point(
    base: NetworkConfig, speedup: float, load: float, seed: int
) -> Timed:
    cfg = base.with_(switch=replace(base.switch, speedup=speedup))
    net = _reliability_net(cfg, seed=seed)
    net.add_uniform_traffic(rate=load)
    res = net.run_standard()
    return Timed((speedup, res.accepted_load, res.avg_latency), net.sim.cycle)


def run_speedup_ablation(
    base: NetworkConfig | None = None,
    speedups: tuple[float, ...] = (1.0, 1.15, 1.3, 1.5),
    load: float = 0.7,
    jobs: int = 1,
    progress=None,
) -> list[tuple[float, float, float]]:
    """Returns [(speedup, accepted load, avg latency)] with reliability
    stashing at full capacity."""
    if base is None:
        base = preset_by_name("tiny")
    specs = [
        RunSpec(
            key=("speedup", s),
            fn=_speedup_point,
            args=(base, s, load),
            seed=derive_run_seed(base.sim.seed, f"ablation:speedup:{s!r}"),
        )
        for s in speedups
    ]
    return [o.value for o in run_specs(specs, jobs=jobs, progress=progress)]


def _placement_point(
    base: NetworkConfig,
    placement: str,
    load: float,
    capacity_scale: float,
    seed: int,
) -> Timed:
    net = _reliability_net(
        base, seed=seed, capacity_scale=capacity_scale, placement=placement
    )
    net.add_uniform_traffic(rate=load)
    res = net.run_standard()
    stalls = sum(
        ip.stall_no_stash for sw in net.switches for ip in sw.in_ports
    )
    row = {
        "accepted": res.accepted_load,
        "avg_latency": res.avg_latency,
        "stash_stalls": float(stalls),
    }
    return Timed((placement, row), net.sim.cycle)


def run_placement_ablation(
    base: NetworkConfig | None = None,
    load: float = 0.7,
    capacity_scale: float = 0.5,
    jobs: int = 1,
    progress=None,
) -> dict[str, dict[str, float]]:
    """JSQ vs random stash placement under reliability at reduced
    capacity (where placement balance matters most)."""
    if base is None:
        base = preset_by_name("tiny")
    specs = [
        RunSpec(
            key=("placement", placement),
            fn=_placement_point,
            args=(base, placement, load, capacity_scale),
            seed=derive_run_seed(
                base.sim.seed, f"ablation:placement:{placement}"
            ),
        )
        for placement in ("jsq", "random")
    ]
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    return {o.value[0]: o.value[1] for o in outcomes}


def _littles_point(
    base: NetworkConfig, variant: str, load: float, seed: int
) -> Timed:
    net = reliability_network(base, variant, seed=seed)
    net.add_uniform_traffic(rate=load)
    res = net.run_standard()
    point = (load, res.offered_load, res.accepted_load, res.avg_latency)
    return Timed(point, net.sim.cycle)


def run_littles_law_check(
    base: NetworkConfig | None = None,
    capacity_scale: float = 0.25,
    loads: tuple[float, ...] = (0.2, 0.7),
    jobs: int = 1,
    progress=None,
) -> dict:
    """A1: compare the Little's-law saturation bound against the simulated
    accepted throughput of the capacity-restricted network.

    Following the paper's method (Section VI-A), the round trip is
    estimated as twice the average latency *before* saturation — at the
    highest load where the network still delivers what is offered — and
    the bound is stash flits per endpoint over that round trip.
    """
    if base is None:
        base = preset_by_name("tiny")
    cfg = base.with_(stash=replace(base.stash, enabled=True,
                                   capacity_scale=capacity_scale))
    per_ep = stash_per_endpoint_flits(cfg)
    variant = "stash25" if capacity_scale == 0.25 else "stash50"

    specs = [
        RunSpec(
            key=("littles", load),
            fn=_littles_point,
            args=(base, variant, load),
            seed=derive_run_seed(base.sim.seed, f"ablation:littles:{load!r}"),
        )
        for load in sorted(loads)
    ]
    outcomes = run_specs(specs, jobs=jobs, progress=progress)

    best_accepted = 0.0
    rtt_estimate = None
    for _load, offered, accepted, avg_latency in (o.value for o in outcomes):
        best_accepted = max(best_accepted, accepted)
        if accepted >= 0.9 * offered:
            rtt_estimate = 2.0 * avg_latency  # pre-saturation sample
    if rtt_estimate is None:
        raise RuntimeError(
            "no pre-saturation load point; add a lower load to the sweep"
        )
    predicted = stash_limited_injection_rate(per_ep, rtt_estimate)
    return {
        "stash_flits_per_endpoint": per_ep,
        "rtt_estimate_cycles": rtt_estimate,
        "predicted_saturation": predicted,
        "simulated_saturation": best_accepted,
    }


def format_ablations(
    speedup_rows: list[tuple[float, float, float]],
    placement: dict[str, dict[str, float]],
    littles: dict,
) -> str:
    lines = ["Ablations", "", "AB1 — internal speedup (reliability, high load):"]
    lines.append(f"{'speedup':>8} {'accepted':>9} {'avg lat':>8}")
    for s, acc, lat in speedup_rows:
        lines.append(f"{s:>8.2f} {acc:>9.3f} {lat:>8.1f}")
    lines.append("")
    lines.append("AB2 — stash placement policy (reduced capacity):")
    for policy, row in placement.items():
        lines.append(
            f"  {policy:<7} accepted={row['accepted']:.3f} "
            f"avg_lat={row['avg_latency']:.1f} stalls={row['stash_stalls']:.0f}"
        )
    lines.append("")
    lines.append(
        "A1 — Little's law: predicted saturation "
        f"{littles['predicted_saturation']:.2f} vs simulated "
        f"{littles['simulated_saturation']:.2f} "
        f"({littles['stash_flits_per_endpoint']:.0f} flits/endpoint, "
        f"RTT~{littles['rtt_estimate_cycles']:.0f} cyc)"
    )
    return "\n".join(lines)
