"""Ablations of the stashing switch's design choices (DESIGN.md AB1/AB2)
plus the Little's-law cross-check of Section VI-A (A1).

* **speedup** — the paper adds a 1.3x internal overclock to cover the
  retrieval path's extra row-bus demand (Section III-A).  Sweep the
  speedup under reliability stashing at high load to show how much the
  margin buys.
* **placement** — join-shortest-queue stash placement vs uniform random
  (Section III-A's choice vs the naive alternative), measured by stash
  stall counts and latency at high load.
* **littles_law** — predicted vs simulated saturation for the
  capacity-restricted network.

The speedup and placement sweeps express their stash overrides directly
in the config and run as plain-variant scenarios; they probe the switch
microarchitecture, so they are cycle-only.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.littles_law import (
    stash_limited_injection_rate,
    stash_per_endpoint_flits,
)
from repro.engine.config import NetworkConfig, ReliabilityParams
from repro.experiments.common import (
    SweepEntry,
    preset_by_name,
    run_sweep,
)
from repro.scenario import ScenarioSpec, UniformTraffic, reliability_scenario

__all__ = [
    "format_ablations",
    "run_littles_law_check",
    "run_placement_ablation",
    "run_speedup_ablation",
]


def _reliability_config(
    base: NetworkConfig, **stash_overrides
) -> NetworkConfig:
    """Reliability stashing with explicit stash parameter overrides,
    baked into the config (a plain-variant scenario carries it as-is)."""
    return base.with_(
        stash=replace(base.stash, enabled=True, **stash_overrides),
        reliability=ReliabilityParams(enabled=True),
    )


def run_speedup_ablation(
    base: NetworkConfig | None = None,
    speedups: tuple[float, ...] = (1.0, 1.15, 1.3, 1.5),
    load: float = 0.7,
    jobs: int = 1,
    progress=None,
) -> list[tuple[float, float, float]]:
    """Returns [(speedup, accepted load, avg latency)] with reliability
    stashing at full capacity."""
    if base is None:
        base = preset_by_name("tiny")
    entries = [
        SweepEntry(
            key=("speedup", s),
            label=f"ablation:speedup:{s!r}",
            spec=ScenarioSpec(
                config=_reliability_config(
                    base.with_(switch=replace(base.switch, speedup=s))
                ),
                traffic=(UniformTraffic(rate=load),),
            ),
        )
        for s in speedups
    ]
    outcomes = run_sweep(entries, seed=base.sim.seed, jobs=jobs,
                         progress=progress)
    return [
        (o.key[1], o.value.accepted_load, o.value.avg_latency)
        for o in outcomes
    ]


def run_placement_ablation(
    base: NetworkConfig | None = None,
    load: float = 0.7,
    capacity_scale: float = 0.5,
    jobs: int = 1,
    progress=None,
) -> dict[str, dict[str, float]]:
    """JSQ vs random stash placement under reliability at reduced
    capacity (where placement balance matters most)."""
    if base is None:
        base = preset_by_name("tiny")
    entries = [
        SweepEntry(
            key=("placement", placement),
            label=f"ablation:placement:{placement}",
            spec=ScenarioSpec(
                config=_reliability_config(
                    base, capacity_scale=capacity_scale, placement=placement
                ),
                traffic=(UniformTraffic(rate=load),),
            ),
        )
        for placement in ("jsq", "random")
    ]
    outcomes = run_sweep(entries, seed=base.sim.seed, jobs=jobs,
                         progress=progress)
    return {
        o.key[1]: {
            "accepted": o.value.accepted_load,
            "avg_latency": o.value.avg_latency,
            "stash_stalls": o.value.extra("stash_stalls"),
        }
        for o in outcomes
    }


def run_littles_law_check(
    base: NetworkConfig | None = None,
    capacity_scale: float = 0.25,
    loads: tuple[float, ...] = (0.2, 0.7),
    jobs: int = 1,
    progress=None,
) -> dict:
    """A1: compare the Little's-law saturation bound against the simulated
    accepted throughput of the capacity-restricted network.

    Following the paper's method (Section VI-A), the round trip is
    estimated as twice the average latency *before* saturation — at the
    highest load where the network still delivers what is offered — and
    the bound is stash flits per endpoint over that round trip.
    """
    if base is None:
        base = preset_by_name("tiny")
    cfg = base.with_(stash=replace(base.stash, enabled=True,
                                   capacity_scale=capacity_scale))
    per_ep = stash_per_endpoint_flits(cfg)
    variant = "stash25" if capacity_scale == 0.25 else "stash50"

    entries = [
        SweepEntry(
            key=("littles", load),
            label=f"ablation:littles:{load!r}",
            spec=reliability_scenario(
                base, variant, traffic=(UniformTraffic(rate=load),)
            ),
        )
        for load in sorted(loads)
    ]
    outcomes = run_sweep(entries, seed=base.sim.seed, jobs=jobs,
                         progress=progress)

    best_accepted = 0.0
    rtt_estimate = None
    for o in outcomes:
        r = o.value
        best_accepted = max(best_accepted, r.accepted_load)
        if r.accepted_load >= 0.9 * r.offered_load:
            rtt_estimate = 2.0 * r.avg_latency  # pre-saturation sample
    if rtt_estimate is None:
        raise RuntimeError(
            "no pre-saturation load point; add a lower load to the sweep"
        )
    predicted = stash_limited_injection_rate(per_ep, rtt_estimate)
    return {
        "stash_flits_per_endpoint": per_ep,
        "rtt_estimate_cycles": rtt_estimate,
        "predicted_saturation": predicted,
        "simulated_saturation": best_accepted,
    }


def format_ablations(
    speedup_rows: list[tuple[float, float, float]],
    placement: dict[str, dict[str, float]],
    littles: dict,
) -> str:
    lines = ["Ablations", "", "AB1 — internal speedup (reliability, high load):"]
    lines.append(f"{'speedup':>8} {'accepted':>9} {'avg lat':>8}")
    for s, acc, lat in speedup_rows:
        lines.append(f"{s:>8.2f} {acc:>9.3f} {lat:>8.1f}")
    lines.append("")
    lines.append("AB2 — stash placement policy (reduced capacity):")
    for policy, row in placement.items():
        lines.append(
            f"  {policy:<7} accepted={row['accepted']:.3f} "
            f"avg_lat={row['avg_latency']:.1f} stalls={row['stash_stalls']:.0f}"
        )
    lines.append("")
    lines.append(
        "A1 — Little's law: predicted saturation "
        f"{littles['predicted_saturation']:.2f} vs simulated "
        f"{littles['simulated_saturation']:.2f} "
        f"({littles['stash_flits_per_endpoint']:.0f} flits/endpoint, "
        f"RTT~{littles['rtt_estimate_cycles']:.0f} cyc)"
    )
    return "\n".join(lines)
