"""Fat-tree reliability experiment (paper Section IV-A: "similar designs
are feasible for other high-radix, asymmetric topologies such as
multi-level fat-trees").

Runs the Fig. 5-style comparison — baseline vs reliability-stashing at
full and quarter capacity — on a two-level leaf/spine fat-tree whose
leaf switches stash in their endpoint-port buffers (uplinks keep all
their buffering, like the dragonfly's global ports).

Runs on either engine; the flow fastpath models the tree's ECMP spine
choice as an even fluid split.
"""

from __future__ import annotations

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec
from repro.experiments.common import (
    SweepEntry,
    collect_by_variant,
    preset_by_name,
    run_sweep,
    sweep_specs,
)
from repro.scenario import (
    FatTreeTopologySpec,
    UniformTraffic,
    reliability_scenario,
)

__all__ = [
    "campaign_entries",
    "fattree_entries",
    "fattree_specs",
    "format_fattree",
    "run_fattree_reliability",
]

VARIANTS = {"baseline": None, "stash100": 1.0, "stash25": 0.25}


def fattree_entries(
    base: NetworkConfig,
    loads: tuple[float, ...] = (0.3, 0.7),
    variants: tuple[str, ...] = tuple(VARIANTS),
) -> list[SweepEntry]:
    """One scenario per (variant, load) on the default leaf/spine tree."""
    return [
        SweepEntry(
            key=(variant, load),
            label=f"fattree:{variant}:{load!r}",
            spec=reliability_scenario(
                base,
                variant,
                traffic=(UniformTraffic(rate=load),),
                topology=FatTreeTopologySpec(),
            ),
        )
        for variant in variants
        for load in loads
    ]


def campaign_entries(base: NetworkConfig, axes: dict) -> list[SweepEntry]:
    """Campaign-file binding (``sweep = "fattree"``; docs/CAMPAIGNS.md).

    Accepted ``[axes]`` keys: ``variants``, ``loads`` (floats; this
    sweep's variant set is ``baseline``/``stash100``/``stash25``).
    """
    known = {"variants", "loads"}
    unknown = sorted(set(axes) - known)
    if unknown:
        raise ValueError(
            f"fattree campaigns accept axes {sorted(known)}; unknown {unknown}"
        )
    return fattree_entries(
        base,
        loads=tuple(float(x) for x in axes.get("loads", (0.3, 0.7))),
        variants=tuple(axes.get("variants", tuple(VARIANTS))),
    )


def fattree_specs(
    base: NetworkConfig,
    loads: tuple[float, ...] = (0.3, 0.7),
    variants: tuple[str, ...] = tuple(VARIANTS),
    seed: int = 1,
    engine: str = "cycle",
) -> list[RunSpec]:
    """One executor spec per (variant, load) sweep point."""
    return sweep_specs(fattree_entries(base, loads, variants), seed, engine)


def run_fattree_reliability(
    base: NetworkConfig | None = None,
    loads: tuple[float, ...] = (0.3, 0.7),
    variants: tuple[str, ...] = tuple(VARIANTS),
    seed: int = 1,
    jobs: int = 1,
    engine: str = "cycle",
    progress=None,
) -> dict[str, list[tuple[float, float, float]]]:
    """Returns variant -> [(offered, accepted, avg_latency)]."""
    if base is None:
        base = preset_by_name("tiny")
    outcomes = run_sweep(
        fattree_entries(base, loads, variants),
        seed=seed, engine=engine, jobs=jobs, progress=progress,
    )
    return collect_by_variant(
        outcomes,
        variants,
        value=lambda r: (r.offered_load, r.accepted_load, r.avg_latency),
    )


def format_fattree(results: dict[str, list[tuple[float, float, float]]]) -> str:
    lines = [
        "Fat-tree reliability stashing (leaf/spine, Section IV-A claim)",
        "",
        f"{'variant':<10} {'offered':>8} {'accepted':>9} {'avg lat':>8}",
    ]
    for variant, series in results.items():
        for offered, accepted, lat in series:
            lines.append(
                f"{variant:<10} {offered:>8.3f} {accepted:>9.3f} {lat:>8.1f}"
            )
        lines.append("")
    return "\n".join(lines)
