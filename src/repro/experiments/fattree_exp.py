"""Fat-tree reliability experiment (paper Section IV-A: "similar designs
are feasible for other high-radix, asymmetric topologies such as
multi-level fat-trees").

Runs the Fig. 5-style comparison — baseline vs reliability-stashing at
full and quarter capacity — on a two-level leaf/spine fat-tree whose
leaf switches stash in their endpoint-port buffers (uplinks keep all
their buffering, like the dragonfly's global ports).
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine.config import NetworkConfig, ReliabilityParams, StashParams
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.engine.rng import DeterministicRng
from repro.experiments.common import preset_by_name
from repro.network import Network
from repro.routing.fattree_routing import FatTreeRouter
from repro.topology.fattree import FatTreeTopology

__all__ = ["fattree_specs", "format_fattree", "run_fattree_reliability"]

VARIANTS = {"baseline": None, "stash100": 1.0, "stash25": 0.25}


def _build(base: NetworkConfig, scale: float | None, seed: int) -> Network:
    cfg = base.with_(sim=replace(base.sim, seed=seed))
    if scale is None:
        cfg = cfg.with_(
            stash=StashParams(enabled=False),
            reliability=ReliabilityParams(enabled=False),
        )
    else:
        cfg = cfg.with_(
            stash=replace(base.stash, enabled=True, capacity_scale=scale),
            reliability=ReliabilityParams(enabled=True),
        )
    topo = FatTreeTopology(
        num_leaves=7,
        num_spines=2,
        p=3,
        num_ports=max(cfg.switch.num_ports, 9),
        latency_endpoint=cfg.dragonfly.latency_endpoint,
        latency_up=cfg.dragonfly.latency_global // 2,
    )
    if topo.num_ports != cfg.switch.num_ports:
        cfg = cfg.with_(switch=replace(cfg.switch, num_ports=topo.num_ports,
                                       rows=3, cols=3))
    router = FatTreeRouter(
        topo, DeterministicRng(cfg.sim.seed).stream("fattree-routing")
    )
    return Network(cfg, topology=topo, router=router)


def _fattree_point(
    base: NetworkConfig, variant: str, load: float, seed: int
) -> Timed:
    net = _build(base, VARIANTS[variant], seed)
    net.add_uniform_traffic(rate=load)
    res = net.run_standard()
    point = (res.offered_load, res.accepted_load, res.avg_latency)
    return Timed(point, net.sim.cycle)


def fattree_specs(
    base: NetworkConfig,
    loads: tuple[float, ...] = (0.3, 0.7),
    variants: tuple[str, ...] = tuple(VARIANTS),
    seed: int = 1,
) -> list[RunSpec]:
    """One spec per (variant, load) sweep point."""
    return [
        RunSpec(
            key=(variant, load),
            fn=_fattree_point,
            args=(base, variant, load),
            seed=derive_run_seed(seed, f"fattree:{variant}:{load!r}"),
        )
        for variant in variants
        for load in loads
    ]


def run_fattree_reliability(
    base: NetworkConfig | None = None,
    loads: tuple[float, ...] = (0.3, 0.7),
    variants: tuple[str, ...] = tuple(VARIANTS),
    seed: int = 1,
    jobs: int = 1,
    progress=None,
) -> dict[str, list[tuple[float, float, float]]]:
    """Returns variant -> [(offered, accepted, avg_latency)]."""
    if base is None:
        base = preset_by_name("tiny")
    specs = fattree_specs(base, loads, variants, seed)
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    results: dict[str, list[tuple[float, float, float]]] = {
        v: [] for v in variants
    }
    for outcome in outcomes:
        results[outcome.key[0]].append(outcome.value)
    return results


def format_fattree(results: dict[str, list[tuple[float, float, float]]]) -> str:
    lines = [
        "Fat-tree reliability stashing (leaf/spine, Section IV-A claim)",
        "",
        f"{'variant':<10} {'offered':>8} {'accepted':>9} {'avg lat':>8}",
    ]
    for variant, series in results.items():
        for offered, accepted, lat in series:
            lines.append(
                f"{variant:<10} {offered:>8.3f} {accepted:>9.3f} {lat:>8.1f}"
            )
        lines.append("")
    return "\n".join(lines)
