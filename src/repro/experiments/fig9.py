"""Figure 9: victim tail latency vs aggressor burstiness.

Half the endpoints run a 40 % uniform-random victim with single-packet
messages; the other half a maximum-rate uniform-random aggressor whose
message size sweeps from 1 to many packets.  Reported: the victim's 90th
percentile packet latency per network.

Expected shape (paper Section VI-B): the ECN baseline's tail latency
rises with burst size, peaks at intermediate bursts (congestion events
too short for ECN to react, long enough to hurt), then falls once bursts
are long enough for ECN's steady state; stashing networks stay flat and
below the baseline at every burst size.
"""

from __future__ import annotations

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec, Timed, derive_run_seed, run_specs
from repro.experiments.common import (
    CONGESTION_VARIANTS,
    congestion_network,
    preset_by_name,
)
from repro.traffic.aggressor import uniform_aggressor_scenario

__all__ = ["fig9_specs", "format_fig9", "run_fig9"]

DEFAULT_BURSTS_PKTS = (1, 2, 4, 8, 16, 32, 64)


def _fig9_point(
    base: NetworkConfig,
    variant: str,
    burst: int,
    victim_rate: float,
    percentile: float,
    seed: int,
) -> Timed:
    net = congestion_network(base, variant, seed=seed)
    uniform_aggressor_scenario(
        net,
        burst_flits=burst * base.switch.max_packet_flits,
        victim_rate=victim_rate,
    )
    net.sim.run(base.sim.warmup_cycles)
    net.open_measurement()
    net.sim.run(base.sim.measure_cycles)
    net.close_measurement()
    stats = net.group_latency["victim"]
    point = (burst, stats.percentile(percentile), net.result().accepted_load)
    return Timed(point, net.sim.cycle)


def fig9_specs(
    base: NetworkConfig,
    bursts_pkts: tuple[int, ...] = DEFAULT_BURSTS_PKTS,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    victim_rate: float = 0.4,
    percentile: float = 90.0,
    seed: int = 1,
) -> list[RunSpec]:
    """One spec per (variant, burst size) sweep point."""
    return [
        RunSpec(
            key=(variant, burst),
            fn=_fig9_point,
            args=(base, variant, burst, victim_rate, percentile),
            seed=derive_run_seed(seed, f"fig9:{variant}:{burst}"),
        )
        for variant in variants
        for burst in bursts_pkts
    ]


def run_fig9(
    base: NetworkConfig | None = None,
    bursts_pkts: tuple[int, ...] = DEFAULT_BURSTS_PKTS,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    victim_rate: float = 0.4,
    percentile: float = 90.0,
    seed: int = 1,
    jobs: int = 1,
    progress=None,
) -> dict[str, list[tuple[int, float, float]]]:
    """Returns variant -> [(burst_pkts, victim pXX latency, victim
    accepted load)] — the paper notes victim throughput holds at 40 %
    across the sweep while latency diverges."""
    if base is None:
        base = preset_by_name("tiny")
    specs = fig9_specs(
        base, bursts_pkts, variants, victim_rate, percentile, seed
    )
    outcomes = run_specs(specs, jobs=jobs, progress=progress)
    results: dict[str, list[tuple[int, float, float]]] = {
        v: [] for v in variants
    }
    for outcome in outcomes:
        results[outcome.key[0]].append(outcome.value)
    return results


def format_fig9(results: dict[str, list[tuple[int, float, float]]]) -> str:
    lines = [
        "Figure 9 — victim 90th-percentile latency vs aggressor burst size",
        "",
        f"{'variant':<10} {'burst(pkts)':>12} {'p90 latency':>12} {'accepted':>9}",
    ]
    for variant, series in results.items():
        for burst, p90, accepted in series:
            lines.append(
                f"{variant:<10} {burst:>12} {p90:>12.1f} {accepted:>9.3f}"
            )
        lines.append("")
    return "\n".join(lines)
