"""Figure 9: victim tail latency vs aggressor burstiness.

Half the endpoints run a 40 % uniform-random victim with single-packet
messages; the other half a maximum-rate uniform-random aggressor whose
message size sweeps from 1 to many packets.  Reported: the victim's 90th
percentile packet latency per network.

Expected shape (paper Section VI-B): the ECN baseline's tail latency
rises with burst size, peaks at intermediate bursts (congestion events
too short for ECN to react, long enough to hurt), then falls once bursts
are long enough for ECN's steady state; stashing networks stay flat and
below the baseline at every burst size.

Runs on either engine; the flow fastpath models the aggressors as
closed-loop fluid sources and reports trend-level tails only
(docs/FASTPATH.md).
"""

from __future__ import annotations

from repro.engine.config import NetworkConfig
from repro.engine.parallel import RunSpec
from repro.experiments.common import (
    CONGESTION_VARIANTS,
    SweepEntry,
    preset_by_name,
    run_sweep,
    sweep_specs,
)
from repro.scenario import UniformAggressorTraffic, congestion_scenario

__all__ = [
    "campaign_entries",
    "fig9_entries",
    "fig9_specs",
    "format_fig9",
    "run_fig9",
]

DEFAULT_BURSTS_PKTS = (1, 2, 4, 8, 16, 32, 64)


def fig9_entries(
    base: NetworkConfig,
    bursts_pkts: tuple[int, ...] = DEFAULT_BURSTS_PKTS,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    victim_rate: float = 0.4,
) -> list[SweepEntry]:
    """One scenario per (variant, burst size); fig9 measures without a
    drain phase (open victim + saturating aggressors never drain)."""
    return [
        SweepEntry(
            key=(variant, burst),
            label=f"fig9:{variant}:{burst}",
            spec=congestion_scenario(
                base,
                variant,
                traffic=(
                    UniformAggressorTraffic(
                        burst_flits=burst * base.switch.max_packet_flits,
                        victim_rate=victim_rate,
                    ),
                ),
                drain=False,
            ),
        )
        for variant in variants
        for burst in bursts_pkts
    ]


def campaign_entries(base: NetworkConfig, axes: dict) -> list[SweepEntry]:
    """Campaign-file binding (``sweep = "fig9"``; docs/CAMPAIGNS.md).

    Accepted ``[axes]`` keys: ``variants``, ``bursts_pkts``,
    ``victim_rate``.  Burst sizes are coerced to int (labels, and
    therefore derived seeds, must match the interactive runner's).
    """
    known = {"variants", "bursts_pkts", "victim_rate"}
    unknown = sorted(set(axes) - known)
    if unknown:
        raise ValueError(
            f"fig9 campaigns accept axes {sorted(known)}; unknown {unknown}"
        )
    return fig9_entries(
        base,
        bursts_pkts=tuple(
            int(x) for x in axes.get("bursts_pkts", DEFAULT_BURSTS_PKTS)
        ),
        variants=tuple(axes.get("variants", tuple(CONGESTION_VARIANTS))),
        victim_rate=float(axes.get("victim_rate", 0.4)),
    )


def fig9_specs(
    base: NetworkConfig,
    bursts_pkts: tuple[int, ...] = DEFAULT_BURSTS_PKTS,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    victim_rate: float = 0.4,
    seed: int = 1,
    engine: str = "cycle",
) -> list[RunSpec]:
    """One executor spec per (variant, burst size) sweep point."""
    return sweep_specs(
        fig9_entries(base, bursts_pkts, variants, victim_rate), seed, engine
    )


def run_fig9(
    base: NetworkConfig | None = None,
    bursts_pkts: tuple[int, ...] = DEFAULT_BURSTS_PKTS,
    variants: tuple[str, ...] = tuple(CONGESTION_VARIANTS),
    victim_rate: float = 0.4,
    percentile: float = 90.0,
    seed: int = 1,
    jobs: int = 1,
    engine: str = "cycle",
    progress=None,
) -> dict[str, list[tuple[int, float, float]]]:
    """Returns variant -> [(burst_pkts, victim pXX latency, victim
    accepted load)] — the paper notes victim throughput holds at 40 %
    across the sweep while latency diverges."""
    if base is None:
        base = preset_by_name("tiny")
    outcomes = run_sweep(
        fig9_entries(base, bursts_pkts, variants, victim_rate),
        seed=seed, engine=engine, jobs=jobs, progress=progress,
    )
    results: dict[str, list[tuple[int, float, float]]] = {
        v: [] for v in variants
    }
    for outcome in outcomes:
        variant, burst = outcome.key
        r = outcome.value
        results[variant].append(
            (burst, r.group("victim").percentile(percentile), r.accepted_load)
        )
    return results


def format_fig9(results: dict[str, list[tuple[int, float, float]]]) -> str:
    lines = [
        "Figure 9 — victim 90th-percentile latency vs aggressor burst size",
        "",
        f"{'variant':<10} {'burst(pkts)':>12} {'p90 latency':>12} {'accepted':>9}",
    ]
    for variant, series in results.items():
        for burst, p90, accepted in series:
            lines.append(
                f"{variant:<10} {burst:>12} {p90:>12.1f} {accepted:>9.3f}"
            )
        lines.append("")
    return "\n".join(lines)
