"""Experiment harness: one module per paper table/figure.

Every module exposes ``run_*`` returning plain data structures and a
``format_*`` pretty-printer producing the same rows/series the paper
reports.  ``python -m repro.experiments <name>`` (or the
``repro-experiments`` console script) drives them from the command line.

Experiment index (see DESIGN.md Section 4):

==========  ==========================================================
table1      Link asymmetry & buffer underutilization (Table I)
table2      DesignForward trace inventory (Table II)
fig5        Reliability stashing: latency & throughput vs offered load
fig6        Application-trace execution time, 6 apps x 4 networks
fig7        Congestion transient: victim latency over time + ICDF
fig8        Stash-buffer utilization during a congestion event
fig9        Victim tail latency vs aggressor burst size
ablation    Internal speedup & stash-placement ablations
==========  ==========================================================
"""

from repro.experiments.common import (
    CONGESTION_VARIANTS,
    RELIABILITY_VARIANTS,
    congestion_network,
    preset_by_name,
    reliability_network,
)

__all__ = [
    "CONGESTION_VARIANTS",
    "RELIABILITY_VARIANTS",
    "congestion_network",
    "preset_by_name",
    "reliability_network",
]
