"""Spatial traffic patterns: given a source node, pick a destination.

A pattern is a callable ``(src, rng) -> dst`` bound to a node universe.
Patterns never return the source itself.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

__all__ = ["bit_complement", "hotspot", "permutation", "uniform_random"]

Pattern = Callable[[int, random.Random], int]


def uniform_random(num_nodes: int) -> Pattern:
    """Every other node equally likely (the paper's benign pattern)."""
    if num_nodes < 2:
        raise ValueError("uniform traffic needs at least two nodes")

    def pick(src: int, rng: random.Random) -> int:
        dst = rng.randrange(num_nodes - 1)
        return dst if dst < src else dst + 1

    return pick


def permutation(mapping: Sequence[int]) -> Pattern:
    """A fixed permutation; self-mappings are rejected at build time."""
    for src, dst in enumerate(mapping):
        if src == dst:
            raise ValueError(f"permutation maps node {src} to itself")

    def pick(src: int, rng: random.Random) -> int:
        return mapping[src]

    return pick


def bit_complement(num_nodes: int) -> Pattern:
    """Node i sends to (N-1-i); adversarial for minimal dragonfly routing."""
    if num_nodes % 2:
        raise ValueError("bit complement needs an even node count")

    def pick(src: int, rng: random.Random) -> int:
        return num_nodes - 1 - src

    return pick


def hotspot(destinations: Sequence[int]) -> Pattern:
    """All traffic converges on a small destination set (uniformly
    among them) — the oversubscription pattern of the paper's Fig. 7."""
    dests = list(destinations)
    if not dests:
        raise ValueError("hotspot needs at least one destination")

    def pick(src: int, rng: random.Random) -> int:
        choices = [d for d in dests if d != src] or dests
        return choices[rng.randrange(len(choices))]

    return pick
