"""Synthetic traffic: injection processes, spatial patterns, and the
aggressor/victim scenarios of the paper's congestion study."""

from repro.traffic.generators import BernoulliSource, BurstSource
from repro.traffic.patterns import (
    bit_complement,
    hotspot,
    permutation,
    uniform_random,
)
from repro.traffic.aggressor import (
    AggressorScenario,
    hotspot_scenario,
    uniform_aggressor_scenario,
)

__all__ = [
    "AggressorScenario",
    "BernoulliSource",
    "BurstSource",
    "bit_complement",
    "hotspot",
    "hotspot_scenario",
    "permutation",
    "uniform_aggressor_scenario",
    "uniform_random",
]
