"""Injection processes.

``BernoulliSource`` posts fixed-size messages with a per-cycle
probability such that the average offered load equals ``rate`` flits per
cycle per node.  ``BurstSource`` is the Fig. 9 aggressor: it keeps a
bounded number of large messages outstanding, so burstiness scales with
the message size while average demand stays saturated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.traffic.patterns import Pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.endpoints.endpoint import Endpoint

__all__ = ["BernoulliSource", "BurstSource", "TrafficSource"]


class TrafficSource(Protocol):
    """Structural interface every injection process implements.

    ``Endpoint`` polls ``active``/``generate`` each cycle it runs and
    consults ``next_active_cycle`` when deciding whether it may sleep, so
    a source's schedule participates in the wake contract
    (docs/WAKE_CONTRACT.md): the answer must be a pure function of the
    source's current state.
    """

    def active(self, cycle: int) -> bool:
        """True when the source may inject at ``cycle``."""
        ...

    def next_active_cycle(self, cycle: int) -> int | None:
        """Earliest cycle > ``cycle`` with work, or None to idle."""
        ...

    def generate(self, endpoint: "Endpoint", cycle: int) -> None:
        """Inject this cycle's traffic into ``endpoint``."""
        ...


class BernoulliSource:
    """Open-loop Bernoulli message injection."""

    def __init__(
        self,
        rate: float,
        msg_flits: int,
        pattern: Pattern,
        start: int = 0,
        stop: int | None = None,
        tag: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1] flits/cycle/node")
        if msg_flits < 1:
            raise ValueError("messages need at least one flit")
        self.rate = rate
        self.msg_flits = msg_flits
        self.pattern = pattern
        self.start = start
        self.stop = stop
        self.tag = tag
        self.prob = rate / msg_flits

    def active(self, cycle: int) -> bool:
        return cycle >= self.start and (self.stop is None or cycle < self.stop)

    def next_active_cycle(self, cycle: int) -> int | None:
        """Wake-list contract: Bernoulli draws consume one RNG sample on
        every active cycle, so the endpoint may never sleep through the
        active window; outside it, sleep until ``start`` (or forever)."""
        if self.prob <= 0.0:
            return None
        nxt = cycle + 1
        if nxt < self.start:
            return self.start
        if self.stop is not None and nxt >= self.stop:
            return None
        return nxt

    def generate(self, endpoint: "Endpoint", cycle: int) -> None:
        if not self.active(cycle) or self.prob <= 0.0:
            return
        if endpoint.rng.random() < self.prob:
            dst = self.pattern(endpoint.node, endpoint.rng)
            endpoint.post_message(dst, self.msg_flits, cycle, tag=self.tag)


class BurstSource:
    """Closed-loop saturating source with configurable burst size.

    Keeps up to ``outstanding`` messages of ``msg_flits`` flits queued at
    the NIC; a new message is posted whenever the NIC backlog falls below
    that bound.  Larger ``msg_flits`` with the same aggregate demand
    produces burstier arrivals at each destination, reproducing the
    paper's Fig. 9 sweep ("1 to 512 packets per message").
    """

    def __init__(
        self,
        msg_flits: int,
        pattern: Pattern,
        outstanding: int = 2,
        start: int = 0,
        stop: int | None = None,
        tag: int = 0,
    ) -> None:
        if msg_flits < 1 or outstanding < 1:
            raise ValueError("msg_flits and outstanding must be positive")
        self.msg_flits = msg_flits
        self.pattern = pattern
        self.outstanding = outstanding
        self.start = start
        self.stop = stop
        self.tag = tag

    def active(self, cycle: int) -> bool:
        return cycle >= self.start and (self.stop is None or cycle < self.stop)

    def next_active_cycle(self, cycle: int) -> int | None:
        """Wake-list contract: a closed-loop source refills the NIC
        backlog on any active cycle, so it keeps the endpoint awake for
        the whole active window."""
        nxt = cycle + 1
        if nxt < self.start:
            return self.start
        if self.stop is not None and nxt >= self.stop:
            return None
        return nxt

    def generate(self, endpoint: "Endpoint", cycle: int) -> None:
        if not self.active(cycle):
            return
        while endpoint.backlog_flits < self.outstanding * self.msg_flits:
            dst = self.pattern(endpoint.node, endpoint.rng)
            endpoint.post_message(dst, self.msg_flits, cycle, tag=self.tag)
