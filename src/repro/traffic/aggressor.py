"""Aggressor/victim scenario builders for the congestion experiments.

The paper's first congestion experiment (Fig. 7/8): a uniform-random
victim at 40 % load on most endpoints, plus 48 aggressor sources sending
at maximum rate to 12 destinations — a dozen 4:1 oversubscribed hotspots.
The second (Fig. 9): victim on half the endpoints, an aggressor running
uniform-random at maximum rate on the other half, with message size swept
to control burstiness.

These builders scale the counts to any network size while preserving the
oversubscription ratio and the victim/aggressor split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network import Network
from repro.traffic.generators import BernoulliSource, BurstSource
from repro.traffic.patterns import hotspot, uniform_random

__all__ = ["AggressorScenario", "hotspot_scenario", "uniform_aggressor_scenario"]

VICTIM_TAG = 1
AGGRESSOR_TAG = 2


@dataclass(frozen=True)
class AggressorScenario:
    """Node partition of one congestion experiment."""

    victim_nodes: tuple[int, ...]
    aggressor_nodes: tuple[int, ...]
    hotspot_nodes: tuple[int, ...]

    @property
    def num_victims(self) -> int:
        return len(self.victim_nodes)


def hotspot_scenario(
    net: Network,
    victim_rate: float = 0.4,
    oversubscription: int = 4,
    num_hotspots: int | None = None,
    aggressor_start: int = 0,
    aggressor_stop: int | None = None,
    victim_msg_flits: int | None = None,
) -> AggressorScenario:
    """Fig. 7: hotspot aggressors over a uniform-random victim.

    ``oversubscription`` aggressor sources feed each hotspot destination
    at maximum rate.  Hotspot destinations and aggressor sources are
    taken from the tail of the node range; everyone else runs the victim.
    The paper's 3080-node run used 12 hotspots x 4 sources; the default
    here scales the hotspot count to ~0.4 % of nodes (>= 1).
    """
    total = net.topology.num_nodes
    if num_hotspots is None:
        num_hotspots = max(1, round(total * 12 / 3080))
    n_aggr = num_hotspots * oversubscription
    if n_aggr + num_hotspots >= total:
        raise ValueError("network too small for this hotspot configuration")

    hotspot_nodes = tuple(range(total - num_hotspots, total))
    aggressor_nodes = tuple(range(total - num_hotspots - n_aggr, total - num_hotspots))
    victim_nodes = tuple(range(total - num_hotspots - n_aggr))

    if victim_msg_flits is None:
        victim_msg_flits = net.config.switch.max_packet_flits
    msg = victim_msg_flits
    victim = BernoulliSource(
        rate=victim_rate,
        msg_flits=msg,
        pattern=uniform_random(total),
        tag=VICTIM_TAG,
    )
    aggressor = BernoulliSource(
        rate=1.0,
        msg_flits=msg,
        pattern=hotspot(hotspot_nodes),
        start=aggressor_start,
        stop=aggressor_stop,
        tag=AGGRESSOR_TAG,
    )
    net.add_source(victim, victim_nodes)
    net.add_source(aggressor, aggressor_nodes)
    net.track_group("victim", victim_nodes)
    net.track_group("aggressor", aggressor_nodes)
    return AggressorScenario(victim_nodes, aggressor_nodes, hotspot_nodes)


def uniform_aggressor_scenario(
    net: Network,
    burst_flits: int,
    victim_rate: float = 0.4,
    victim_msg_flits: int | None = None,
) -> AggressorScenario:
    """Fig. 9: half the endpoints run the victim (uniform random at 40 %,
    single-packet messages), the other half a maximum-rate uniform-random
    aggressor with ``burst_flits``-flit messages."""
    total = net.topology.num_nodes
    half = total // 2
    victim_nodes = tuple(range(half))
    aggressor_nodes = tuple(range(half, total))

    if victim_msg_flits is None:
        victim_msg_flits = net.config.switch.max_packet_flits
    msg = victim_msg_flits
    victim = BernoulliSource(
        rate=victim_rate,
        msg_flits=msg,
        pattern=uniform_random(total),
        tag=VICTIM_TAG,
    )
    aggressor = BurstSource(
        msg_flits=burst_flits,
        pattern=uniform_random(total),
        outstanding=2,
        tag=AGGRESSOR_TAG,
    )
    net.add_source(victim, victim_nodes)
    net.add_source(aggressor, aggressor_nodes)
    net.track_group("victim", victim_nodes)
    net.track_group("aggressor", aggressor_nodes)
    return AggressorScenario(victim_nodes, aggressor_nodes, ())
