"""repro — reproduction of "Exploiting Idle Resources in a High-Radix
Switch for Supplemental Storage" (Blumrich, Jiang, Dennison; SC 2018).

A cycle-level, flit-granularity network simulator in pure Python
implementing the paper's baseline tiled switch, the stashing switch
architecture (pooled idle port buffers reached over excess internal
bandwidth via storage/retrieval VCs), and its two use cases: end-to-end
reliability at the first-hop switch and ECN congestion-control
enhancement.

Quick start::

    from repro import Network, tiny_preset

    net = Network(tiny_preset())
    net.add_uniform_traffic(rate=0.3)
    result = net.run_standard()
    print(result.avg_latency, result.accepted_load)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.engine.config import (
    DragonflyParams,
    EcnParams,
    NetworkConfig,
    OrderingParams,
    ReliabilityParams,
    SimParams,
    StashParams,
    SwitchParams,
    paper_preset,
    small_preset,
    tiny_preset,
)
from repro.network import Network, RunResult
from repro.switch.flit import Message, Packet, PacketKind
from repro.switch.stashing_switch import StashingSwitch
from repro.switch.tiled_switch import TiledSwitch
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.single_switch import SingleSwitchTopology

__version__ = "1.0.0"

__all__ = [
    "DragonflyParams",
    "DragonflyTopology",
    "EcnParams",
    "FatTreeTopology",
    "Message",
    "Network",
    "NetworkConfig",
    "OrderingParams",
    "Packet",
    "PacketKind",
    "ReliabilityParams",
    "RunResult",
    "SimParams",
    "SingleSwitchTopology",
    "StashParams",
    "StashingSwitch",
    "SwitchParams",
    "TiledSwitch",
    "__version__",
    "paper_preset",
    "small_preset",
    "tiny_preset",
]
