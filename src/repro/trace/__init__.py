"""MPI trace replay (the SST/Macro substitute) and synthetic
DesignForward-style application kernels (paper Table II).

The paper replays DOE DesignForward MPI traces through SST/Macro with
BookSim as the network layer, one rank per endpoint and no computation
time.  We reproduce that pipeline with:

* :mod:`repro.trace.mpi` — a per-rank MPI op list (send / recv) with
  collectives lowered to point-to-point at build time;
* :mod:`repro.trace.apps` — generators reproducing each traced
  application's communication pattern at any rank count;
* :mod:`repro.trace.replay` — a dependency-respecting replay engine
  driving the cycle-level network.
"""

from repro.trace.mpi import (
    MpiProgram,
    all_to_all,
    allreduce,
    barrier,
    op_recv,
    op_send,
)
from repro.trace.apps import APP_REGISTRY, AppSpec, build_app
from repro.trace.replay import MpiReplay, run_trace
from repro.trace.trace_format import (
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)

__all__ = [
    "APP_REGISTRY",
    "AppSpec",
    "MpiProgram",
    "MpiReplay",
    "all_to_all",
    "allreduce",
    "barrier",
    "build_app",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "op_recv",
    "op_send",
    "run_trace",
]
