"""A miniature MPI layer for trace replay.

A program is one op list per rank, executed in order: ``send`` ops post a
message and complete immediately (eager semantics; the NIC's queue pairs
pace the wire), ``recv`` ops block until a matching message has fully
arrived.  Matching is by (source rank, tag) in arrival order, which is
sufficient for the deterministic kernels we generate.

Collectives are lowered to point-to-point at build time, the same way
coarse-grained simulators (SST/Macro) lower them before handing traffic
to the network layer:

* ``allreduce`` / ``barrier`` — recursive doubling (power-of-two ranks)
  with a fold-in step for the remainder;
* ``all_to_all`` — linearly shifted pairwise exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MpiProgram",
    "OP_RECV",
    "OP_SEND",
    "all_to_all",
    "allreduce",
    "barrier",
    "op_recv",
    "op_send",
]

OP_SEND = 0
OP_RECV = 1


def op_send(dst: int, size_flits: int, tag: int = 0) -> tuple:
    """A send op: (OP_SEND, destination rank, flits, tag)."""
    if size_flits < 1:
        raise ValueError("send size must be at least one flit")
    return (OP_SEND, dst, size_flits, tag)


def op_recv(src: int, tag: int = 0) -> tuple:
    """A recv op: (OP_RECV, source rank, tag)."""
    return (OP_RECV, src, tag)


@dataclass
class MpiProgram:
    """Per-rank op lists plus naming metadata."""

    name: str
    num_ranks: int
    ops: list[list[tuple]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.ops:
            self.ops = [[] for _ in range(self.num_ranks)]
        if len(self.ops) != self.num_ranks:
            raise ValueError("one op list required per rank")

    def rank(self, r: int) -> list[tuple]:
        return self.ops[r]

    def add_send(self, src: int, dst: int, size_flits: int, tag: int = 0) -> None:
        if src == dst:
            return  # local copies never hit the network
        self.ops[src].append(op_send(dst, size_flits, tag))
        self.ops[dst].append(op_recv(src, tag))

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.ops)

    @property
    def total_send_flits(self) -> int:
        return sum(
            op[2] for ops in self.ops for op in ops if op[0] == OP_SEND
        )

    def validate(self) -> None:
        """Every send must have a matching recv (same src, dst, tag,
        count).  Raises on mismatch — a malformed trace would otherwise
        hang the replay."""
        sends: dict[tuple[int, int, int], int] = {}
        recvs: dict[tuple[int, int, int], int] = {}
        for rank, ops in enumerate(self.ops):
            for op in ops:
                if op[0] == OP_SEND:
                    key = (rank, op[1], op[3])
                    sends[key] = sends.get(key, 0) + 1
                else:
                    key = (op[1], rank, op[2])
                    recvs[key] = recvs.get(key, 0) + 1
        if sends != recvs:
            missing = {
                k: (sends.get(k, 0), recvs.get(k, 0))
                for k in sorted(set(sends) | set(recvs))
                if sends.get(k, 0) != recvs.get(k, 0)
            }
            raise ValueError(f"unmatched sends/recvs: {missing}")


# ---------------------------------------------------------------------------
# collectives (lowered to point-to-point)
# ---------------------------------------------------------------------------


def _fold_groups(n: int) -> tuple[int, int]:
    """Largest power of two <= n, and the remainder folded into it."""
    p = 1
    while p * 2 <= n:
        p *= 2
    return p, n - p


def allreduce(
    prog: MpiProgram, ranks: list[int], size_flits: int, tag_base: int
) -> int:
    """Recursive-doubling allreduce among ``ranks``.  Returns the next
    free tag.  Non-power-of-two counts fold the excess ranks into the
    power-of-two core first and broadcast back afterwards."""
    n = len(ranks)
    if n < 2:
        return tag_base
    p, rem = _fold_groups(n)
    tag = tag_base
    # fold-in: extras send their contribution to a core partner
    for i in range(rem):
        prog.add_send(ranks[p + i], ranks[i], size_flits, tag)
    tag += 1
    # recursive doubling among the p core ranks
    dist = 1
    while dist < p:
        for i in range(p):
            partner = i ^ dist
            if partner < p:
                prog.add_send(ranks[i], ranks[partner], size_flits, tag)
        tag += 1
        dist *= 2
    # fold-out: core partners return the result to the extras
    for i in range(rem):
        prog.add_send(ranks[i], ranks[p + i], size_flits, tag)
    return tag + 1


def barrier(prog: MpiProgram, ranks: list[int], tag_base: int) -> int:
    """A barrier is a one-flit allreduce."""
    return allreduce(prog, ranks, 1, tag_base)


def all_to_all(
    prog: MpiProgram, ranks: list[int], size_flits: int, tag_base: int
) -> int:
    """Linearly shifted pairwise exchange: phase k pairs rank i with
    rank (i + k) mod n."""
    n = len(ranks)
    if n < 2:
        return tag_base
    tag = tag_base
    for k in range(1, n):
        for i in range(n):
            prog.add_send(ranks[i], ranks[(i + k) % n], size_flits, tag)
        tag += 1
    return tag
