"""Dependency-respecting MPI trace replay over the cycle-level network.

Each rank executes its op list in order: sends post messages through the
endpoint's queue pairs (eager), recvs block until the matching message's
last packet has ejected at the destination.  Computation time is not
modelled, matching the paper's Fig. 6 methodology ("we did not model
computation time in order to focus on the communication aspects").

Ranks map to endpoints contiguously by default, also per the paper
("application ranks are mapped to endpoints in the system contiguously
without gaps").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.trace.mpi import OP_SEND, MpiProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.network import Network
    from repro.switch.flit import Message

__all__ = ["MpiReplay", "run_trace"]


class MpiReplay:
    """Drives one :class:`MpiProgram` through a :class:`Network`.

    Register with the simulator *before* running; ``finished`` flips when
    every rank has retired its op list and every posted message has been
    delivered.
    """

    def __init__(
        self,
        net: "Network",
        program: MpiProgram,
        rank_to_node: list[int] | None = None,
    ) -> None:
        if program.num_ranks > net.topology.num_nodes:
            raise ValueError(
                f"{program.num_ranks} ranks exceed {net.topology.num_nodes} nodes"
            )
        program.validate()
        self.net = net
        self.program = program
        if rank_to_node is None:
            rank_to_node = list(range(program.num_ranks))
        self.rank_to_node = rank_to_node
        if len(set(self.rank_to_node)) != program.num_ranks:
            raise ValueError("rank mapping must be injective")
        self._node_to_rank = {n: r for r, n in enumerate(self.rank_to_node)}

        self._pc = [0] * program.num_ranks  # per-rank program counter
        # unconsumed arrivals per (dst_rank, src_rank, tag)
        self._arrived: dict[tuple[int, int, int], int] = {}
        # ranks whose current op might now be runnable
        self._runnable: deque[int] = deque(range(program.num_ranks))
        self._runnable_set = set(range(program.num_ranks))
        self._outstanding_msgs = 0
        self.finish_cycle: int | None = None
        self.sends_posted = 0
        self.recvs_completed = 0

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def step(self, cycle: int) -> None:
        if self.finished or not self._runnable:
            self._check_done(cycle)
            return
        # retire as many ops as possible this cycle; recvs that cannot
        # match park their rank until a new arrival wakes it
        budget = len(self._runnable)
        for _ in range(budget):
            rank = self._runnable.popleft()
            self._runnable_set.discard(rank)
            self._run_rank(rank, cycle)
        self._check_done(cycle)

    def _run_rank(self, rank: int, cycle: int) -> None:
        ops = self.program.ops[rank]
        pc = self._pc[rank]
        while pc < len(ops):
            op = ops[pc]
            if op[0] == OP_SEND:
                _, dst, size, tag = op
                self._post_send(rank, dst, size, tag, cycle)
                pc += 1
                continue
            _, src, tag = op
            key = (rank, src, tag)
            have = self._arrived.get(key, 0)
            if have > 0:
                self._arrived[key] = have - 1
                self.recvs_completed += 1
                pc += 1
                continue
            break  # blocked on this recv
        self._pc[rank] = pc

    def _post_send(self, rank: int, dst: int, size: int, tag: int, cycle: int) -> None:
        src_node = self.rank_to_node[rank]
        dst_node = self.rank_to_node[dst]
        endpoint = self.net.endpoints[src_node]
        self._outstanding_msgs += 1
        self.sends_posted += 1
        endpoint.post_message(
            dst_node, size, cycle, tag=tag, on_complete=self._on_message
        )

    def _on_message(self, msg: "Message", cycle: int) -> None:
        self._outstanding_msgs -= 1
        dst_rank = self._node_to_rank[msg.dst]
        src_rank = self._node_to_rank[msg.src]
        key = (dst_rank, src_rank, msg.tag)
        self._arrived[key] = self._arrived.get(key, 0) + 1
        if dst_rank not in self._runnable_set:
            self._runnable_set.add(dst_rank)
            self._runnable.append(dst_rank)

    def _check_done(self, cycle: int) -> None:
        if self.finished:
            return
        if self._outstanding_msgs:
            return
        if any(self._pc[r] < len(self.program.ops[r]) for r in range(
            self.program.num_ranks
        )):
            return
        self.finish_cycle = cycle


def run_trace(
    net: "Network",
    program: MpiProgram,
    max_cycles: int = 2_000_000,
    rank_to_node: list[int] | None = None,
) -> int:
    """Replay ``program`` on ``net`` and return its execution time in
    cycles (the paper's Fig. 6 metric).  Raises if the trace does not
    complete within ``max_cycles`` — a symptom of a deadlocked trace or
    an undersized budget."""
    replay = MpiReplay(net, program, rank_to_node)
    net.sim.add(replay)
    done = net.sim.run_until(lambda: replay.finished, max_cycles)
    if not done:
        raise RuntimeError(
            f"trace {program.name} incomplete after {max_cycles} cycles "
            f"(pcs={replay._pc[:8]}..., outstanding={replay._outstanding_msgs})"
        )
    assert replay.finish_cycle is not None
    return replay.finish_cycle
