"""Synthetic DesignForward-style application kernels (paper Table II).

The actual DOE traces are not redistributable, so each generator below
reproduces the *communication structure* the trace documentation and the
paper describe, parameterized by rank count.  What the paper's Fig. 6
conclusions rest on is the load class of each app:

* **BIGFFT** — 3D FFT with 2D domain decomposition: all-to-alls along
  the rows and columns of a process grid; bandwidth-bound (large
  messages, all ranks bursting together).
* **FillBoundary** — halo update from a production PDE solver: 3D
  nearest-neighbour exchange with large faces; bandwidth-bound.
* **AMG** — algebraic multigrid V-cycles: neighbour exchanges that
  shrink with depth plus small allreduces; light average load.
* **MultiGrid** — geometric multigrid V-cycle: like AMG with a regular
  stencil; light.
* **AMR** — full adaptive-mesh-refinement V-cycle: multigrid plus a
  regrid scatter/gather phase; light-to-moderate.
* **MiniFE** — finite-element mini-app: halo exchange plus dot-product
  allreduces per CG iteration; light.

Message sizes are expressed in flits and chosen so that the two
bandwidth-bound apps approach link saturation while the others stay
light, preserving the paper's contrast at any network scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.trace.mpi import MpiProgram, all_to_all, allreduce

__all__ = ["APP_REGISTRY", "AppSpec", "build_app"]


@dataclass(frozen=True)
class AppSpec:
    """Table II row: name, description, and the program builder."""

    name: str
    description: str
    load_class: str  # "bandwidth" | "light"
    builder: Callable[[int, int, int], MpiProgram]


def _grid_2d(n: int) -> tuple[int, int]:
    """Most-square 2D factorization of n."""
    best = (1, n)
    for a in range(1, int(math.isqrt(n)) + 1):
        if n % a == 0:
            best = (a, n // a)
    return best


def _grid_3d(n: int) -> tuple[int, int, int]:
    """Most-cubic 3D factorization of n."""
    best = (1, 1, n)
    best_score = n
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        b, c = _grid_2d(n // a)
        dims = tuple(sorted((a, b, c)))
        score = dims[2] - dims[0]
        if score < best_score:
            best_score = score
            best = dims  # type: ignore[assignment]
    return best  # type: ignore[return-value]


def _neighbors_3d(rank: int, dims: tuple[int, int, int]) -> list[int]:
    """Face neighbours on a periodic 3D torus of ranks."""
    dx, dy, dz = dims
    x, y, z = rank % dx, (rank // dx) % dy, rank // (dx * dy)
    out = []
    for axis, size in ((0, dx), (1, dy), (2, dz)):
        if size < 2:
            continue
        for step in (-1, 1):
            nx, ny, nz = x, y, z
            if axis == 0:
                nx = (x + step) % dx
            elif axis == 1:
                ny = (y + step) % dy
            else:
                nz = (z + step) % dz
            peer = nx + dx * (ny + dy * nz)
            if peer != rank and peer not in out:
                out.append(peer)
    return out


def _halo_exchange(
    prog: MpiProgram, dims: tuple[int, int, int], size_flits: int, tag: int
) -> int:
    for rank in range(prog.num_ranks):
        for peer in _neighbors_3d(rank, dims):
            prog.add_send(rank, peer, size_flits, tag)
    return tag + 1


# ---------------------------------------------------------------------------
# application builders: (ranks, size_scale, iterations) -> MpiProgram
# ---------------------------------------------------------------------------


def bigfft(ranks: int, size_scale: int = 8, iterations: int = 2) -> MpiProgram:
    """3D FFT, 2D decomposition: row all-to-all, column all-to-all."""
    prog = MpiProgram("BIGFFT", ranks)
    rows, cols = _grid_2d(ranks)
    msg = max(1, size_scale * 8)  # large transposed pencils
    tag = 0
    for _ in range(iterations):
        for r in range(rows):
            tag = all_to_all(prog, [r * cols + c for c in range(cols)], msg, tag)
        for c in range(cols):
            tag = all_to_all(prog, [r * cols + c for r in range(rows)], msg, tag)
    return prog


def fill_boundary(ranks: int, size_scale: int = 8, iterations: int = 4) -> MpiProgram:
    """Halo update with production-size faces (BoxLib FillBoundary)."""
    prog = MpiProgram("FillBoundary", ranks)
    dims = _grid_3d(ranks)
    msg = max(1, size_scale * 12)
    tag = 0
    for _ in range(iterations):
        tag = _halo_exchange(prog, dims, msg, tag)
    return prog


def amg(ranks: int, size_scale: int = 8, iterations: int = 2) -> MpiProgram:
    """Algebraic multigrid V-cycle: shrinking halos + small allreduces."""
    prog = MpiProgram("AMG", ranks)
    dims = _grid_3d(ranks)
    tag = 0
    levels = max(2, int(math.log2(max(2, min(dims)))) + 2)
    for _ in range(iterations):
        # down-sweep: halo size shrinks with each coarsening level
        for lvl in range(levels):
            msg = max(1, (size_scale * 4) >> lvl)
            tag = _halo_exchange(prog, dims, msg, tag)
        tag = allreduce(prog, list(range(ranks)), 1, tag)
        # up-sweep
        for lvl in reversed(range(levels)):
            msg = max(1, (size_scale * 4) >> lvl)
            tag = _halo_exchange(prog, dims, msg, tag)
        tag = allreduce(prog, list(range(ranks)), 1, tag)
    return prog


def multigrid(ranks: int, size_scale: int = 8, iterations: int = 2) -> MpiProgram:
    """Geometric multigrid V-cycle (BoxLib elliptic solver)."""
    prog = MpiProgram("MultiGrid", ranks)
    dims = _grid_3d(ranks)
    tag = 0
    levels = max(2, int(math.log2(max(2, min(dims)))) + 1)
    for _ in range(iterations):
        for lvl in range(levels):
            msg = max(1, (size_scale * 3) >> lvl)
            tag = _halo_exchange(prog, dims, msg, tag)
        tag = allreduce(prog, list(range(ranks)), 1, tag)
        for lvl in reversed(range(levels)):
            msg = max(1, (size_scale * 3) >> lvl)
            tag = _halo_exchange(prog, dims, msg, tag)
    return prog


def amr(ranks: int, size_scale: int = 8, iterations: int = 2) -> MpiProgram:
    """AMR V-cycle (BoxLib/Castro): multigrid plus a regrid phase where
    fine ranks scatter/gather patches with coarse 'parent' ranks."""
    prog = MpiProgram("AMR", ranks)
    dims = _grid_3d(ranks)
    tag = 0
    parents = max(1, ranks // 8)
    for it in range(iterations):
        for lvl in range(3):
            msg = max(1, (size_scale * 4) >> lvl)
            tag = _halo_exchange(prog, dims, msg, tag)
        # regrid: every rank ships its patch metadata to a parent and
        # receives the new distribution back
        regrid_msg = max(1, size_scale * 2)
        for rank in range(ranks):
            parent = rank % parents
            if parent != rank:
                prog.add_send(rank, parent, regrid_msg, tag)
        tag += 1
        for rank in range(ranks):
            parent = rank % parents
            if parent != rank:
                prog.add_send(parent, rank, regrid_msg, tag)
        tag += 1
        tag = allreduce(prog, list(range(ranks)), 1, tag)
    return prog


def minife(ranks: int, size_scale: int = 8, iterations: int = 4) -> MpiProgram:
    """MiniFE: CG iterations of halo exchange + two dot-product
    allreduces."""
    prog = MpiProgram("MiniFE", ranks)
    dims = _grid_3d(ranks)
    msg = max(1, size_scale * 4)
    tag = 0
    for _ in range(iterations):
        tag = _halo_exchange(prog, dims, msg, tag)
        tag = allreduce(prog, list(range(ranks)), 1, tag)
        tag = allreduce(prog, list(range(ranks)), 1, tag)
    return prog


APP_REGISTRY: dict[str, AppSpec] = {
    "BIGFFT": AppSpec(
        "BIGFFT",
        "3D FFT with 2D domain decomposition pattern, medium problem size",
        "bandwidth",
        bigfft,
    ),
    "FillBoundary": AppSpec(
        "FillBoundary",
        "Halo update from production PDE solver code (BoxLib)",
        "bandwidth",
        fill_boundary,
    ),
    "AMG": AppSpec(
        "AMG",
        "Algebraic multigrid solver for unstructured mesh physics packages",
        "light",
        amg,
    ),
    "MultiGrid": AppSpec(
        "MultiGrid",
        "Geometric multigrid V-Cycle from production elliptic solver (BoxLib)",
        "light",
        multigrid,
    ),
    "AMR": AppSpec(
        "AMR",
        "Full adaptive mesh refinement V-Cycle from production cosmology "
        "code (BoxLib/Castro)",
        "light",
        amr,
    ),
    "MiniFE": AppSpec(
        "MiniFE",
        "Finite element solver mini-application",
        "light",
        minife,
    ),
}


def build_app(
    name: str, ranks: int, size_scale: int = 8, iterations: int = 2
) -> MpiProgram:
    """Build (and validate) a named application trace."""
    spec = APP_REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown application {name!r}; see APP_REGISTRY")
    prog = spec.builder(ranks, size_scale, iterations)
    prog.validate()
    return prog
