"""On-disk trace format: save and load :class:`MpiProgram` objects.

A portable, line-oriented text format in the spirit of the DesignForward
trace dumps, so traces can be generated once (or converted from other
tools) and replayed many times:

.. code-block:: text

    # repro-trace v1
    name BIGFFT
    ranks 1024
    r 0 send 512 96 17      <- rank 0: send to rank 512, 96 flits, tag 17
    r 512 recv 0 17         <- rank 512: recv from rank 0, tag 17

Lines starting with ``#`` are comments; ops appear in each rank's
program order (interleaving between ranks is irrelevant — order is only
meaningful per rank, and the parser preserves it).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.trace.mpi import OP_RECV, OP_SEND, MpiProgram

__all__ = ["load_trace", "loads_trace", "dump_trace", "dumps_trace"]

_MAGIC = "# repro-trace v1"


def dumps_trace(prog: MpiProgram) -> str:
    """Serialize a program to the text format."""
    out = io.StringIO()
    out.write(f"{_MAGIC}\n")
    out.write(f"name {prog.name}\n")
    out.write(f"ranks {prog.num_ranks}\n")
    for rank, ops in enumerate(prog.ops):
        for op in ops:
            if op[0] == OP_SEND:
                _, dst, size, tag = op
                out.write(f"r {rank} send {dst} {size} {tag}\n")
            else:
                _, src, tag = op
                out.write(f"r {rank} recv {src} {tag}\n")
    return out.getvalue()


def dump_trace(prog: MpiProgram, path: str | Path) -> None:
    Path(path).write_text(dumps_trace(prog), encoding="utf-8")


def loads_trace(text: str, validate: bool = True) -> MpiProgram:
    """Parse the text format back into a program."""
    name = ""
    ranks = -1
    ops: list[list[tuple]] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        try:
            if fields[0] == "name":
                name = " ".join(fields[1:])
            elif fields[0] == "ranks":
                ranks = int(fields[1])
                ops = [[] for _ in range(ranks)]
            elif fields[0] == "r":
                if ops is None:
                    raise ValueError("op before the 'ranks' header")
                rank = int(fields[1])
                kind = fields[2]
                if kind == "send":
                    dst, size, tag = map(int, fields[3:6])
                    ops[rank].append((OP_SEND, dst, size, tag))
                elif kind == "recv":
                    src, tag = map(int, fields[3:5])
                    ops[rank].append((OP_RECV, src, tag))
                else:
                    raise ValueError(f"unknown op kind {kind!r}")
            else:
                raise ValueError(f"unknown directive {fields[0]!r}")
        except (IndexError, ValueError) as exc:
            raise ValueError(f"trace parse error at line {lineno}: "
                             f"{raw!r} ({exc})") from exc
    if ranks < 1 or ops is None:
        raise ValueError("trace has no 'ranks' header")
    prog = MpiProgram(name or "trace", ranks, ops)
    if validate:
        prog.validate()
    return prog


def load_trace(path: str | Path, validate: bool = True) -> MpiProgram:
    return loads_trace(Path(path).read_text(encoding="utf-8"), validate)
