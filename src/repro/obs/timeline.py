"""Periodic occupancy sampling: the generic probe behind timelines.

A :class:`Timeline` tracks any number of named integer-valued probes
(per-port DAMQ occupancy, per-tile buffered flits, stash commitment...)
and samples them all every ``period`` cycles through one simulator
sampler.  It replaces the ad-hoc closures experiments used to register
directly with :meth:`repro.engine.simulator.Simulator.add_sampler`, and
feeds the ASCII charts in :mod:`repro.analysis.obsview`.

Probes are ordinary callables; closures are fine here because samplers
run at ``period`` granularity, outside the per-component cycle loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

__all__ = ["Timeline"]


class Timeline:
    """Named probes sampled on a common period.

    >>> from repro.engine.simulator import Simulator
    >>> sim = Simulator()
    >>> tl = Timeline(period=10)
    >>> tl.track("engine.sim.cycle", lambda: sim.cycle)
    >>> tl.install(sim)
    >>> sim.run(25)
    >>> tl.cycles
    [0, 10, 20]
    >>> tl.series("engine.sim.cycle")
    [0, 10, 20]
    >>> tl.peak("engine.sim.cycle")
    20
    """

    __slots__ = ("period", "cycles", "_names", "_probes", "_values")

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError("timeline period must be >= 1")
        self.period = period
        self.cycles: list[int] = []
        self._names: list[str] = []
        self._probes: list[Callable[[], int]] = []
        self._values: dict[str, list[int]] = {}

    def track(self, name: str, probe: Callable[[], int]) -> None:
        """Register ``probe`` to be read at every sample point."""
        if name in self._values:
            raise ValueError(f"timeline already tracks {name!r}")
        self._names.append(name)
        self._probes.append(probe)
        self._values[name] = []

    def install(self, sim: "Simulator") -> None:
        """Attach to ``sim``: sample every ``period`` cycles from now on."""
        sim.add_sampler(self.period, self.sample)

    def sample(self, cycle: int) -> None:
        """Read every probe once; called by the simulator's sampler."""
        self.cycles.append(cycle)
        values = self._values
        for name, probe in zip(self._names, self._probes):
            values[name].append(probe())

    @property
    def names(self) -> list[str]:
        """Tracked probe names, in registration order."""
        return list(self._names)

    def series(self, name: str) -> list[int]:
        """All samples of ``name``, aligned with :attr:`cycles`."""
        return self._values[name]

    def peak(self, name: str) -> int:
        """Largest sample of ``name`` (0 if never sampled)."""
        values = self._values[name]
        return max(values) if values else 0

    def mean(self, name: str) -> float:
        """Arithmetic mean of ``name``'s samples (0.0 if never sampled)."""
        values = self._values[name]
        return sum(values) / len(values) if values else 0.0

    def rows(self) -> list[tuple]:
        """Export: ``(cycle, value_0, value_1, ...)`` per sample point,
        columns ordered as :attr:`names`."""
        columns = [self._values[name] for name in self._names]
        return [
            (cycle, *(col[i] for col in columns))
            for i, cycle in enumerate(self.cycles)
        ]
