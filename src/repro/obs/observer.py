"""Per-network observers, picklable captures, and deterministic merging.

A :class:`NetworkObserver` is created by :class:`repro.network.Network`
when :class:`~repro.engine.config.ObsParams` is enabled.  It owns the
run's :class:`~repro.obs.events.EventTrace` (handed to the instrumented
components as their ``obs`` attribute) and, at capture time, *harvests*
the aggregate counters the datapath maintains anyway — so counters cost
nothing during the run.

Captures cross process boundaries: observers register themselves in a
process-local list, :func:`take_captures` drains it into picklable
:class:`ObsCapture` values, and the sweep executor
(:mod:`repro.engine.parallel`) attaches them to each
:class:`~repro.engine.parallel.RunOutcome` and logs them to a run log
keyed by ``(sweep sequence, spec index)``.  Merging sorts on that key —
never on completion order — which is what makes a merged ``--jobs N``
trace byte-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.counters import CounterRegistry
from repro.obs.events import EventTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.config import ObsParams
    from repro.network import Network

__all__ = [
    "NetworkObserver",
    "ObsCapture",
    "live_mark",
    "merge_entries",
    "take_captures",
]


@dataclass(frozen=True)
class ObsCapture:
    """One network's observability output, as plain picklable data."""

    counters: dict = field(default_factory=dict)
    records: tuple = ()
    dropped: int = 0


class NetworkObserver:
    """Counter registry + event trace for one :class:`Network`."""

    def __init__(self, params: "ObsParams") -> None:
        self.params = params
        self.registry = CounterRegistry()
        self.trace: EventTrace | None = None
        if params.trace:
            self.trace = EventTrace(
                events=params.trace_events,
                start=params.trace_start,
                stop=params.trace_stop,
                stride=params.trace_stride,
                max_records=params.max_trace_records,
            )
        self.net: "Network | None" = None

    def attach(self, net: "Network") -> None:
        """Bind to the network whose counters this observer harvests."""
        self.net = net
        _LIVE.append(self)

    def capture(self) -> ObsCapture:
        """Harvest the network's counters and freeze the trace buffer."""
        assert self.net is not None
        self._harvest(self.net)
        trace = self.trace
        return ObsCapture(
            counters=self.registry.snapshot(),
            records=tuple(trace.records) if trace is not None else (),
            dropped=trace.dropped if trace is not None else 0,
        )

    # -- harvesting ----------------------------------------------------

    def _harvest(self, net: "Network") -> None:
        """Collect the end-of-run aggregates the datapath already keeps.

        Nothing here runs during the simulation: every value below is a
        counter the switches, ports, and endpoints maintain for their own
        bookkeeping, renamed into the ``layer.component.metric`` scheme.
        """
        reg = self.registry
        count = reg.counter
        gauge = reg.gauge

        count("engine.sim.cycles").add(net.sim.cycle)
        count("engine.sim.components").add(len(net.switches) + len(net.endpoints))

        for ep in net.endpoints:
            count("endpoint.nic.flits_generated").add(ep.flits_generated)
            count("endpoint.nic.flits_injected").add(ep.flits_injected)
            count("endpoint.nic.flits_ejected").add(ep.flits_ejected)
            count("endpoint.nic.packets_delivered").add(ep.packets_delivered)
            count("endpoint.nic.packets_corrupted").add(ep.packets_corrupted)
            count("endpoint.nic.packets_reorder_dropped").add(
                ep.packets_reorder_dropped
            )
            count("endpoint.nic.messages_posted").add(ep.messages_posted)
            count("endpoint.ecn.marked_acks").add(ep.ecn.ecn_acks)
            count("endpoint.ecn.window_cuts").add(ep.ecn.window_cuts)

        for sw in net.switches:
            for ip in sw.in_ports:
                count("switch.input.flits_received").add(ip.flits_received)
                count("switch.input.flits_sent").add(ip.flits_sent)
                count("switch.input.packets_marked").add(ip.packets_marked)
                count("switch.input.packets_diverted").add(ip.packets_diverted)
                count("switch.input.copies_dispatched").add(ip.copies_dispatched)
                count("switch.input.stalls_no_stash").add(ip.stall_no_stash)
                gauge("switch.damq.peak_committed_in").set(ip.damq.peak_committed)
            for op in sw.out_ports:
                count("switch.output.flits_sent").add(op.flits_sent)
                count("switch.output.credit_stalls").add(op.credit_stalls)
                gauge("switch.damq.peak_committed_out").set(
                    op.out_damq.peak_committed
                )
            if sw.stash_dir is not None:
                for part in sw.stash_dir.partitions:
                    count("switch.stash.stores").add(part.stored_total)
                    count("switch.stash.deletes").add(part.deleted_total)
                    count("switch.stash.retrieves").add(part.retrieved_total)
                    gauge("switch.stash.peak_committed").set(part.peak_committed)
                count("switch.stash.retransmits_issued").add(
                    sw.retransmits_issued
                )
                count("switch.stash.deletes_applied").add(sw.deletes_applied)


# -- process-local capture plumbing ------------------------------------

_LIVE: list[NetworkObserver] = []


def live_mark() -> int:
    """Bookmark the live-observer list (see :func:`take_captures`)."""
    return len(_LIVE)


def take_captures(since: int = 0) -> list[ObsCapture]:
    """Drain observers registered at or after bookmark ``since``.

    The sweep executor brackets each point with ``live_mark()`` /
    ``take_captures(mark)`` so a point only collects the networks *it*
    built; the experiment runner drains the remainder (networks built
    outside any sweep) with the default ``since=0``.
    """
    taken = _LIVE[since:]
    del _LIVE[since:]
    return [obs.capture() for obs in taken]


def merge_entries(entries: list[tuple[str, ObsCapture]]) -> list[str]:
    """Render labelled captures as JSONL lines (header first).

    ``entries`` must already be in deterministic order — (sweep
    sequence, spec index) for pooled points, construction order for
    in-process networks.  Records within a capture keep emit order.
    """
    from repro.obs.events import trace_header_line, trace_record_line

    dropped = sum(cap.dropped for _run, cap in entries)
    lines = [trace_header_line(len(entries), dropped)]
    for run, cap in entries:
        for record in cap.records:
            lines.append(trace_record_line(run, record))
    return lines
