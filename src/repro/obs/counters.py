"""Typed end-of-run metrics: counters, gauges, fixed-edge histograms.

Every metric lives in a :class:`CounterRegistry` under a
``layer.component.metric`` name (e.g. ``switch.stash.stores``) so that
snapshots sort deterministically and merge across runs without name
collisions.  Histogram bucket edges are fixed at construction — never
derived from the data — so two runs of the same config always bucket
identically (the determinism contract of docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import re

__all__ = [
    "Counter",
    "CounterRegistry",
    "FixedHistogram",
    "Gauge",
    "merge_snapshots",
    "metric_name_ok",
]

#: ``layer.component.metric``: at least three lowercase dotted segments.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")


def metric_name_ok(name: str) -> bool:
    """True if ``name`` follows the ``layer.component.metric`` convention.

    >>> metric_name_ok("switch.stash.stores")
    True
    >>> metric_name_ok("StashStores")
    False
    >>> metric_name_ok("switch.stores")
    False
    """
    return bool(_NAME_RE.match(name))


class Counter:
    """A monotonically increasing integer metric.

    >>> c = Counter("endpoint.nic.flits_injected")
    >>> c.add(3); c.add(2); c.value
    5
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value that also remembers its maximum.

    >>> g = Gauge("switch.damq.peak_committed")
    >>> g.set(7); g.set(3); (g.value, g.max)
    (3, 7)
    """

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value: int | float) -> None:
        """Record the current reading, tracking the high-water mark."""
        self.value = value
        if value > self.max:
            self.max = value


class FixedHistogram:
    """A histogram over bucket edges fixed at construction.

    ``edges`` must be strictly increasing; a sample ``x`` lands in the
    first bucket whose edge satisfies ``x <= edge``, with one overflow
    bucket past the last edge.  Fixed edges (never data-derived) keep
    bucketing identical across runs and worker counts.

    >>> h = FixedHistogram("endpoint.nic.latency", (10, 100, 1000))
    >>> for x in (5, 50, 50, 5000): h.record(x)
    >>> h.buckets
    [1, 2, 0, 1]
    >>> h.count
    4
    """

    __slots__ = ("name", "edges", "buckets", "count")

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ValueError("histogram edges must be non-empty and increasing")
        self.name = name
        self.edges = tuple(edges)
        self.buckets = [0] * (len(edges) + 1)
        self.count = 0

    def record(self, value: float, weight: int = 1) -> None:
        """Add ``weight`` samples of ``value`` to the matching bucket."""
        i = 0
        for edge in self.edges:
            if value <= edge:
                break
            i += 1
        self.buckets[i] += weight
        self.count += weight


class CounterRegistry:
    """The named home of every counter, gauge, and histogram of one run.

    Metric constructors are idempotent per name (asking twice returns
    the same object) and enforce the naming convention; ``snapshot()``
    returns a name-sorted plain dict ready to merge or serialize.

    >>> reg = CounterRegistry()
    >>> reg.counter("switch.stash.stores").add(4)
    >>> reg.gauge("switch.stash.peak_committed").set(96)
    >>> reg.snapshot()
    {'switch.stash.peak_committed': 96, 'switch.stash.stores': 4}
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, FixedHistogram] = {}

    def _check(self, name: str) -> None:
        if not metric_name_ok(name):
            raise ValueError(
                f"metric name {name!r} does not follow layer.component.metric"
            )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        self._check(name)
        if name in self._gauges or name in self._histograms:
            raise ValueError(f"{name!r} is already a gauge or histogram")
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        self._check(name)
        if name in self._counters or name in self._histograms:
            raise ValueError(f"{name!r} is already a counter or histogram")
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, edges: tuple[float, ...]) -> FixedHistogram:
        """The histogram called ``name``; edges must match on reuse."""
        self._check(name)
        if name in self._counters or name in self._gauges:
            raise ValueError(f"{name!r} is already a counter or gauge")
        hist = self._histograms.get(name)
        if hist is None:
            hist = FixedHistogram(name, edges)
            self._histograms[name] = hist
        elif hist.edges != tuple(edges):
            raise ValueError(f"histogram {name!r} re-registered with new edges")
        return hist

    def snapshot(self) -> dict[str, object]:
        """All metrics as a name-sorted plain dict.

        Counters become ints, gauges their high-water mark, histograms a
        ``{"edges": ..., "buckets": ...}`` dict — everything JSON- and
        pickle-friendly.
        """
        out: dict[str, object] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.max
        for name, h in self._histograms.items():
            out[name] = {"edges": list(h.edges), "buckets": list(h.buckets)}
        return {k: out[k] for k in sorted(out)}


def merge_snapshots(snapshots: list[dict]) -> dict[str, object]:
    """Combine per-run snapshots: counters and buckets sum, gauges max.

    >>> merge_snapshots([{"a.b.c": 1, "a.b.peak_x": 5},
    ...                  {"a.b.c": 2, "a.b.peak_x": 3}])
    {'a.b.c': 3, 'a.b.peak_x': 5}

    Gauge metrics are recognized by a ``peak_`` prefix on the metric
    segment; histogram dicts merge bucket-wise (edges must agree).
    """
    merged: dict[str, object] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = (
                    {"edges": list(value["edges"]),
                     "buckets": list(value["buckets"])}
                    if isinstance(value, dict) else value
                )
                continue
            prior = merged[name]
            if isinstance(value, dict):
                assert isinstance(prior, dict)
                if prior["edges"] != list(value["edges"]):
                    raise ValueError(f"histogram {name!r} edge mismatch")
                prior["buckets"] = [
                    a + b for a, b in zip(prior["buckets"], value["buckets"])
                ]
            elif name.rsplit(".", 1)[-1].startswith("peak_"):
                merged[name] = max(prior, value)  # type: ignore[call-overload]
            else:
                merged[name] = prior + value  # type: ignore[operator]
    return {k: merged[k] for k in sorted(merged)}
