"""Structured per-cycle event traces with sampling filters.

An :class:`EventTrace` collects fixed-shape records — one tuple per
event — that serialize to JSONL or CSV under the stable schema
documented in docs/OBSERVABILITY.md.  Collection sits behind cheap
filters (event allowlist, cycle window, per-event-type stride, and a
hard record cap) so a trace of a long run stays bounded.

The hot paths do not call into this module unconditionally: components
hold an ``obs`` attribute that is ``None`` unless tracing is enabled,
and every emit site is guarded by ``if self.obs is not None``.
"""

from __future__ import annotations

import json

__all__ = [
    "EVENT_TYPES",
    "EventTrace",
    "SCHEMA_FIELDS",
    "SCHEMA_VERSION",
    "trace_csv_lines",
    "trace_header_line",
    "trace_record_line",
]

#: Every event type the instrumented datapath can emit.
EVENT_TYPES = (
    "flit.inject",
    "packet.deliver",
    "stash.store",
    "stash.retrieve",
    "stash.evict",
    "credit.stall",
    "ecn.mark",
    "ecn.window_cut",
)

#: JSONL / CSV column order; every record carries exactly these fields.
SCHEMA_FIELDS = ("run", "cycle", "event", "sw", "port", "vc", "pid", "value")

#: Bumped whenever a field is added, removed, or reinterpreted.
SCHEMA_VERSION = 1


class EventTrace:
    """A bounded, filtered buffer of ``(cycle, event, sw, port, vc, pid,
    value)`` tuples.

    ``events`` restricts collection to an allowlist (empty = all types);
    ``start``/``stop`` bound the cycle window; ``stride`` keeps every
    N-th occurrence of each event type; ``max_records`` caps the buffer,
    counting overflow in :attr:`dropped` instead of growing.

    >>> t = EventTrace(events=("ecn.mark",), stride=2)
    >>> for c in range(4): t.emit(c, "ecn.mark", 1, 2, 0, 10 + c, 0)
    >>> t.emit(9, "flit.inject", -1, 0, 0, 99, 0)   # filtered out
    >>> [r[0] for r in t.records]
    [0, 2]
    """

    __slots__ = ("records", "dropped", "start", "stop", "stride",
                 "max_records", "_wanted", "_seen")

    def __init__(
        self,
        events: tuple[str, ...] = (),
        start: int = 0,
        stop: int | None = None,
        stride: int = 1,
        max_records: int = 1_000_000,
    ) -> None:
        for name in events:
            if name not in EVENT_TYPES:
                raise ValueError(
                    f"unknown event type {name!r}; expected one of {EVENT_TYPES}"
                )
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.records: list[tuple] = []
        self.dropped = 0
        self.start = start
        self.stop = stop
        self.stride = stride
        self.max_records = max_records
        self._wanted = frozenset(events or EVENT_TYPES)
        self._seen = {name: 0 for name in EVENT_TYPES}

    def emit(
        self,
        cycle: int,
        event: str,
        sw: int,
        port: int,
        vc: int,
        pid: int,
        value: int | float,
    ) -> None:
        """Record one event, subject to the configured filters.

        ``sw`` is the switch id (``-1`` for NIC-level events, whose
        ``port`` field carries the node id instead); ``vc``/``pid`` are
        ``-1`` when not applicable; ``value`` is event-specific (see
        docs/OBSERVABILITY.md).
        """
        if event not in self._wanted:
            return
        if cycle < self.start or (self.stop is not None and cycle >= self.stop):
            return
        seen = self._seen[event]
        self._seen[event] = seen + 1
        if seen % self.stride:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append((cycle, event, sw, port, vc, pid, value))


def trace_header_line(run_count: int, dropped: int = 0) -> str:
    """The JSONL header row identifying the schema.

    >>> trace_header_line(2)
    '{"schema":"repro.obs.trace","version":1,"fields":["run","cycle","event","sw","port","vc","pid","value"],"runs":2,"dropped":0}'
    """
    return json.dumps(
        {
            "schema": "repro.obs.trace",
            "version": SCHEMA_VERSION,
            "fields": list(SCHEMA_FIELDS),
            "runs": run_count,
            "dropped": dropped,
        },
        separators=(",", ":"),
    )


def trace_record_line(run: str, record: tuple) -> str:
    """One JSONL data row for a trace record under run label ``run``.

    >>> trace_record_line("fig5:0.2", (7, "ecn.mark", 3, 1, 0, 42, 1))
    '{"run":"fig5:0.2","cycle":7,"event":"ecn.mark","sw":3,"port":1,"vc":0,"pid":42,"value":1}'
    """
    cycle, event, sw, port, vc, pid, value = record
    return json.dumps(
        {
            "run": run,
            "cycle": cycle,
            "event": event,
            "sw": sw,
            "port": port,
            "vc": vc,
            "pid": pid,
            "value": value,
        },
        separators=(",", ":"),
    )


def trace_csv_lines(entries: list[tuple[str, list[tuple]]]) -> list[str]:
    """CSV rendering: a header row then one row per record.

    ``entries`` pairs a run label with that run's records, already in
    deterministic order (see :func:`repro.obs.observer.merge_entries`).
    """
    lines = [",".join(SCHEMA_FIELDS)]
    for run, records in entries:
        for cycle, event, sw, port, vc, pid, value in records:
            lines.append(f"{run},{cycle},{event},{sw},{port},{vc},{pid},{value}")
    return lines
