"""Observability: typed counters, structured event traces, timelines.

``repro.obs`` is the measurement layer of the simulator.  It is
**zero-overhead when off**: with :class:`~repro.engine.config.ObsParams`
disabled (the default) no registry, trace, or timeline object is ever
constructed, and the only cost left in the cycle loop is a handful of
``if obs is not None`` attribute checks at packet granularity.

Three instruments, by time scale:

* :class:`CounterRegistry` — end-of-run aggregates (monotonic counters,
  gauges, fixed-edge histograms) harvested from the component counters
  the datapath already maintains; costs nothing during the run.
* :class:`EventTrace` — per-cycle structured events (flit injections,
  stash store/retrieve/evict, credit stalls, ECN marks) behind sampling
  filters, exported as JSONL or CSV with a stable schema.
* :class:`Timeline` — periodic occupancy sampling per tile/port/switch,
  rendered by :mod:`repro.analysis.obsview`.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, naming
convention, trace schema, and the determinism contract for traces
merged across ``--jobs N`` worker processes.
"""

from repro.obs.counters import (
    Counter,
    CounterRegistry,
    FixedHistogram,
    Gauge,
    merge_snapshots,
)
from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_FIELDS,
    SCHEMA_VERSION,
    EventTrace,
    trace_csv_lines,
    trace_header_line,
    trace_record_line,
)
from repro.obs.observer import (
    NetworkObserver,
    ObsCapture,
    live_mark,
    merge_entries,
    take_captures,
)
from repro.obs.timeline import Timeline

__all__ = [
    "Counter",
    "CounterRegistry",
    "EVENT_TYPES",
    "EventTrace",
    "FixedHistogram",
    "Gauge",
    "NetworkObserver",
    "ObsCapture",
    "SCHEMA_FIELDS",
    "SCHEMA_VERSION",
    "Timeline",
    "live_mark",
    "merge_entries",
    "merge_snapshots",
    "take_captures",
    "trace_csv_lines",
    "trace_header_line",
    "trace_record_line",
]
