"""Setuptools shim.

This environment ships setuptools without the ``wheel`` package, so the
PEP 517 editable-install path (``pip install -e .``) cannot build the
editable wheel.  ``python setup.py develop`` installs the same editable
package through the legacy egg-link mechanism.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
